// Copyright 2026 The vaolib Authors.
// TableWriter: renders benchmark results as aligned console tables, CSV, and
// JSON, so every bench binary prints the same rows/series the paper reports.

#ifndef VAOLIB_COMMON_TABLE_WRITER_H_
#define VAOLIB_COMMON_TABLE_WRITER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace vaolib {

/// \brief Collects rows of string cells under a header and renders them as
/// an aligned ASCII table or CSV.
class TableWriter {
 public:
  /// Creates a table titled \p title with the given column \p headers.
  TableWriter(std::string title, std::vector<std::string> headers);

  /// Appends a row; pads/truncates to the header width.
  void AddRow(std::vector<std::string> cells);

  /// \name Typed cell formatting helpers.
  /// @{
  static std::string Cell(double value, int precision = 3);
  static std::string Cell(std::uint64_t value);
  static std::string Cell(std::int64_t value);
  static std::string Cell(int value);
  /// @}

  /// Writes the aligned ASCII rendering to \p os.
  void RenderText(std::ostream& os) const;

  /// Writes an RFC-4180-ish CSV rendering (header row first) to \p os.
  void RenderCsv(std::ostream& os) const;

  /// Writes a JSON object {"title": ..., "rows": [{header: cell, ...}]} to
  /// \p os. Cells that parse fully as finite numbers are emitted unquoted,
  /// everything else as strings.
  void RenderJson(std::ostream& os) const;

  /// Number of data rows added so far.
  std::size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vaolib

#endif  // VAOLIB_COMMON_TABLE_WRITER_H_
