// Copyright 2026 The vaolib Authors.
// Status: error-code + message value type used for all fallible operations in
// the vaolib core. The core library does not throw exceptions (database-style
// convention); every fallible API returns a Status or a Result<T>.

#ifndef VAOLIB_COMMON_STATUS_H_
#define VAOLIB_COMMON_STATUS_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace vaolib {

/// \brief Machine-readable category of a Status.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kNotFound = 4,
  kAlreadyExists = 5,
  kResourceExhausted = 6,
  kNotConverged = 7,   ///< A numeric routine hit its iteration cap.
  kNumericError = 8,   ///< NaN/Inf or other numeric breakdown.
  kUnimplemented = 9,
  kInternal = 10,
};

/// \brief Returns the canonical lowercase name of \p code (e.g. "ok",
/// "invalid-argument"). Never fails; unknown values map to "unknown".
std::string_view StatusCodeToString(StatusCode code);

/// \brief Result of a fallible operation: either OK or a code plus message.
///
/// Cheap to copy in the OK case (no allocation); error states carry a
/// shared immutable payload. Modeled after arrow::Status / rocksdb::Status.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with \p code and human-readable \p message.
  /// An OK code with a message is allowed but the message is dropped.
  Status(StatusCode code, std::string message);

  /// \name Factory helpers, one per StatusCode.
  /// @{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status NotConverged(std::string msg) {
    return Status(StatusCode::kNotConverged, std::move(msg));
  }
  static Status NumericError(std::string msg) {
    return Status(StatusCode::kNumericError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// @}

  /// Returns true iff the status is OK.
  bool ok() const { return rep_ == nullptr; }

  /// Returns the status code (kOk when ok()).
  StatusCode code() const {
    return rep_ == nullptr ? StatusCode::kOk : rep_->code;
  }

  /// Returns the error message ("" when ok()).
  const std::string& message() const;

  /// Returns true iff code() == \p code.
  bool Is(StatusCode code) const { return this->code() == code; }

  /// Returns "OK" or "<code>: <message>".
  std::string ToString() const;

  /// Prepends "<context>: " to the message of a non-OK status; no-op on OK.
  Status WithContext(std::string_view context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const Rep> rep_;  // nullptr == OK
};

std::ostream& operator<<(std::ostream& os, const Status& status);

namespace internal {
/// Aborts the process printing \p status; used by ValueOrDie-style helpers.
[[noreturn]] void DieOnError(const Status& status, const char* expr);
}  // namespace internal

}  // namespace vaolib

#endif  // VAOLIB_COMMON_STATUS_H_
