// Copyright 2026 The vaolib Authors.
// Bounds: a closed interval [lo, hi], the currency of the VAO interface.
// Every variable-accuracy function reports its answer as Bounds, and every
// VAO reasons over Bounds (Section 3.2 of the paper).

#ifndef VAOLIB_COMMON_BOUNDS_H_
#define VAOLIB_COMMON_BOUNDS_H_

#include <algorithm>
#include <cmath>
#include <ostream>

namespace vaolib {

/// \brief A closed real interval [lo, hi] with lo <= hi.
struct Bounds {
  double lo = 0.0;  ///< the paper's L member
  double hi = 0.0;  ///< the paper's H member

  Bounds() = default;
  Bounds(double lo_in, double hi_in) : lo(lo_in), hi(hi_in) {}

  /// Degenerate interval [v, v].
  static Bounds Point(double v) { return Bounds(v, v); }

  /// Interval centred at \p mid with half-width \p half (>= 0).
  static Bounds Centered(double mid, double half) {
    return Bounds(mid - half, mid + half);
  }

  /// H - L, the paper's bounds width.
  double Width() const { return hi - lo; }

  /// Interval midpoint.
  double Mid() const { return 0.5 * (lo + hi); }

  /// True iff \p v lies in [lo, hi].
  bool Contains(double v) const { return v >= lo && v <= hi; }

  /// True iff \p other is entirely inside this interval.
  bool Contains(const Bounds& other) const {
    return other.lo >= lo && other.hi <= hi;
  }

  /// True iff the two intervals share at least one point.
  bool Overlaps(const Bounds& other) const {
    return lo <= other.hi && other.lo <= hi;
  }

  /// Length of the intersection with \p other (0 when disjoint).
  double OverlapWidth(const Bounds& other) const {
    return std::max(0.0, std::min(hi, other.hi) - std::max(lo, other.lo));
  }

  /// True iff both endpoints are finite and lo <= hi.
  bool IsValid() const {
    return std::isfinite(lo) && std::isfinite(hi) && lo <= hi;
  }

  /// True iff every point of this interval exceeds every point of \p other.
  bool EntirelyAbove(const Bounds& other) const { return lo > other.hi; }

  /// True iff every point of this interval lies below every point of \p other.
  bool EntirelyBelow(const Bounds& other) const { return hi < other.lo; }

  friend bool operator==(const Bounds& a, const Bounds& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

inline std::ostream& operator<<(std::ostream& os, const Bounds& b) {
  return os << "[" << b.lo << ", " << b.hi << "]";
}

}  // namespace vaolib

#endif  // VAOLIB_COMMON_BOUNDS_H_
