// Copyright 2026 The vaolib Authors.
// Minimal leveled logging for examples, benches, and diagnostics.

#ifndef VAOLIB_COMMON_LOGGING_H_
#define VAOLIB_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace vaolib {

/// \brief Log severities in increasing order.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);

/// Returns the current global minimum level.
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log-line builder; emits to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace vaolib

#define VAOLIB_LOG(level)                                             \
  ::vaolib::internal::LogMessage(::vaolib::LogLevel::k##level,        \
                                 __FILE__, __LINE__)

#endif  // VAOLIB_COMMON_LOGGING_H_
