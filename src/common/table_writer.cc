#include "common/table_writer.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>

namespace vaolib {

TableWriter::TableWriter(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {}

void TableWriter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TableWriter::Cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TableWriter::Cell(std::uint64_t value) {
  return std::to_string(value);
}

std::string TableWriter::Cell(std::int64_t value) {
  return std::to_string(value);
}

std::string TableWriter::Cell(int value) { return std::to_string(value); }

void TableWriter::RenderText(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::left
         << std::setw(static_cast<int>(widths[c])) << cells[c];
    }
    os << "\n";
  };
  emit_row(headers_);
  std::size_t total = headers_.size() > 1 ? 2 * (headers_.size() - 1) : 0;
  for (const auto w : widths) total += w;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
}

void TableWriter::RenderCsv(std::ostream& os) const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (const char ch : cell) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : ",") << escape(cells[c]);
    }
    os << "\n";
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
}

}  // namespace vaolib
