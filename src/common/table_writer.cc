#include "common/table_writer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iomanip>

namespace vaolib {

TableWriter::TableWriter(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {}

void TableWriter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TableWriter::Cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TableWriter::Cell(std::uint64_t value) {
  return std::to_string(value);
}

std::string TableWriter::Cell(std::int64_t value) {
  return std::to_string(value);
}

std::string TableWriter::Cell(int value) { return std::to_string(value); }

void TableWriter::RenderText(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::left
         << std::setw(static_cast<int>(widths[c])) << cells[c];
    }
    os << "\n";
  };
  emit_row(headers_);
  std::size_t total = headers_.size() > 1 ? 2 * (headers_.size() - 1) : 0;
  for (const auto w : widths) total += w;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
}

void TableWriter::RenderJson(std::ostream& os) const {
  auto quote = [](const std::string& text) {
    std::string out = "\"";
    for (const char ch : text) {
      switch (ch) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\t':
          out += "\\t";
          break;
        default:
          out += ch;
      }
    }
    out += '"';
    return out;
  };
  // A cell renders as a bare JSON number only when strtod consumes all of it
  // and produces a finite value ("nan"/"inf" are not valid JSON numbers).
  auto emit_cell = [&](const std::string& cell) {
    if (!cell.empty()) {
      char* end = nullptr;
      const double value = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str() + cell.size() && std::isfinite(value)) {
        os << cell;
        return;
      }
    }
    os << quote(cell);
  };
  os << "{\n  \"title\": " << quote(title_) << ",\n  \"rows\": [";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << (r == 0 ? "" : ",") << "\n    {";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << (c == 0 ? "" : ", ") << quote(headers_[c]) << ": ";
      emit_cell(rows_[r][c]);
    }
    os << "}";
  }
  os << "\n  ]\n}\n";
}

void TableWriter::RenderCsv(std::ostream& os) const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (const char ch : cell) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : ",") << escape(cells[c]);
    }
    os << "\n";
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
}

}  // namespace vaolib
