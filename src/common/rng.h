// Copyright 2026 The vaolib Authors.
// Deterministic pseudo-random number generation for workload synthesis.
//
// The paper's experiments synthesize bond-result distributions with the GNU
// Scientific Library's generators [18]. We provide an equivalent substrate:
// a fast, well-distributed xoshiro256++ engine plus the distribution adapters
// the workload generators need (uniform, Gaussian via Box-Muller, exponential,
// integer ranges, shuffles). Everything is seeded explicitly so every
// experiment in this repository is bit-reproducible.

#ifndef VAOLIB_COMMON_RNG_H_
#define VAOLIB_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace vaolib {

/// \brief Deterministic xoshiro256++ pseudo-random generator with
/// distribution helpers.
///
/// Not thread-safe; use one instance per thread or workload.
class Rng {
 public:
  /// Seeds the engine from \p seed via SplitMix64 state expansion, so that
  /// small consecutive seeds produce uncorrelated streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next raw 64-bit output.
  std::uint64_t NextUint64();

  /// Returns a double uniform in [0, 1).
  double NextDouble();

  /// Returns a double uniform in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  /// Returns an integer uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Returns a standard-normal draw (Box-Muller, cached pair).
  double Gaussian();

  /// Returns a normal draw with the given \p mean and \p stddev (>= 0).
  double Gaussian(double mean, double stddev);

  /// Returns an exponential draw with rate \p lambda (> 0).
  double Exponential(double lambda);

  /// Returns true with probability \p p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffles \p items in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (std::size_t i = items->size() - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(
          UniformInt(0, static_cast<std::int64_t>(i)));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Returns a uniformly random permutation of {0, 1, ..., n-1}.
  std::vector<std::size_t> Permutation(std::size_t n);

 private:
  std::uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace vaolib

#endif  // VAOLIB_COMMON_RNG_H_
