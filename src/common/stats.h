// Copyright 2026 The vaolib Authors.
// Streaming statistics accumulators used by workload analysis and benches.

#ifndef VAOLIB_COMMON_STATS_H_
#define VAOLIB_COMMON_STATS_H_

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace vaolib {

/// \brief Streaming mean/variance/min/max accumulator (Welford's algorithm;
/// numerically stable for long streams).
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Number of observations added.
  std::size_t count() const { return count_; }

  /// Arithmetic mean (0 when empty).
  double Mean() const { return mean_; }

  /// Population variance (0 when fewer than 2 observations).
  double Variance() const;

  /// Sample variance with Bessel's correction (0 when fewer than 2).
  double SampleVariance() const;

  /// Population standard deviation.
  double StdDev() const;

  /// Minimum observation (+inf when empty).
  double Min() const { return min_; }

  /// Maximum observation (-inf when empty).
  double Max() const { return max_; }

  /// Sum of all observations.
  double Sum() const { return mean_ * static_cast<double>(count_); }

  /// Resets to the empty state.
  void Reset();

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// \brief Computes the q-quantile (q in [0,1]) of \p values by linear
/// interpolation between order statistics. Copies and sorts; O(n log n).
/// Returns NaN for an empty input.
double Quantile(std::vector<double> values, double q);

/// \brief Compensated (Neumaier/Kahan-Babuska) streaming summation. Keeps a
/// running correction term so that sums of values with wildly different
/// magnitudes -- the ill-conditioned case the naive `total += x` loop gets
/// wrong -- stay accurate to within a few ulps of the exact result.
class NeumaierSum {
 public:
  /// Adds one term.
  void Add(double x) {
    const double t = sum_ + x;
    if (std::abs(sum_) >= std::abs(x)) {
      comp_ += (sum_ - t) + x;  // low-order bits of sum_ lost in t
    } else {
      comp_ += (x - t) + sum_;  // low-order bits of x lost in t
    }
    sum_ = t;
  }

  /// The compensated running total.
  double Sum() const { return sum_ + comp_; }

  /// Resets to zero.
  void Reset() {
    sum_ = 0.0;
    comp_ = 0.0;
  }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;
};

/// \brief Single-pass weighted mean/variance accumulator (West's extension
/// of Welford's update). Weights are frequency weights: with all weights 1
/// the results match the classic n / (n-1) estimators exactly. Numerically
/// stable on ill-conditioned inputs (large mean, tiny variance) where the
/// textbook sum-of-squares formula cancels catastrophically.
class WeightedVariance {
 public:
  /// Adds one observation with weight \p w (> 0; non-positive ignored).
  void Add(double x, double w = 1.0);

  /// Number of Add() calls that contributed.
  std::size_t count() const { return count_; }

  /// Total weight added.
  double WeightSum() const { return weight_sum_; }

  /// Weighted mean (0 when empty).
  double Mean() const { return mean_; }

  /// Population variance: M2 / W (0 with fewer than 2 observations).
  double PopulationVariance() const;

  /// Sample variance with frequency-weight Bessel correction: M2 / (W - 1)
  /// (0 when W <= 1 or fewer than 2 observations).
  double SampleVariance() const;

  /// Resets to the empty state.
  void Reset();

 private:
  std::size_t count_ = 0;
  double weight_sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// \brief Inverse of the standard normal CDF (the z-value with
/// P(Z <= z) = p). Acklam's rational approximation, |relative error|
/// < 1.2e-9 over (0, 1). Returns +/-infinity at the endpoints and NaN
/// outside [0, 1].
double NormalQuantile(double p);

}  // namespace vaolib

#endif  // VAOLIB_COMMON_STATS_H_
