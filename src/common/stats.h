// Copyright 2026 The vaolib Authors.
// Streaming statistics accumulators used by workload analysis and benches.

#ifndef VAOLIB_COMMON_STATS_H_
#define VAOLIB_COMMON_STATS_H_

#include <cstddef>
#include <limits>
#include <vector>

namespace vaolib {

/// \brief Streaming mean/variance/min/max accumulator (Welford's algorithm;
/// numerically stable for long streams).
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Number of observations added.
  std::size_t count() const { return count_; }

  /// Arithmetic mean (0 when empty).
  double Mean() const { return mean_; }

  /// Population variance (0 when fewer than 2 observations).
  double Variance() const;

  /// Sample variance with Bessel's correction (0 when fewer than 2).
  double SampleVariance() const;

  /// Population standard deviation.
  double StdDev() const;

  /// Minimum observation (+inf when empty).
  double Min() const { return min_; }

  /// Maximum observation (-inf when empty).
  double Max() const { return max_; }

  /// Sum of all observations.
  double Sum() const { return mean_ * static_cast<double>(count_); }

  /// Resets to the empty state.
  void Reset();

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// \brief Computes the q-quantile (q in [0,1]) of \p values by linear
/// interpolation between order statistics. Copies and sorts; O(n log n).
/// Returns NaN for an empty input.
double Quantile(std::vector<double> values, double q);

}  // namespace vaolib

#endif  // VAOLIB_COMMON_STATS_H_
