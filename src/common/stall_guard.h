// Copyright 2026 The vaolib Authors.
// Refinement-stall detection shared by operator decision loops and the bulk
// convergence helpers.

#ifndef VAOLIB_COMMON_STALL_GUARD_H_
#define VAOLIB_COMMON_STALL_GUARD_H_

#include <limits>

namespace vaolib {

/// \brief Detects refinement stalls on one result object: Iterate() keeps
/// returning OK but the bounds stop tightening while still above minWidth.
/// Without a guard every convergence loop would spin on such an object until
/// its global iteration budget (tens of millions of steps) runs out.
///
/// Observe() is fed the bounds width after each Iterate() of the object; the
/// object counts as stalled after `limit` consecutive observations with no
/// width reduction. Any real progress resets the counter, so slow-but-live
/// solvers are never quarantined.
class StallGuard {
 public:
  /// Consecutive no-progress Iterate() calls tolerated before declaring a
  /// stall. Real solvers shrink every step (geometric refinement); a dozen
  /// flat steps is far outside their behaviour yet cheap to wait out.
  static constexpr int kDefaultLimit = 12;

  explicit StallGuard(int limit = kDefaultLimit) : limit_(limit) {}

  /// Records the width after one Iterate() call; returns true when the
  /// object has now exceeded the no-progress limit.
  bool Observe(double width) {
    if (width < last_width_) {
      no_progress_ = 0;
    } else if (++no_progress_ >= limit_) {
      stalled_ = true;
    }
    last_width_ = width;
    return stalled_;
  }

  bool stalled() const { return stalled_; }

 private:
  double last_width_ = std::numeric_limits<double>::infinity();
  int no_progress_ = 0;
  int limit_;
  bool stalled_ = false;
};

}  // namespace vaolib

#endif  // VAOLIB_COMMON_STALL_GUARD_H_
