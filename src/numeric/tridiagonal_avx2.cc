// Copyright 2026 The vaolib Authors.
// AVX2 lockstep tridiagonal kernel. This TU is compiled with -mavx2 (and
// only when VAOLIB_ENABLE_SIMD=ON); the dispatcher in tridiagonal.cc calls
// it only after __builtin_cpu_supports("avx2") succeeds. No FMA intrinsics
// are used: every lane performs the same mul-then-sub sequence as the
// scalar solver, so results are bit-identical to the generic kernel.

#include "numeric/tridiagonal.h"

#if defined(VAOLIB_SIMD_AVX2)

#include <immintrin.h>

#include <cmath>

namespace vaolib::numeric::internal {

namespace {

// Scalar replica of the generic kernel for one lane; handles the k % 4
// tail columns. Indexing strides by k so the lane reads its own column of
// each dense plane.
void SolveLane(const double* lower, const double* diag, const double* upper,
               const double* rhs, std::size_t rows, std::size_t k,
               std::size_t s, double* c_prime, double* d_prime,
               double* solution, std::int32_t* failed_row) {
  {
    const double pivot = diag[s];
    const bool ok = !(std::abs(pivot) < 1e-300);
    if (!ok && failed_row[s] < 0) failed_row[s] = 0;
    const double safe = ok ? pivot : 1.0;
    c_prime[s] = upper[s] / safe;
    d_prime[s] = rhs[s] / safe;
  }
  for (std::size_t row = 1; row < rows; ++row) {
    const std::size_t at = row * k + s;
    const std::size_t prev = at - k;
    const double pivot = diag[at] - lower[at] * c_prime[prev];
    const bool ok = !(std::abs(pivot) < 1e-300);
    if (!ok && failed_row[s] < 0) {
      failed_row[s] = static_cast<std::int32_t>(row);
    }
    const double safe = ok ? pivot : 1.0;
    c_prime[at] = upper[at] / safe;
    d_prime[at] = (rhs[at] - lower[at] * d_prime[prev]) / safe;
  }
  const std::size_t last = (rows - 1) * k + s;
  solution[last] = d_prime[last];
  for (std::size_t row = rows - 1; row-- > 0;) {
    const std::size_t at = row * k + s;
    solution[at] = d_prime[at] - c_prime[at] * solution[at + k];
  }
}

inline void RecordFailures(int bad_mask, std::size_t row, std::size_t s,
                           std::int32_t* failed_row) {
  for (int lane = 0; lane < 4; ++lane) {
    if (((bad_mask >> lane) & 1) != 0 && failed_row[s + lane] < 0) {
      failed_row[s + lane] = static_cast<std::int32_t>(row);
    }
  }
}

}  // namespace

void SolveTridiagonalBatchAvx2(const double* lower, const double* diag,
                               const double* upper, const double* rhs,
                               std::size_t rows, std::size_t k,
                               double* c_prime, double* d_prime,
                               double* solution, std::int32_t* failed_row) {
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  const __m256d tiny = _mm256_set1_pd(1e-300);
  const __m256d one = _mm256_set1_pd(1.0);

  std::size_t s = 0;
  for (; s + 4 <= k; s += 4) {
    __m256d pivot = _mm256_loadu_pd(diag + s);
    __m256d bad =
        _mm256_cmp_pd(_mm256_and_pd(pivot, abs_mask), tiny, _CMP_LT_OQ);
    int bad_mask = _mm256_movemask_pd(bad);
    if (bad_mask != 0) RecordFailures(bad_mask, 0, s, failed_row);
    __m256d safe = _mm256_blendv_pd(pivot, one, bad);
    __m256d c = _mm256_div_pd(_mm256_loadu_pd(upper + s), safe);
    __m256d d = _mm256_div_pd(_mm256_loadu_pd(rhs + s), safe);
    _mm256_storeu_pd(c_prime + s, c);
    _mm256_storeu_pd(d_prime + s, d);

    for (std::size_t row = 1; row < rows; ++row) {
      const std::size_t at = row * k + s;
      const __m256d lo = _mm256_loadu_pd(lower + at);
      pivot = _mm256_sub_pd(_mm256_loadu_pd(diag + at),
                            _mm256_mul_pd(lo, c));
      bad = _mm256_cmp_pd(_mm256_and_pd(pivot, abs_mask), tiny, _CMP_LT_OQ);
      bad_mask = _mm256_movemask_pd(bad);
      if (bad_mask != 0) RecordFailures(bad_mask, row, s, failed_row);
      safe = _mm256_blendv_pd(pivot, one, bad);
      c = _mm256_div_pd(_mm256_loadu_pd(upper + at), safe);
      d = _mm256_div_pd(
          _mm256_sub_pd(_mm256_loadu_pd(rhs + at), _mm256_mul_pd(lo, d)),
          safe);
      _mm256_storeu_pd(c_prime + at, c);
      _mm256_storeu_pd(d_prime + at, d);
    }

    const std::size_t last = (rows - 1) * k + s;
    __m256d x = _mm256_loadu_pd(d_prime + last);
    _mm256_storeu_pd(solution + last, x);
    for (std::size_t row = rows - 1; row-- > 0;) {
      const std::size_t at = row * k + s;
      x = _mm256_sub_pd(_mm256_loadu_pd(d_prime + at),
                        _mm256_mul_pd(_mm256_loadu_pd(c_prime + at), x));
      _mm256_storeu_pd(solution + at, x);
    }
  }

  for (; s < k; ++s) {
    SolveLane(lower, diag, upper, rhs, rows, k, s, c_prime, d_prime, solution,
              failed_row);
  }
}

}  // namespace vaolib::numeric::internal

#endif  // VAOLIB_SIMD_AVX2
