#include "numeric/pde2d_solver.h"

#include <cmath>

#include "common/macros.h"
#include "numeric/tridiagonal.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vaolib::numeric {

namespace {

Status ValidateInputs(const Pde2dProblem& p, const Pde2dGrid& grid) {
  if (!p.diffusion_x || !p.diffusion_y || !p.convection_x ||
      !p.convection_y || !p.reaction || !p.source || !p.terminal) {
    return Status::InvalidArgument("2D PDE problem has unset coefficient(s)");
  }
  if (!(p.x_max > p.x_min) || !(p.y_max > p.y_min)) {
    return Status::InvalidArgument("2D PDE domain is degenerate");
  }
  if (!(p.t_end > 0.0)) {
    return Status::InvalidArgument("2D PDE horizon requires t_end > 0");
  }
  if (grid.x_intervals < 2 || grid.y_intervals < 2 || grid.t_steps < 1) {
    return Status::InvalidArgument(
        "2D PDE grid requires >= 2 intervals per axis and >= 1 t-step");
  }
  return Status::OK();
}

}  // namespace

Result<double> SolvePde2d(const Pde2dProblem& problem, const Pde2dGrid& grid,
                          double query_x, double query_y, WorkMeter* meter) {
  const obs::ScopedSpan span("solver", "pde2d", obs::TraceDetail::kFine);
  VAOLIB_RETURN_IF_ERROR(ValidateInputs(problem, grid));
  if (query_x < problem.x_min || query_x > problem.x_max ||
      query_y < problem.y_min || query_y > problem.y_max) {
    return Status::OutOfRange("query point outside 2D PDE domain");
  }

  const int nx = grid.x_intervals;
  const int ny = grid.y_intervals;
  const double dx = grid.Dx(problem);
  const double dy = grid.Dy(problem);
  const double dt = grid.Dt(problem);
  const int stride = nx + 1;
  const auto nodes = static_cast<std::size_t>((nx + 1) * (ny + 1));

  auto at = [stride](int i, int j) { return j * stride + i; };

  // Node coordinates and per-node coefficients (t-independent).
  std::vector<double> ax(nodes), ay(nodes), bx(nodes), by(nodes), rr(nodes),
      cc(nodes);
  for (int j = 0; j <= ny; ++j) {
    const double y = problem.y_min + dy * j;
    for (int i = 0; i <= nx; ++i) {
      const double x = problem.x_min + dx * i;
      const auto k = static_cast<std::size_t>(at(i, j));
      ax[k] = problem.diffusion_x(x, y);
      ay[k] = problem.diffusion_y(x, y);
      bx[k] = problem.convection_x(x, y);
      by[k] = problem.convection_y(x, y);
      rr[k] = problem.reaction(x, y);
      cc[k] = problem.source(x, y);
      if (!(ax[k] > 0.0) || !(ay[k] > 0.0)) {
        return Status::InvalidArgument(
            "2D diffusion coefficients must be > 0 on the domain");
      }
    }
  }

  // Terminal condition.
  std::vector<double> u(nodes);
  for (int j = 0; j <= ny; ++j) {
    const double y = problem.y_min + dy * j;
    for (int i = 0; i <= nx; ++i) {
      u[at(i, j)] = problem.terminal(problem.x_min + dx * i, y);
    }
  }

  TridiagonalSystem sys;
  TridiagonalScratch scratch;  // reused across every sweep of the march
  std::vector<double> line;

  // One implicit sweep along the x axis for every y row: solves
  // (I - dt(a F_ss + b F_s - r/2)) U* = U + dt*c/2 with s the sweep axis.
  auto sweep = [&](bool along_x) -> Status {
    const int sweep_n = along_x ? nx : ny;
    const int cross_n = along_x ? ny : nx;
    const double h = along_x ? dx : dy;
    sys.Resize(static_cast<std::size_t>(sweep_n + 1));
    for (int cross = 0; cross <= cross_n; ++cross) {
      for (int s = 1; s < sweep_n; ++s) {
        const int i = along_x ? s : cross;
        const int j = along_x ? cross : s;
        const auto k = static_cast<std::size_t>(at(i, j));
        const double diff = (along_x ? ax[k] : ay[k]) / (h * h);
        const double conv = (along_x ? bx[k] : by[k]) / (2.0 * h);
        sys.lower[s] = -dt * (diff - conv);
        sys.diag[s] = 1.0 + dt * (2.0 * diff + 0.5 * rr[k]);
        sys.upper[s] = -dt * (diff + conv);
        sys.rhs[s] = u[k] + 0.5 * dt * cc[k];
      }

      if (problem.dirichlet_zero) {
        sys.lower[0] = 0.0;
        sys.diag[0] = 1.0;
        sys.upper[0] = 0.0;
        sys.rhs[0] = 0.0;
        sys.lower[sweep_n] = 0.0;
        sys.diag[sweep_n] = 1.0;
        sys.upper[sweep_n] = 0.0;
        sys.rhs[sweep_n] = 0.0;
      } else {
        // Linearity on the sweep axis: U_0 = 2U_1 - U_2 folded into row 1
        // (and mirrored at the top), as in the 1-factor solver.
        sys.lower[0] = 0.0;
        sys.diag[0] = 1.0;
        sys.upper[0] = 0.0;
        sys.rhs[0] = 0.0;
        const double l1 = sys.lower[1];
        sys.lower[1] = 0.0;
        sys.diag[1] += 2.0 * l1;
        sys.upper[1] -= l1;

        sys.lower[sweep_n] = 0.0;
        sys.diag[sweep_n] = 1.0;
        sys.upper[sweep_n] = 0.0;
        sys.rhs[sweep_n] = 0.0;
        const double un = sys.upper[sweep_n - 1];
        sys.upper[sweep_n - 1] = 0.0;
        sys.diag[sweep_n - 1] += 2.0 * un;
        sys.lower[sweep_n - 1] -= un;
      }

      VAOLIB_RETURN_IF_ERROR(SolveTridiagonal(sys, &line, &scratch));

      if (!problem.dirichlet_zero) {
        line[0] = 2.0 * line[1] - line[2];
        line[sweep_n] = 2.0 * line[sweep_n - 1] - line[sweep_n - 2];
      }
      for (int s = 0; s <= sweep_n; ++s) {
        const int i = along_x ? s : cross;
        const int j = along_x ? cross : s;
        if (!std::isfinite(line[s])) {
          return Status::NumericError("2D PDE solve produced non-finite value");
        }
        u[at(i, j)] = line[s];
      }
    }
    return Status::OK();
  };

  for (int m = 0; m < grid.t_steps; ++m) {
    VAOLIB_RETURN_IF_ERROR(sweep(/*along_x=*/true));
    VAOLIB_RETURN_IF_ERROR(sweep(/*along_x=*/false));
  }

  if (meter != nullptr) {
    meter->Charge(WorkKind::kExec, grid.MeshEntries());
  }
  obs::CountSolverWork(obs::SolverKind::kPde2d, grid.MeshEntries());

  // Bilinear interpolation at the query point.
  const double px = (query_x - problem.x_min) / dx;
  const double py = (query_y - problem.y_min) / dy;
  auto i0 = static_cast<int>(px);
  auto j0 = static_cast<int>(py);
  if (i0 >= nx) i0 = nx - 1;
  if (j0 >= ny) j0 = ny - 1;
  const double fx = px - i0;
  const double fy = py - j0;
  const double v00 = u[at(i0, j0)];
  const double v10 = u[at(i0 + 1, j0)];
  const double v01 = u[at(i0, j0 + 1)];
  const double v11 = u[at(i0 + 1, j0 + 1)];
  return (1 - fx) * (1 - fy) * v00 + fx * (1 - fy) * v10 +
         (1 - fx) * fy * v01 + fx * fy * v11;
}

}  // namespace vaolib::numeric
