// Copyright 2026 The vaolib Authors.
// Shared types for the batched (struct-of-arrays) numeric kernels.
//
// The batch kernels execute K independent problem instances in lockstep
// over contiguous per-plane arrays laid out as plane[row * K + system], so
// the innermost loop runs over adjacent systems and auto-vectorizes. Each
// lane performs exactly the IEEE operation sequence of its scalar
// counterpart, making batch results bit-identical to scalar results
// per system (see DESIGN.md section 4f).
//
// Failures are per-system: one lane hitting a zero pivot or a non-finite
// value must not poison its neighbours, so kernels report failures through
// BatchKernelReport instead of a whole-batch Status.

#ifndef VAOLIB_NUMERIC_BATCH_H_
#define VAOLIB_NUMERIC_BATCH_H_

#include <cstdint>
#include <cstddef>
#include <vector>

namespace vaolib::numeric {

/// \brief Per-system failure record of one batch kernel invocation.
struct BatchKernelReport {
  /// One entry per system: -1 when the lane completed, otherwise the
  /// row/step index where it first failed (zero pivot, non-finite value).
  /// Values of failed lanes in the output planes are unspecified; values of
  /// successful lanes are bit-identical to a scalar solve.
  std::vector<std::int32_t> failed_row;

  void Reset(std::size_t num_systems) {
    failed_row.assign(num_systems, -1);
  }

  bool ok(std::size_t system) const { return failed_row[system] < 0; }

  bool all_ok() const {
    for (const std::int32_t row : failed_row) {
      if (row >= 0) return false;
    }
    return true;
  }

  std::size_t num_failed() const {
    std::size_t failed = 0;
    for (const std::int32_t row : failed_row) {
      if (row >= 0) ++failed;
    }
    return failed;
  }
};

}  // namespace vaolib::numeric

#endif  // VAOLIB_NUMERIC_BATCH_H_
