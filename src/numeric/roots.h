// Copyright 2026 The vaolib Authors.
// Bracketing root solvers (Section 4.4 of the paper).
//
// A BracketingRootFinder maintains an interval [lo, hi] with f(lo) and f(hi)
// of opposite sign, so a root is certainly inside: the bracket IS the error
// bound, which is exactly what the VAO interface needs. Each Step() performs
// one probe (function evaluation) and shrinks the bracket. Two probe rules
// are provided: classic bisection (paper Section 4.4) and the Illinois
// variant of false position (an extension; superlinear on smooth functions
// while still bracketing).

#ifndef VAOLIB_NUMERIC_ROOTS_H_
#define VAOLIB_NUMERIC_ROOTS_H_

#include <cstdint>
#include <functional>

#include "common/bounds.h"
#include "common/result.h"
#include "common/work_meter.h"

namespace vaolib::numeric {

/// \brief How the next probe point inside the bracket is chosen.
enum class RootMethod {
  kBisection,  ///< midpoint probe; bracket halves every step
  kIllinois,   ///< Illinois false position; bracketing, usually faster
};

/// \brief Iteratively refinable bracketed root of a continuous function.
class BracketingRootFinder {
 public:
  struct Options {
    RootMethod method = RootMethod::kBisection;
    /// Work units charged per function evaluation.
    std::uint64_t work_per_eval = 1;
  };

  /// Creates a finder for f over the initial bracket [\p lo, \p hi].
  /// Evaluates f at both endpoints (charged to \p meter).
  ///
  /// \return InvalidArgument if hi <= lo or f(lo), f(hi) do not straddle
  /// zero (an endpoint that is exactly zero yields a degenerate bracket).
  static Result<BracketingRootFinder> Create(std::function<double(double)> f,
                                             double lo, double hi,
                                             const Options& options,
                                             WorkMeter* meter);

  /// Performs one probe and shrinks the bracket. No-op returning OK when the
  /// bracket is already degenerate (width 0).
  Status Step(WorkMeter* meter);

  /// Current bracket; the root lies inside with certainty.
  Bounds bounds() const { return Bounds(lo_, hi_); }

  /// Predicted bracket after the next Step(). For bisection this is the half
  /// on the same side the bracket last kept (momentum guess); per the paper
  /// even a random guess is wrong only half the time and never off by more
  /// than 2x. For Illinois it is the sub-bracket cut at the secant point.
  Bounds PredictedBoundsAfterStep() const;

  /// Work units the next Step() will charge.
  std::uint64_t CostOfNextStep() const { return options_.work_per_eval; }

  /// Total function evaluations so far.
  std::uint64_t total_evaluations() const { return total_evaluations_; }

 private:
  BracketingRootFinder(std::function<double(double)> f,
                       const Options& options);

  /// Next probe abscissa according to the configured method.
  double ProbePoint() const;

  std::function<double(double)> f_;
  Options options_;
  double lo_ = 0.0;
  double hi_ = 0.0;
  double f_lo_ = 0.0;
  double f_hi_ = 0.0;
  bool last_kept_lower_ = true;  ///< momentum for the prediction heuristic
  std::uint64_t total_evaluations_ = 0;
};

}  // namespace vaolib::numeric

#endif  // VAOLIB_NUMERIC_ROOTS_H_
