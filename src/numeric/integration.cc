#include "common/macros.h"
#include "numeric/integration.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace vaolib::numeric {

namespace {

// Error-reduction factor per interval halving: 4 for an O(h^2) rule, 16 for
// an O(h^4) rule. Romberg's reduction is superlinear and handled
// dynamically in PredictedErrorAfterRefine().
double ReductionFactor(IntegrationRule rule) {
  return rule == IntegrationRule::kTrapezoid ? 4.0 : 16.0;
}

// |S_fine - S_coarse| -> error of S_fine divisor: 3 for trapezoid (since
// err_coarse ~= 4 * err_fine), 15 for Simpson, 1 (fully conservative) for
// the Romberg diagonal, whose convergence rate is not a fixed power of h.
double DifferenceDivisor(IntegrationRule rule) {
  switch (rule) {
    case IntegrationRule::kTrapezoid:
      return 3.0;
    case IntegrationRule::kSimpson:
      return 15.0;
    case IntegrationRule::kRomberg:
      return 1.0;
  }
  return 1.0;
}

// Richardson-accelerated diagonal element R[k][k] from the trapezoid first
// column T_0..T_k (classic in-place Romberg recurrence).
double RombergDiagonal(std::vector<double> column) {
  const std::size_t k = column.size();
  double pow4 = 1.0;
  for (std::size_t j = 1; j < k; ++j) {
    pow4 *= 4.0;
    for (std::size_t i = k; i-- > j;) {
      column[i] = (pow4 * column[i] - column[i - 1]) / (pow4 - 1.0);
    }
  }
  return column.back();
}

Result<double> CompositeValue(const std::vector<double>& samples, double a,
                              double b, IntegrationRule rule) {
  const std::size_t n = samples.size();
  if (n < 2) {
    return Status::InvalidArgument("composite rule needs >= 2 samples");
  }
  const auto panels = n - 1;
  const double h = (b - a) / static_cast<double>(panels);
  if (rule == IntegrationRule::kTrapezoid ||
      rule == IntegrationRule::kRomberg) {
    // Romberg's first column is the plain composite trapezoid.
    double sum = 0.5 * (samples.front() + samples.back());
    for (std::size_t i = 1; i + 1 < n; ++i) sum += samples[i];
    return sum * h;
  }
  // Simpson requires an even panel count.
  if (panels % 2 != 0) {
    return Status::InvalidArgument("Simpson rule needs an even panel count");
  }
  double sum = samples.front() + samples.back();
  for (std::size_t i = 1; i + 1 < n; ++i) {
    sum += samples[i] * (i % 2 == 1 ? 4.0 : 2.0);
  }
  return sum * h / 3.0;
}

}  // namespace

RefinableIntegral::RefinableIntegral(std::function<double(double)> f, double a,
                                     double b, const Options& options)
    : f_(std::move(f)), a_(a), b_(b), options_(options) {}

Result<RefinableIntegral> RefinableIntegral::Create(
    std::function<double(double)> f, double a, double b,
    const Options& options, WorkMeter* meter) {
  if (!f) return Status::InvalidArgument("integrand is empty");
  if (!(b > a)) return Status::InvalidArgument("integration needs b > a");
  if (options.safety_factor < 1.0) {
    return Status::InvalidArgument("safety_factor must be >= 1");
  }
  if (options.max_level < 2) {
    return Status::InvalidArgument("max_level must be >= 2");
  }

  RefinableIntegral integral(std::move(f), a, b, options);

  // Level 0: endpoints only.
  integral.samples_ = {integral.f_(a), integral.f_(b)};
  integral.total_evaluations_ = 2;
  if (meter != nullptr) {
    meter->Charge(WorkKind::kExec, 2 * options.work_per_eval);
  }
  obs::CountSolverWork(obs::SolverKind::kIntegral, 2 * options.work_per_eval);
  // Simpson needs >= 2 panels for its first value; trapezoid works at one.
  if (options.rule == IntegrationRule::kTrapezoid ||
      options.rule == IntegrationRule::kRomberg) {
    VAOLIB_ASSIGN_OR_RETURN(const double t0, integral.RuleValue());
    VAOLIB_RETURN_IF_ERROR(integral.AddLevel(meter));
    VAOLIB_ASSIGN_OR_RETURN(const double t1, integral.RuleValue());
    if (options.rule == IntegrationRule::kRomberg) {
      integral.trapezoid_history_ = {t0, t1};
      integral.coarse_value_ = t0;
      integral.fine_value_ = RombergDiagonal(integral.trapezoid_history_);
    } else {
      integral.coarse_value_ = t0;
      integral.fine_value_ = t1;
    }
  } else {
    VAOLIB_RETURN_IF_ERROR(integral.AddLevel(meter));  // level 1: 2 panels
    VAOLIB_ASSIGN_OR_RETURN(integral.coarse_value_, integral.RuleValue());
    VAOLIB_RETURN_IF_ERROR(integral.AddLevel(meter));  // level 2: 4 panels
    VAOLIB_ASSIGN_OR_RETURN(integral.fine_value_, integral.RuleValue());
  }
  integral.UpdateErrorBound();
  return integral;
}

Status RefinableIntegral::AddLevel(WorkMeter* meter) {
  if (level_ >= options_.max_level) {
    return Status::ResourceExhausted("integral refinement at max_level");
  }
  const std::size_t old_n = samples_.size();
  const std::size_t panels = old_n - 1;
  std::vector<double> next(2 * panels + 1);
  const double h = (b_ - a_) / static_cast<double>(2 * panels);
  for (std::size_t i = 0; i < old_n; ++i) next[2 * i] = samples_[i];
  for (std::size_t i = 0; i < panels; ++i) {
    const double x = a_ + h * static_cast<double>(2 * i + 1);
    next[2 * i + 1] = f_(x);
  }
  total_evaluations_ += panels;
  if (meter != nullptr) {
    meter->Charge(WorkKind::kExec,
                  static_cast<std::uint64_t>(panels) * options_.work_per_eval);
  }
  obs::CountSolverWork(obs::SolverKind::kIntegral,
                       static_cast<std::uint64_t>(panels) *
                           options_.work_per_eval);
  samples_.swap(next);
  ++level_;
  return Status::OK();
}

Result<double> RefinableIntegral::RuleValue() const {
  return CompositeValue(samples_, a_, b_, options_.rule);
}

void RefinableIntegral::UpdateErrorBound() {
  const double diff = std::abs(fine_value_ - coarse_value_);
  error_bound_ =
      options_.safety_factor * diff / DifferenceDivisor(options_.rule);
}

Status RefinableIntegral::Refine(WorkMeter* meter) {
  const obs::ScopedSpan span("solver", "integral", obs::TraceDetail::kFine);
  coarse_value_ = fine_value_;
  previous_error_ = error_bound_;
  VAOLIB_RETURN_IF_ERROR(AddLevel(meter));
  if (options_.rule == IntegrationRule::kRomberg) {
    VAOLIB_ASSIGN_OR_RETURN(const double trap, RuleValue());
    trapezoid_history_.push_back(trap);
    fine_value_ = RombergDiagonal(trapezoid_history_);
  } else {
    VAOLIB_ASSIGN_OR_RETURN(fine_value_, RuleValue());
  }
  UpdateErrorBound();
  return Status::OK();
}

Status RefinableIntegral::RefineBatch(
    const std::vector<RefinableIntegral*>& integrals, WorkMeter* meter) {
  const std::size_t k = integrals.size();
  if (k == 0) return Status::InvalidArgument("integral batch is empty");
  if (k == 1) return integrals[0]->Refine(meter);
  for (RefinableIntegral* integral : integrals) {
    if (integral == nullptr) {
      return Status::InvalidArgument("integral batch contains null");
    }
  }
  const IntegrationRule rule = integrals[0]->options_.rule;
  const int level = integrals[0]->level_;
  for (const RefinableIntegral* integral : integrals) {
    if (integral->options_.rule != rule || integral->level_ != level) {
      return Status::InvalidArgument(
          "integral batch must share rule and level");
    }
    if (integral->level_ >= integral->options_.max_level) {
      return Status::ResourceExhausted("integral refinement at max_level");
    }
  }

  const obs::ScopedSpan span("solver", "integral_batch",
                             obs::TraceDetail::kFine);
  // Integrand evaluations stay per-object (each lane has its own f).
  // AddLevel cannot fail here: the shared level was checked against every
  // object's max_level above.
  for (RefinableIntegral* integral : integrals) {
    integral->coarse_value_ = integral->fine_value_;
    integral->previous_error_ = integral->error_bound_;
    VAOLIB_RETURN_IF_ERROR(integral->AddLevel(meter));
  }

  // Stage the samples into one SoA plane and run the composite reduction
  // across the batch.
  const std::size_t n = integrals[0]->samples_.size();
  std::vector<double> plane(n * k);
  std::vector<double> a(k);
  std::vector<double> b(k);
  std::vector<double> values(k);
  for (std::size_t s = 0; s < k; ++s) {
    a[s] = integrals[s]->a_;
    b[s] = integrals[s]->b_;
    const std::vector<double>& samples = integrals[s]->samples_;
    for (std::size_t i = 0; i < n; ++i) plane[i * k + s] = samples[i];
  }
  internal::CompositeValueBatch(plane.data(), n, k, a.data(), b.data(), rule,
                                values.data());

  for (std::size_t s = 0; s < k; ++s) {
    RefinableIntegral* integral = integrals[s];
    if (rule == IntegrationRule::kRomberg) {
      integral->trapezoid_history_.push_back(values[s]);
      integral->fine_value_ = RombergDiagonal(integral->trapezoid_history_);
    } else {
      integral->fine_value_ = values[s];
    }
    integral->UpdateErrorBound();
  }
  return Status::OK();
}

double RefinableIntegral::PredictedErrorAfterRefine() const {
  if (options_.rule == IntegrationRule::kRomberg) {
    // Romberg converges superlinearly; extrapolate from the observed
    // per-level error ratio, clamped to at least the Simpson rate.
    if (previous_error_ > 0.0 && error_bound_ > 0.0) {
      const double ratio =
          std::min(error_bound_ / previous_error_, 1.0 / 16.0);
      return error_bound_ * ratio;
    }
    return error_bound_ / 16.0;
  }
  return error_bound_ / ReductionFactor(options_.rule);
}

Bounds RefinableIntegral::PredictedBoundsAfterRefine() const {
  if (options_.rule == IntegrationRule::kRomberg) {
    // The diagonal is already extrapolated; predict it stays put with a
    // much tighter error.
    return Bounds::Centered(fine_value_, PredictedErrorAfterRefine());
  }
  // Predict the value moving most of the way toward the truth: extrapolate
  // by the signed coarse/fine trend shrunk by the reduction factor.
  const double trend = fine_value_ - coarse_value_;
  const double predicted =
      fine_value_ + trend / (ReductionFactor(options_.rule) - 1.0);
  return Bounds::Centered(predicted, PredictedErrorAfterRefine());
}

std::uint64_t RefinableIntegral::CostOfNextRefine() const {
  // Next refinement evaluates one new midpoint per current panel.
  return static_cast<std::uint64_t>(samples_.size() - 1) *
         options_.work_per_eval;
}

Result<double> Integrate(const std::function<double(double)>& f, double a,
                         double b, IntegrationRule rule, int panels,
                         std::uint64_t work_per_eval, WorkMeter* meter) {
  if (!f) return Status::InvalidArgument("integrand is empty");
  if (!(b > a)) return Status::InvalidArgument("integration needs b > a");
  if (panels < 1) return Status::InvalidArgument("panels must be >= 1");
  if (rule == IntegrationRule::kSimpson && panels % 2 != 0) {
    return Status::InvalidArgument("Simpson rule needs an even panel count");
  }
  if (rule == IntegrationRule::kRomberg) {
    return Status::InvalidArgument(
        "Romberg needs the refinement history; use RefinableIntegral");
  }
  std::vector<double> samples(panels + 1);
  const double h = (b - a) / panels;
  for (int i = 0; i <= panels; ++i) samples[i] = f(a + h * i);
  if (meter != nullptr) {
    meter->Charge(WorkKind::kExec,
                  static_cast<std::uint64_t>(panels + 1) * work_per_eval);
  }
  obs::CountSolverWork(obs::SolverKind::kIntegral,
                       static_cast<std::uint64_t>(panels + 1) * work_per_eval);
  return CompositeValue(samples, a, b, rule);
}

namespace internal {

void CompositeValueBatch(const double* samples, std::size_t n, std::size_t k,
                         const double* a, const double* b,
                         IntegrationRule rule, double* values) {
  const std::size_t panels = n - 1;
  if (rule == IntegrationRule::kTrapezoid ||
      rule == IntegrationRule::kRomberg) {
    const std::size_t last = panels * k;
    for (std::size_t s = 0; s < k; ++s) {
      values[s] = 0.5 * (samples[s] + samples[last + s]);
    }
    for (std::size_t i = 1; i + 1 < n; ++i) {
      const std::size_t base = i * k;
      for (std::size_t s = 0; s < k; ++s) values[s] += samples[base + s];
    }
    for (std::size_t s = 0; s < k; ++s) {
      const double h = (b[s] - a[s]) / static_cast<double>(panels);
      values[s] = values[s] * h;
    }
    return;
  }
  const std::size_t last = panels * k;
  for (std::size_t s = 0; s < k; ++s) {
    values[s] = samples[s] + samples[last + s];
  }
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const std::size_t base = i * k;
    const double weight = i % 2 == 1 ? 4.0 : 2.0;
    for (std::size_t s = 0; s < k; ++s) {
      values[s] += samples[base + s] * weight;
    }
  }
  for (std::size_t s = 0; s < k; ++s) {
    const double h = (b[s] - a[s]) / static_cast<double>(panels);
    values[s] = values[s] * h / 3.0;
  }
}

}  // namespace internal

}  // namespace vaolib::numeric
