#include "numeric/tridiagonal.h"

#include <cmath>
#include <string>

namespace vaolib::numeric {

void TridiagonalSystem::Resize(std::size_t n) {
  lower.assign(n, 0.0);
  diag.assign(n, 0.0);
  upper.assign(n, 0.0);
  rhs.assign(n, 0.0);
}

void TridiagonalBatch::Resize(std::size_t k, std::size_t n) {
  num_systems = k;
  rows = n;
  lower.assign(n * k, 0.0);
  diag.assign(n * k, 0.0);
  upper.assign(n * k, 0.0);
  rhs.assign(n * k, 0.0);
}

Status SolveTridiagonal(const TridiagonalSystem& system,
                        std::vector<double>* solution,
                        TridiagonalScratch* scratch) {
  const std::size_t n = system.diag.size();
  if (n == 0) {
    return Status::InvalidArgument("tridiagonal system is empty");
  }
  if (system.lower.size() != n || system.upper.size() != n ||
      system.rhs.size() != n) {
    return Status::InvalidArgument("tridiagonal band sizes disagree");
  }

  // Forward sweep over the modified bands; every entry is overwritten, so
  // the scratch needs resizing only (no clearing).
  scratch->c_prime.resize(n);
  scratch->d_prime.resize(n);
  std::vector<double>& c_prime = scratch->c_prime;
  std::vector<double>& d_prime = scratch->d_prime;

  double pivot = system.diag[0];
  if (std::abs(pivot) < 1e-300) {
    return Status::NumericError("zero pivot at row 0");
  }
  c_prime[0] = system.upper[0] / pivot;
  d_prime[0] = system.rhs[0] / pivot;
  for (std::size_t i = 1; i < n; ++i) {
    pivot = system.diag[i] - system.lower[i] * c_prime[i - 1];
    if (std::abs(pivot) < 1e-300) {
      return Status::NumericError("zero pivot at row " + std::to_string(i));
    }
    c_prime[i] = system.upper[i] / pivot;
    d_prime[i] = (system.rhs[i] - system.lower[i] * d_prime[i - 1]) / pivot;
  }

  solution->assign(n, 0.0);
  (*solution)[n - 1] = d_prime[n - 1];
  for (std::size_t i = n - 1; i-- > 0;) {
    (*solution)[i] = d_prime[i] - c_prime[i] * (*solution)[i + 1];
  }
  return Status::OK();
}

Status SolveTridiagonal(const TridiagonalSystem& system,
                        std::vector<double>* solution) {
  static thread_local TridiagonalScratch scratch;
  return SolveTridiagonal(system, solution, &scratch);
}

namespace internal {

void SolveTridiagonalBatchGeneric(const double* lower, const double* diag,
                                  const double* upper, const double* rhs,
                                  std::size_t rows, std::size_t k,
                                  double* c_prime, double* d_prime,
                                  double* solution,
                                  std::int32_t* failed_row) {
  // Row 0: plain divisions by the first pivot. A lane whose pivot
  // underflows is neutralized with a unit pivot (branchless select) so the
  // division still happens in lockstep without perturbing other lanes; its
  // first failing row is recorded and its outputs are unspecified.
  for (std::size_t s = 0; s < k; ++s) {
    const double pivot = diag[s];
    const bool ok = !(std::abs(pivot) < 1e-300);
    if (!ok && failed_row[s] < 0) failed_row[s] = 0;
    const double safe = ok ? pivot : 1.0;
    c_prime[s] = upper[s] / safe;
    d_prime[s] = rhs[s] / safe;
  }
  for (std::size_t row = 1; row < rows; ++row) {
    const std::size_t base = row * k;
    const std::size_t prev = base - k;
    for (std::size_t s = 0; s < k; ++s) {
      const double pivot = diag[base + s] - lower[base + s] * c_prime[prev + s];
      const bool ok = !(std::abs(pivot) < 1e-300);
      if (!ok && failed_row[s] < 0) {
        failed_row[s] = static_cast<std::int32_t>(row);
      }
      const double safe = ok ? pivot : 1.0;
      c_prime[base + s] = upper[base + s] / safe;
      d_prime[base + s] =
          (rhs[base + s] - lower[base + s] * d_prime[prev + s]) / safe;
    }
  }

  const std::size_t last = (rows - 1) * k;
  for (std::size_t s = 0; s < k; ++s) solution[last + s] = d_prime[last + s];
  for (std::size_t row = rows - 1; row-- > 0;) {
    const std::size_t base = row * k;
    const std::size_t next = base + k;
    for (std::size_t s = 0; s < k; ++s) {
      solution[base + s] =
          d_prime[base + s] - c_prime[base + s] * solution[next + s];
    }
  }
}

}  // namespace internal

bool TridiagonalBatchUsesAvx2() {
#if defined(VAOLIB_SIMD_AVX2)
  static const bool supported = __builtin_cpu_supports("avx2") != 0;
  return supported;
#else
  return false;
#endif
}

Status SolveTridiagonalBatch(const TridiagonalBatch& batch,
                             std::vector<double>* solutions,
                             BatchKernelReport* report,
                             TridiagonalBatchScratch* scratch) {
  const std::size_t k = batch.num_systems;
  const std::size_t n = batch.rows;
  if (k == 0 || n == 0) {
    return Status::InvalidArgument("tridiagonal batch is empty");
  }
  const std::size_t plane = n * k;
  if (batch.lower.size() != plane || batch.diag.size() != plane ||
      batch.upper.size() != plane || batch.rhs.size() != plane) {
    return Status::InvalidArgument("tridiagonal batch plane sizes disagree");
  }

  static thread_local TridiagonalBatchScratch local_scratch;
  TridiagonalBatchScratch* work =
      scratch != nullptr ? scratch : &local_scratch;
  work->c_prime.resize(plane);
  work->d_prime.resize(plane);
  solutions->resize(plane);
  report->Reset(k);

#if defined(VAOLIB_SIMD_AVX2)
  if (TridiagonalBatchUsesAvx2() && k >= 4) {
    internal::SolveTridiagonalBatchAvx2(
        batch.lower.data(), batch.diag.data(), batch.upper.data(),
        batch.rhs.data(), n, k, work->c_prime.data(), work->d_prime.data(),
        solutions->data(), report->failed_row.data());
    return Status::OK();
  }
#endif
  internal::SolveTridiagonalBatchGeneric(
      batch.lower.data(), batch.diag.data(), batch.upper.data(),
      batch.rhs.data(), n, k, work->c_prime.data(), work->d_prime.data(),
      solutions->data(), report->failed_row.data());
  return Status::OK();
}

}  // namespace vaolib::numeric
