#include "numeric/tridiagonal.h"

#include <cmath>

namespace vaolib::numeric {

void TridiagonalSystem::Resize(std::size_t n) {
  lower.assign(n, 0.0);
  diag.assign(n, 0.0);
  upper.assign(n, 0.0);
  rhs.assign(n, 0.0);
}

Status SolveTridiagonal(const TridiagonalSystem& system,
                        std::vector<double>* solution) {
  const std::size_t n = system.diag.size();
  if (n == 0) {
    return Status::InvalidArgument("tridiagonal system is empty");
  }
  if (system.lower.size() != n || system.upper.size() != n ||
      system.rhs.size() != n) {
    return Status::InvalidArgument("tridiagonal band sizes disagree");
  }

  // Forward sweep with scratch copies of the modified bands.
  std::vector<double> c_prime(n, 0.0);
  std::vector<double> d_prime(n, 0.0);

  double pivot = system.diag[0];
  if (std::abs(pivot) < 1e-300) {
    return Status::NumericError("zero pivot at row 0");
  }
  c_prime[0] = system.upper[0] / pivot;
  d_prime[0] = system.rhs[0] / pivot;
  for (std::size_t i = 1; i < n; ++i) {
    pivot = system.diag[i] - system.lower[i] * c_prime[i - 1];
    if (std::abs(pivot) < 1e-300) {
      return Status::NumericError("zero pivot at row " + std::to_string(i));
    }
    c_prime[i] = system.upper[i] / pivot;
    d_prime[i] = (system.rhs[i] - system.lower[i] * d_prime[i - 1]) / pivot;
  }

  solution->assign(n, 0.0);
  (*solution)[n - 1] = d_prime[n - 1];
  for (std::size_t i = n - 1; i-- > 0;) {
    (*solution)[i] = d_prime[i] - c_prime[i] * (*solution)[i + 1];
  }
  return Status::OK();
}

}  // namespace vaolib::numeric
