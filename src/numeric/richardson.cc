#include "numeric/richardson.h"

#include <algorithm>

namespace vaolib::numeric {

Bounds RichardsonModel::BoundsFor(double value, double dt, double dx) const {
  const double err_t = k1_ * dt;
  const double err_x = k2_ * dx * dx;
  // A ~= value - err_t - err_x. Positive error terms push A below the value;
  // negative terms push it above. Inflate each by the safety factor.
  const double down = std::max(err_t, 0.0) + std::max(err_x, 0.0);
  const double up = std::min(err_t, 0.0) + std::min(err_x, 0.0);
  return Bounds(value - safety_ * down, value - safety_ * up);
}

StepAxis RichardsonModel::PreferredAxis(double dt, double dx) const {
  const double gain_t = std::abs(k1_) * dt * 0.5;
  const double gain_x = std::abs(k2_) * dx * dx * 0.75;
  return gain_t >= gain_x ? StepAxis::kTime : StepAxis::kSpace;
}

double RichardsonModel::PredictValueAfterHalving(double value, double dt,
                                                 double dx,
                                                 StepAxis axis) const {
  if (axis == StepAxis::kTime) {
    return value - k1_ * dt * 0.5;  // error K1*dt -> K1*dt/2
  }
  return value - k2_ * dx * dx * 0.75;  // error K2*dx^2 -> K2*dx^2/4
}

Bounds RichardsonModel::PredictBoundsAfterHalving(double value, double dt,
                                                  double dx,
                                                  StepAxis axis) const {
  const double predicted = PredictValueAfterHalving(value, dt, dx, axis);
  const double new_dt = axis == StepAxis::kTime ? dt * 0.5 : dt;
  const double new_dx = axis == StepAxis::kSpace ? dx * 0.5 : dx;
  return BoundsFor(predicted, new_dt, new_dx);
}

Bounds Richardson3Model::BoundsFor(double value, double dt, double dx,
                                   double dy) const {
  const double terms[3] = {k1_ * dt, k2_ * dx * dx, k3_ * dy * dy};
  double down = 0.0;
  double up = 0.0;
  for (const double term : terms) {
    down += std::max(term, 0.0);
    up += std::min(term, 0.0);
  }
  return Bounds(value - safety_ * down, value - safety_ * up);
}

StepAxis3 Richardson3Model::PreferredAxis(double dt, double dx,
                                          double dy) const {
  const double gain_t = std::abs(k1_) * dt * 0.5;
  const double gain_x = std::abs(k2_) * dx * dx * 0.75;
  const double gain_y = std::abs(k3_) * dy * dy * 0.75;
  if (gain_t >= gain_x && gain_t >= gain_y) return StepAxis3::kTime;
  return gain_x >= gain_y ? StepAxis3::kSpaceX : StepAxis3::kSpaceY;
}

double Richardson3Model::PredictValueAfterHalving(double value, double dt,
                                                  double dx, double dy,
                                                  StepAxis3 axis) const {
  switch (axis) {
    case StepAxis3::kTime:
      return value - k1_ * dt * 0.5;
    case StepAxis3::kSpaceX:
      return value - k2_ * dx * dx * 0.75;
    case StepAxis3::kSpaceY:
      return value - k3_ * dy * dy * 0.75;
  }
  return value;
}

Bounds Richardson3Model::PredictBoundsAfterHalving(double value, double dt,
                                                   double dx, double dy,
                                                   StepAxis3 axis) const {
  const double predicted = PredictValueAfterHalving(value, dt, dx, dy, axis);
  const double new_dt = axis == StepAxis3::kTime ? dt * 0.5 : dt;
  const double new_dx = axis == StepAxis3::kSpaceX ? dx * 0.5 : dx;
  const double new_dy = axis == StepAxis3::kSpaceY ? dy * 0.5 : dy;
  return BoundsFor(predicted, new_dt, new_dx, new_dy);
}

}  // namespace vaolib::numeric
