// Copyright 2026 The vaolib Authors.
// Refinable numerical integration (Section 4.3 of the paper).
//
// A RefinableIntegral approximates  I = \int_a^b f(x) dx  with a composite
// quadrature rule over 2^level uniform panels. Each Refine() call halves
// every interval (the paper's iteration), reusing all previously computed
// samples and evaluating only the new midpoints, so the cumulative number of
// integrand evaluations across all refinements equals the evaluations of a
// one-shot composite rule at the final resolution -- the paper's observation
// that the VAO interface costs essentially nothing extra for integrators.
//
// Error bounds come from the coarse/fine difference: for an O(h^2) rule
// (trapezoid) err_fine ~= |S_fine - S_coarse| / 3; for an O(h^4) rule
// (Simpson) err_fine ~= |S_fine - S_coarse| / 15. A safety factor inflates
// the estimate, mirroring the paper's treatment of hidden higher-order terms.

#ifndef VAOLIB_NUMERIC_INTEGRATION_H_
#define VAOLIB_NUMERIC_INTEGRATION_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/bounds.h"
#include "common/result.h"
#include "common/work_meter.h"

namespace vaolib::numeric {

/// \brief Quadrature rule used by RefinableIntegral.
enum class IntegrationRule {
  kTrapezoid,  ///< O(h^2) composite trapezoid
  kSimpson,    ///< O(h^4) composite Simpson
  kRomberg,    ///< Richardson-accelerated trapezoid (Romberg) -- an
               ///< extension; spectral convergence on smooth integrands
};

/// \brief Iteratively refinable estimate of a definite integral.
class RefinableIntegral {
 public:
  struct Options {
    IntegrationRule rule = IntegrationRule::kTrapezoid;
    /// Multiplier on the coarse/fine error estimate (>= 1).
    double safety_factor = 3.0;
    /// Work units charged per integrand evaluation (model the integrand's
    /// own expense; the paper's integrands are themselves costly functions).
    std::uint64_t work_per_eval = 1;
    /// Hard cap on refinement level (panels = 2^level) to bound memory.
    int max_level = 30;
  };

  /// Creates the integral of \p f over [\p a, \p b]. Evaluates the rule at
  /// levels 0 and 1 so an error estimate exists immediately (3 evaluations
  /// for trapezoid). Charges \p meter if non-null.
  ///
  /// \return InvalidArgument if f is empty or b <= a.
  static Result<RefinableIntegral> Create(std::function<double(double)> f,
                                          double a, double b,
                                          const Options& options,
                                          WorkMeter* meter);

  /// Halves every interval: advances to the next level, evaluating 2^(level)
  /// new midpoints. Charges \p meter if non-null.
  /// \return ResourceExhausted at max_level.
  Status Refine(WorkMeter* meter);

  /// Refines every integral of \p integrals once, in lockstep. All must
  /// share the same rule and level (panel count); integrand evaluations stay
  /// per-object, but the composite-rule reduction runs over a contiguous
  /// struct-of-arrays sample plane across the batch. Per-object results are
  /// bit-identical to calling Refine() on each. Charges per object exactly
  /// what Refine() would.
  ///
  /// \return InvalidArgument for an empty/mixed batch, ResourceExhausted
  /// when the shared level is at max_level (no object is mutated then).
  static Status RefineBatch(const std::vector<RefinableIntegral*>& integrals,
                            WorkMeter* meter);

  /// Current best estimate (finest-level composite value).
  double estimate() const { return fine_value_; }

  /// Current error magnitude bound (safety-inflated coarse/fine difference).
  double error_bound() const { return error_bound_; }

  /// [estimate - error, estimate + error].
  Bounds bounds() const {
    return Bounds::Centered(fine_value_, error_bound_);
  }

  /// Predicted error after the next Refine(): the current error divided by
  /// the rule's per-halving reduction (4 for trapezoid -- the paper's
  /// "one-fourth of the current error magnitude" -- 16 for Simpson).
  double PredictedErrorAfterRefine() const;

  /// Predicted bounds after the next Refine(), for the estL/estH interface.
  Bounds PredictedBoundsAfterRefine() const;

  /// Work units the next Refine() will charge (new evals * work_per_eval).
  std::uint64_t CostOfNextRefine() const;

  /// Current refinement level; panels = 2^level.
  int level() const { return level_; }

  /// Total integrand evaluations performed so far.
  std::uint64_t total_evaluations() const { return total_evaluations_; }

 private:
  RefinableIntegral(std::function<double(double)> f, double a, double b,
                    const Options& options);

  /// Evaluates f at the midpoints missing from the current sample set and
  /// doubles the panel count.
  Status AddLevel(WorkMeter* meter);

  /// Composite rule value over the current samples.
  Result<double> RuleValue() const;

  void UpdateErrorBound();

  std::function<double(double)> f_;
  double a_;
  double b_;
  Options options_;

  std::vector<double> samples_;  ///< f at 2^level + 1 uniform points
  /// Trapezoid values per level (Romberg first column) and the previous
  /// error, used for the kRomberg diagonal and its error prediction.
  std::vector<double> trapezoid_history_;
  double previous_error_ = 0.0;
  int level_ = 0;
  double coarse_value_ = 0.0;  ///< rule value one level back
  double fine_value_ = 0.0;    ///< rule value at the current level
  double error_bound_ = 0.0;
  std::uint64_t total_evaluations_ = 0;
};

/// \brief One-shot composite quadrature at a fixed number of panels
/// (panels must be >= 1, and even for Simpson); the "traditional solver"
/// counterpart used by black-box baselines and tests.
Result<double> Integrate(const std::function<double(double)>& f, double a,
                         double b, IntegrationRule rule, int panels,
                         std::uint64_t work_per_eval, WorkMeter* meter);

namespace internal {

/// Composite rule over K sample columns in lockstep. \p samples is a dense
/// plane with layout samples[i * k + s] (sample i of system s); every system
/// has \p n samples over its own [a[s], b[s]]. Writes the rule value per
/// system into \p values. For kRomberg this is the plain trapezoid column
/// value, as in the scalar path. Preconditions (checked by callers): n >= 2,
/// and an even panel count for kSimpson. Each lane performs the identical
/// IEEE operation sequence of the scalar composite rule.
void CompositeValueBatch(const double* samples, std::size_t n, std::size_t k,
                         const double* a, const double* b,
                         IntegrationRule rule, double* values);

}  // namespace internal

}  // namespace vaolib::numeric

#endif  // VAOLIB_NUMERIC_INTEGRATION_H_
