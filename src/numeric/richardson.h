// Copyright 2026 The vaolib Authors.
// Richardson-style extrapolation error model for finite-difference solvers
// (Section 4.1 of the paper).
//
// For a solver with error of the form O(dt + dx^2) the model assumes
//   F(dt, dx) = A + K1*dt + K2*dx^2  (higher-order terms dropped),
// estimates K1 from a (dt, dt/2) solution pair and K2 from a (dx, dx/2)
// pair, and converts the estimates into conservative real-valued bounds on
// the true answer A by inflating each term with a safety factor (the paper
// observed K1/K2 wobble of 2-3x across step sizes and uses factor 3).

#ifndef VAOLIB_NUMERIC_RICHARDSON_H_
#define VAOLIB_NUMERIC_RICHARDSON_H_

#include "common/bounds.h"

namespace vaolib::numeric {

/// \brief Which step size an iteration halves.
enum class StepAxis { kTime, kSpace };

/// \brief Error model err(dt, dx) ~= K1*dt + K2*dx^2 with a safety factor.
class RichardsonModel {
 public:
  /// Creates a model with the given \p safety_factor (>= 1; the paper uses 3).
  explicit RichardsonModel(double safety_factor = 3.0)
      : safety_(safety_factor) {}

  /// Estimates K1 from solutions at (dt, dx) and (dt/2, dx):
  /// F1 - F2 = K1*dt/2, so K1 = 2*(F1 - F2)/dt.
  void EstimateK1(double coarse_value, double half_dt_value, double dt) {
    k1_ = 2.0 * (coarse_value - half_dt_value) / dt;
  }

  /// Estimates K2 from solutions at (dt, dx) and (dt, dx/2):
  /// F1 - F3 = (3/4)*K2*dx^2, so K2 = (4/3)*(F1 - F3)/dx^2.
  void EstimateK2(double coarse_value, double half_dx_value, double dx) {
    k2_ = (4.0 / 3.0) * (coarse_value - half_dx_value) / (dx * dx);
  }

  double k1() const { return k1_; }
  double k2() const { return k2_; }
  double safety_factor() const { return safety_; }

  /// Conservative bounds on the true answer A given the computed \p value at
  /// step sizes (\p dt, \p dx): A = value - K1*dt - K2*dx^2, each error term
  /// inflated by the safety factor and taken in its unfavourable direction,
  /// so the computed value itself is always inside the bounds. This reduces
  /// to the paper's [F1 - 3*K1*dt, F1 - 3*K2*dx^2] when K1 > 0 and K2 < 0.
  Bounds BoundsFor(double value, double dt, double dx) const;

  /// Signed modelled error K1*dt + K2*dx^2 at the given steps.
  double ModeledError(double dt, double dx) const {
    return k1_ * dt + k2_ * dx * dx;
  }

  /// The axis whose halving removes more modelled error. Halving dt removes
  /// |K1|*dt/2; halving dx removes (3/4)*|K2|*dx^2. Both roughly double the
  /// mesh, so the larger removal per unit cost wins.
  StepAxis PreferredAxis(double dt, double dx) const;

  /// Predicted solver output after halving \p axis: the value moves by the
  /// removed (signed) error term.
  double PredictValueAfterHalving(double value, double dt, double dx,
                                  StepAxis axis) const;

  /// Predicted bounds after halving \p axis, combining the predicted value
  /// with the shrunken error terms. These feed estL/estH of the VAO interface.
  Bounds PredictBoundsAfterHalving(double value, double dt, double dx,
                                   StepAxis axis) const;

 private:
  double safety_;
  double k1_ = 0.0;
  double k2_ = 0.0;
};

/// \brief Which of the three step sizes a two-factor iteration halves.
enum class StepAxis3 { kTime, kSpaceX, kSpaceY };

/// \brief Three-term error model err(dt, dx, dy) ~= K1*dt + K2*dx^2 +
/// K3*dy^2 for the two-factor (ADI) solver; the direct extension of the
/// paper's Section 4.1 extrapolation to a second space dimension.
class Richardson3Model {
 public:
  explicit Richardson3Model(double safety_factor = 3.0)
      : safety_(safety_factor) {}

  /// K1 from (dt, dt/2) solutions at fixed dx, dy.
  void EstimateK1(double coarse, double half_dt, double dt) {
    k1_ = 2.0 * (coarse - half_dt) / dt;
  }
  /// K2 from (dx, dx/2) solutions at fixed dt, dy.
  void EstimateK2(double coarse, double half_dx, double dx) {
    k2_ = (4.0 / 3.0) * (coarse - half_dx) / (dx * dx);
  }
  /// K3 from (dy, dy/2) solutions at fixed dt, dx.
  void EstimateK3(double coarse, double half_dy, double dy) {
    k3_ = (4.0 / 3.0) * (coarse - half_dy) / (dy * dy);
  }

  double k1() const { return k1_; }
  double k2() const { return k2_; }
  double k3() const { return k3_; }
  double safety_factor() const { return safety_; }

  /// Conservative bounds around \p value: each term inflated by the safety
  /// factor and taken in its unfavourable direction (value stays inside).
  Bounds BoundsFor(double value, double dt, double dx, double dy) const;

  /// Axis whose halving removes the most modelled error (all halvings
  /// roughly double the mesh, so removal per cost is the comparison).
  StepAxis3 PreferredAxis(double dt, double dx, double dy) const;

  /// Predicted value and bounds after halving \p axis.
  double PredictValueAfterHalving(double value, double dt, double dx,
                                  double dy, StepAxis3 axis) const;
  Bounds PredictBoundsAfterHalving(double value, double dt, double dx,
                                   double dy, StepAxis3 axis) const;

 private:
  double safety_;
  double k1_ = 0.0;
  double k2_ = 0.0;
  double k3_ = 0.0;
};

}  // namespace vaolib::numeric

#endif  // VAOLIB_NUMERIC_RICHARDSON_H_
