#include "common/macros.h"
#include "numeric/pde_solver.h"

#include <cmath>
#include <vector>

#include "numeric/tridiagonal.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vaolib::numeric {

namespace {

Status ValidateInputs(const Pde1dProblem& p, const PdeGrid& grid) {
  if (!p.diffusion || !p.convection || !p.reaction || !p.source ||
      !p.terminal) {
    return Status::InvalidArgument("PDE problem has unset coefficient(s)");
  }
  if (!(p.x_max > p.x_min)) {
    return Status::InvalidArgument("PDE domain requires x_max > x_min");
  }
  if (!(p.t_end > 0.0)) {
    return Status::InvalidArgument("PDE horizon requires t_end > 0");
  }
  if (grid.x_intervals < 2 || grid.t_steps < 1) {
    return Status::InvalidArgument(
        "PDE grid requires >= 2 x-intervals and >= 1 t-step");
  }
  if (p.left_boundary == BoundaryKind::kDirichlet && !p.left_value) {
    return Status::InvalidArgument("left Dirichlet boundary has no value fn");
  }
  if (p.right_boundary == BoundaryKind::kDirichlet && !p.right_value) {
    return Status::InvalidArgument("right Dirichlet boundary has no value fn");
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<double>> SolvePdeProfile(const Pde1dProblem& problem,
                                            const PdeGrid& grid,
                                            WorkMeter* meter) {
  const obs::ScopedSpan span("solver", "pde", obs::TraceDetail::kFine);
  VAOLIB_RETURN_IF_ERROR(ValidateInputs(problem, grid));

  const int nx = grid.x_intervals;  // nodes 0..nx
  const double dx = grid.Dx(problem);
  const double dt = grid.Dt(problem);

  // Node coordinates and t-independent per-node PDE coefficients.
  std::vector<double> x(nx + 1);
  std::vector<double> a(nx + 1), b(nx + 1), r(nx + 1), c(nx + 1);
  for (int i = 0; i <= nx; ++i) {
    x[i] = problem.x_min + dx * i;
    a[i] = problem.diffusion(x[i]);
    b[i] = problem.convection(x[i]);
    r[i] = problem.reaction(x[i]);
    c[i] = problem.source(x[i]);
    if (!(a[i] > 0.0)) {
      return Status::InvalidArgument("diffusion coefficient must be > 0 at x=" +
                                     std::to_string(x[i]));
    }
  }

  // March in tau = t_end - t; F_tau = a F_xx + b F_x - r F + c, forward
  // parabolic in tau. Backward Euler: (I - dt*A) U^{m+1} = U^m + dt*c.
  // Interior stencil of A at node i:
  //   A U |_i = a_i (U_{i+1} - 2U_i + U_{i-1})/dx^2
  //           + b_i (U_{i+1} - U_{i-1})/(2dx) - r_i U_i.
  std::vector<double> u(nx + 1);
  for (int i = 0; i <= nx; ++i) u[i] = problem.terminal(x[i]);
  // The terminal profile itself counts as the first mesh column only via
  // MeshEntries() (nx+1)*t_steps; we charge once per implicit step below.

  TridiagonalSystem sys;
  sys.Resize(nx + 1);
  TridiagonalScratch scratch;  // reused across the time march
  std::vector<double> next;

  for (int m = 0; m < grid.t_steps; ++m) {
    const double tau_next = dt * (m + 1);
    const double t_next = problem.t_end - tau_next;

    for (int i = 1; i < nx; ++i) {
      const double diff = a[i] / (dx * dx);
      const double conv = b[i] / (2.0 * dx);
      sys.lower[i] = -dt * (diff - conv);
      sys.diag[i] = 1.0 + dt * (2.0 * diff + r[i]);
      sys.upper[i] = -dt * (diff + conv);
      sys.rhs[i] = u[i] + dt * c[i];
    }

    // Left boundary row.
    if (problem.left_boundary == BoundaryKind::kDirichlet) {
      sys.lower[0] = 0.0;
      sys.diag[0] = 1.0;
      sys.upper[0] = 0.0;
      sys.rhs[0] = problem.left_value(t_next);
    } else {
      // Linearity: U_0 - 2U_1 + U_2 = 0. Fold U_0 = 2U_1 - U_2 into row 1 so
      // the matrix stays tridiagonal, then recover U_0 after the solve. Row 0
      // becomes the identity placeholder U_0 = 0 (overwritten below).
      sys.lower[0] = 0.0;
      sys.diag[0] = 1.0;
      sys.upper[0] = 0.0;
      sys.rhs[0] = 0.0;
      // Row 1 currently has coefficients (l1, d1, u1) on (U_0, U_1, U_2).
      const double l1 = sys.lower[1];
      sys.lower[1] = 0.0;
      sys.diag[1] += 2.0 * l1;
      sys.upper[1] -= l1;
    }

    // Right boundary row.
    if (problem.right_boundary == BoundaryKind::kDirichlet) {
      sys.lower[nx] = 0.0;
      sys.diag[nx] = 1.0;
      sys.upper[nx] = 0.0;
      sys.rhs[nx] = problem.right_value(t_next);
    } else {
      // Linearity: U_nx = 2U_{nx-1} - U_{nx-2}; fold into row nx-1.
      sys.lower[nx] = 0.0;
      sys.diag[nx] = 1.0;
      sys.upper[nx] = 0.0;
      sys.rhs[nx] = 0.0;
      const double unm1 = sys.upper[nx - 1];
      sys.upper[nx - 1] = 0.0;
      sys.diag[nx - 1] += 2.0 * unm1;
      sys.lower[nx - 1] -= unm1;
    }

    VAOLIB_RETURN_IF_ERROR(SolveTridiagonal(sys, &next, &scratch));

    if (problem.left_boundary == BoundaryKind::kLinear) {
      next[0] = 2.0 * next[1] - next[2];
    }
    if (problem.right_boundary == BoundaryKind::kLinear) {
      next[nx] = 2.0 * next[nx - 1] - next[nx - 2];
    }

    for (int i = 0; i <= nx; ++i) {
      if (!std::isfinite(next[i])) {
        return Status::NumericError("PDE solve produced non-finite value");
      }
    }
    u.swap(next);
  }

  if (meter != nullptr) {
    meter->Charge(WorkKind::kExec, grid.MeshEntries());
  }
  obs::CountSolverWork(obs::SolverKind::kPde, grid.MeshEntries());
  return u;
}

Status SolvePdeProfileBatch(const std::vector<const Pde1dProblem*>& problems,
                            const PdeGrid& grid, WorkMeter* meter,
                            std::vector<std::vector<double>>* profiles,
                            BatchKernelReport* report) {
  const obs::ScopedSpan span("solver", "pde_batch", obs::TraceDetail::kFine);
  const std::size_t lanes = problems.size();
  if (lanes == 0) return Status::InvalidArgument("PDE batch is empty");
  for (const Pde1dProblem* problem : problems) {
    if (problem == nullptr) {
      return Status::InvalidArgument("PDE batch contains null problem");
    }
    VAOLIB_RETURN_IF_ERROR(ValidateInputs(*problem, grid));
  }

  const int nx = grid.x_intervals;  // nodes 0..nx, shared across lanes
  const std::size_t rows = static_cast<std::size_t>(nx) + 1;
  report->Reset(lanes);

  // Per-lane spatial step, time step, and t-independent node coefficients,
  // computed with the exact expressions of the scalar solver so each lane's
  // march is bit-identical to SolvePdeProfile.
  std::vector<double> dx(lanes), dt(lanes);
  std::vector<std::vector<double>> a(lanes), b(lanes), r(lanes), c(lanes);
  std::vector<double> u(rows * lanes);  // current profile, SoA plane
  for (std::size_t s = 0; s < lanes; ++s) {
    const Pde1dProblem& problem = *problems[s];
    dx[s] = grid.Dx(problem);
    dt[s] = grid.Dt(problem);
    a[s].resize(rows);
    b[s].resize(rows);
    r[s].resize(rows);
    c[s].resize(rows);
    for (int i = 0; i <= nx; ++i) {
      const double x = problem.x_min + dx[s] * i;
      a[s][i] = problem.diffusion(x);
      b[s][i] = problem.convection(x);
      r[s][i] = problem.reaction(x);
      c[s][i] = problem.source(x);
      if (!(a[s][i] > 0.0)) {
        return Status::InvalidArgument(
            "diffusion coefficient must be > 0 at x=" + std::to_string(x));
      }
      u[static_cast<std::size_t>(i) * lanes + s] = problem.terminal(x);
    }
  }

  TridiagonalBatch batch;
  batch.Resize(lanes, rows);
  TridiagonalBatchScratch scratch;
  BatchKernelReport step_report;
  std::vector<double> solutions;
  std::vector<char> active(lanes, 1);
  std::size_t num_active = lanes;

  for (int m = 0; m < grid.t_steps && num_active > 0; ++m) {
    for (std::size_t s = 0; s < lanes; ++s) {
      if (!active[s]) {
        // Frozen lane: benign identity rows so the lockstep solve stays
        // well-conditioned without touching live lanes.
        for (int i = 0; i <= nx; ++i) {
          const std::size_t at = static_cast<std::size_t>(i) * lanes + s;
          batch.lower[at] = 0.0;
          batch.diag[at] = 1.0;
          batch.upper[at] = 0.0;
          batch.rhs[at] = 0.0;
        }
        continue;
      }
      const Pde1dProblem& problem = *problems[s];
      const double tau_next = dt[s] * (m + 1);
      const double t_next = problem.t_end - tau_next;

      for (int i = 1; i < nx; ++i) {
        const double diff = a[s][i] / (dx[s] * dx[s]);
        const double conv = b[s][i] / (2.0 * dx[s]);
        const std::size_t at = static_cast<std::size_t>(i) * lanes + s;
        batch.lower[at] = -dt[s] * (diff - conv);
        batch.diag[at] = 1.0 + dt[s] * (2.0 * diff + r[s][i]);
        batch.upper[at] = -dt[s] * (diff + conv);
        batch.rhs[at] = u[at] + dt[s] * c[s][i];
      }

      const std::size_t row0 = s;
      const std::size_t row1 = lanes + s;
      if (problem.left_boundary == BoundaryKind::kDirichlet) {
        batch.lower[row0] = 0.0;
        batch.diag[row0] = 1.0;
        batch.upper[row0] = 0.0;
        batch.rhs[row0] = problem.left_value(t_next);
      } else {
        batch.lower[row0] = 0.0;
        batch.diag[row0] = 1.0;
        batch.upper[row0] = 0.0;
        batch.rhs[row0] = 0.0;
        const double l1 = batch.lower[row1];
        batch.lower[row1] = 0.0;
        batch.diag[row1] += 2.0 * l1;
        batch.upper[row1] -= l1;
      }

      const std::size_t rown = static_cast<std::size_t>(nx) * lanes + s;
      const std::size_t rownm1 = static_cast<std::size_t>(nx - 1) * lanes + s;
      if (problem.right_boundary == BoundaryKind::kDirichlet) {
        batch.lower[rown] = 0.0;
        batch.diag[rown] = 1.0;
        batch.upper[rown] = 0.0;
        batch.rhs[rown] = problem.right_value(t_next);
      } else {
        batch.lower[rown] = 0.0;
        batch.diag[rown] = 1.0;
        batch.upper[rown] = 0.0;
        batch.rhs[rown] = 0.0;
        const double unm1 = batch.upper[rownm1];
        batch.upper[rownm1] = 0.0;
        batch.diag[rownm1] += 2.0 * unm1;
        batch.lower[rownm1] -= unm1;
      }
    }

    VAOLIB_RETURN_IF_ERROR(
        SolveTridiagonalBatch(batch, &solutions, &step_report, &scratch));

    for (std::size_t s = 0; s < lanes; ++s) {
      if (!active[s]) continue;
      if (!step_report.ok(s)) {
        active[s] = 0;
        report->failed_row[s] = m;
        --num_active;
        continue;
      }
      const Pde1dProblem& problem = *problems[s];
      if (problem.left_boundary == BoundaryKind::kLinear) {
        solutions[s] = 2.0 * solutions[lanes + s] - solutions[2 * lanes + s];
      }
      if (problem.right_boundary == BoundaryKind::kLinear) {
        const std::size_t rown = static_cast<std::size_t>(nx) * lanes + s;
        solutions[rown] =
            2.0 * solutions[rown - lanes] - solutions[rown - 2 * lanes];
      }
      bool finite = true;
      for (int i = 0; i <= nx; ++i) {
        if (!std::isfinite(solutions[static_cast<std::size_t>(i) * lanes + s])) {
          finite = false;
          break;
        }
      }
      if (!finite) {
        active[s] = 0;
        report->failed_row[s] = m;
        --num_active;
        continue;
      }
      for (int i = 0; i <= nx; ++i) {
        const std::size_t at = static_cast<std::size_t>(i) * lanes + s;
        u[at] = solutions[at];
      }
    }
  }

  std::uint64_t ok_lanes = 0;
  for (std::size_t s = 0; s < lanes; ++s) {
    if (report->ok(s)) ++ok_lanes;
  }
  if (meter != nullptr && ok_lanes > 0) {
    meter->Charge(WorkKind::kExec, grid.MeshEntries() * ok_lanes);
  }
  if (ok_lanes > 0) {
    obs::CountSolverWork(obs::SolverKind::kPde, grid.MeshEntries() * ok_lanes);
  }

  profiles->assign(lanes, std::vector<double>());
  for (std::size_t s = 0; s < lanes; ++s) {
    std::vector<double>& profile = (*profiles)[s];
    profile.resize(rows);
    for (int i = 0; i <= nx; ++i) {
      profile[i] = u[static_cast<std::size_t>(i) * lanes + s];
    }
  }
  return Status::OK();
}

Status SolvePdeBatch(const std::vector<const Pde1dProblem*>& problems,
                     const PdeGrid& grid, const std::vector<double>& query_x,
                     WorkMeter* meter, std::vector<double>* values,
                     BatchKernelReport* report) {
  if (query_x.size() != problems.size()) {
    return Status::InvalidArgument("PDE batch query count mismatch");
  }
  for (std::size_t s = 0; s < problems.size(); ++s) {
    if (problems[s] == nullptr) {
      return Status::InvalidArgument("PDE batch contains null problem");
    }
    if (query_x[s] < problems[s]->x_min || query_x[s] > problems[s]->x_max) {
      return Status::OutOfRange("query_x outside PDE domain");
    }
  }
  std::vector<std::vector<double>> profiles;
  VAOLIB_RETURN_IF_ERROR(
      SolvePdeProfileBatch(problems, grid, meter, &profiles, report));
  values->assign(problems.size(), 0.0);
  for (std::size_t s = 0; s < problems.size(); ++s) {
    if (!report->ok(s)) continue;
    const Pde1dProblem& problem = *problems[s];
    const std::vector<double>& profile = profiles[s];
    const double dx = grid.Dx(problem);
    const double pos = (query_x[s] - problem.x_min) / dx;
    auto lo = static_cast<std::size_t>(pos);
    if (lo >= profile.size() - 1) lo = profile.size() - 2;
    const double frac = pos - static_cast<double>(lo);
    (*values)[s] = profile[lo] * (1.0 - frac) + profile[lo + 1] * frac;
  }
  return Status::OK();
}

Result<double> SolvePde(const Pde1dProblem& problem, const PdeGrid& grid,
                        double query_x, WorkMeter* meter) {
  if (query_x < problem.x_min || query_x > problem.x_max) {
    return Status::OutOfRange("query_x outside PDE domain");
  }
  VAOLIB_ASSIGN_OR_RETURN(std::vector<double> profile,
                          SolvePdeProfile(problem, grid, meter));
  const double dx = grid.Dx(problem);
  const double pos = (query_x - problem.x_min) / dx;
  auto lo = static_cast<std::size_t>(pos);
  if (lo >= profile.size() - 1) lo = profile.size() - 2;
  const double frac = pos - static_cast<double>(lo);
  return profile[lo] * (1.0 - frac) + profile[lo + 1] * frac;
}

}  // namespace vaolib::numeric
