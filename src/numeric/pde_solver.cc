#include "common/macros.h"
#include "numeric/pde_solver.h"

#include <cmath>
#include <vector>

#include "numeric/tridiagonal.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vaolib::numeric {

namespace {

Status ValidateInputs(const Pde1dProblem& p, const PdeGrid& grid) {
  if (!p.diffusion || !p.convection || !p.reaction || !p.source ||
      !p.terminal) {
    return Status::InvalidArgument("PDE problem has unset coefficient(s)");
  }
  if (!(p.x_max > p.x_min)) {
    return Status::InvalidArgument("PDE domain requires x_max > x_min");
  }
  if (!(p.t_end > 0.0)) {
    return Status::InvalidArgument("PDE horizon requires t_end > 0");
  }
  if (grid.x_intervals < 2 || grid.t_steps < 1) {
    return Status::InvalidArgument(
        "PDE grid requires >= 2 x-intervals and >= 1 t-step");
  }
  if (p.left_boundary == BoundaryKind::kDirichlet && !p.left_value) {
    return Status::InvalidArgument("left Dirichlet boundary has no value fn");
  }
  if (p.right_boundary == BoundaryKind::kDirichlet && !p.right_value) {
    return Status::InvalidArgument("right Dirichlet boundary has no value fn");
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<double>> SolvePdeProfile(const Pde1dProblem& problem,
                                            const PdeGrid& grid,
                                            WorkMeter* meter) {
  const obs::ScopedSpan span("solver", "pde", obs::TraceDetail::kFine);
  VAOLIB_RETURN_IF_ERROR(ValidateInputs(problem, grid));

  const int nx = grid.x_intervals;  // nodes 0..nx
  const double dx = grid.Dx(problem);
  const double dt = grid.Dt(problem);

  // Node coordinates and t-independent per-node PDE coefficients.
  std::vector<double> x(nx + 1);
  std::vector<double> a(nx + 1), b(nx + 1), r(nx + 1), c(nx + 1);
  for (int i = 0; i <= nx; ++i) {
    x[i] = problem.x_min + dx * i;
    a[i] = problem.diffusion(x[i]);
    b[i] = problem.convection(x[i]);
    r[i] = problem.reaction(x[i]);
    c[i] = problem.source(x[i]);
    if (!(a[i] > 0.0)) {
      return Status::InvalidArgument("diffusion coefficient must be > 0 at x=" +
                                     std::to_string(x[i]));
    }
  }

  // March in tau = t_end - t; F_tau = a F_xx + b F_x - r F + c, forward
  // parabolic in tau. Backward Euler: (I - dt*A) U^{m+1} = U^m + dt*c.
  // Interior stencil of A at node i:
  //   A U |_i = a_i (U_{i+1} - 2U_i + U_{i-1})/dx^2
  //           + b_i (U_{i+1} - U_{i-1})/(2dx) - r_i U_i.
  std::vector<double> u(nx + 1);
  for (int i = 0; i <= nx; ++i) u[i] = problem.terminal(x[i]);
  // The terminal profile itself counts as the first mesh column only via
  // MeshEntries() (nx+1)*t_steps; we charge once per implicit step below.

  TridiagonalSystem sys;
  sys.Resize(nx + 1);
  std::vector<double> next;

  for (int m = 0; m < grid.t_steps; ++m) {
    const double tau_next = dt * (m + 1);
    const double t_next = problem.t_end - tau_next;

    for (int i = 1; i < nx; ++i) {
      const double diff = a[i] / (dx * dx);
      const double conv = b[i] / (2.0 * dx);
      sys.lower[i] = -dt * (diff - conv);
      sys.diag[i] = 1.0 + dt * (2.0 * diff + r[i]);
      sys.upper[i] = -dt * (diff + conv);
      sys.rhs[i] = u[i] + dt * c[i];
    }

    // Left boundary row.
    if (problem.left_boundary == BoundaryKind::kDirichlet) {
      sys.lower[0] = 0.0;
      sys.diag[0] = 1.0;
      sys.upper[0] = 0.0;
      sys.rhs[0] = problem.left_value(t_next);
    } else {
      // Linearity: U_0 - 2U_1 + U_2 = 0. Fold U_0 = 2U_1 - U_2 into row 1 so
      // the matrix stays tridiagonal, then recover U_0 after the solve. Row 0
      // becomes the identity placeholder U_0 = 0 (overwritten below).
      sys.lower[0] = 0.0;
      sys.diag[0] = 1.0;
      sys.upper[0] = 0.0;
      sys.rhs[0] = 0.0;
      // Row 1 currently has coefficients (l1, d1, u1) on (U_0, U_1, U_2).
      const double l1 = sys.lower[1];
      sys.lower[1] = 0.0;
      sys.diag[1] += 2.0 * l1;
      sys.upper[1] -= l1;
    }

    // Right boundary row.
    if (problem.right_boundary == BoundaryKind::kDirichlet) {
      sys.lower[nx] = 0.0;
      sys.diag[nx] = 1.0;
      sys.upper[nx] = 0.0;
      sys.rhs[nx] = problem.right_value(t_next);
    } else {
      // Linearity: U_nx = 2U_{nx-1} - U_{nx-2}; fold into row nx-1.
      sys.lower[nx] = 0.0;
      sys.diag[nx] = 1.0;
      sys.upper[nx] = 0.0;
      sys.rhs[nx] = 0.0;
      const double unm1 = sys.upper[nx - 1];
      sys.upper[nx - 1] = 0.0;
      sys.diag[nx - 1] += 2.0 * unm1;
      sys.lower[nx - 1] -= unm1;
    }

    VAOLIB_RETURN_IF_ERROR(SolveTridiagonal(sys, &next));

    if (problem.left_boundary == BoundaryKind::kLinear) {
      next[0] = 2.0 * next[1] - next[2];
    }
    if (problem.right_boundary == BoundaryKind::kLinear) {
      next[nx] = 2.0 * next[nx - 1] - next[nx - 2];
    }

    for (int i = 0; i <= nx; ++i) {
      if (!std::isfinite(next[i])) {
        return Status::NumericError("PDE solve produced non-finite value");
      }
    }
    u.swap(next);
  }

  if (meter != nullptr) {
    meter->Charge(WorkKind::kExec, grid.MeshEntries());
  }
  obs::CountSolverWork(obs::SolverKind::kPde, grid.MeshEntries());
  return u;
}

Result<double> SolvePde(const Pde1dProblem& problem, const PdeGrid& grid,
                        double query_x, WorkMeter* meter) {
  if (query_x < problem.x_min || query_x > problem.x_max) {
    return Status::OutOfRange("query_x outside PDE domain");
  }
  VAOLIB_ASSIGN_OR_RETURN(std::vector<double> profile,
                          SolvePdeProfile(problem, grid, meter));
  const double dx = grid.Dx(problem);
  const double pos = (query_x - problem.x_min) / dx;
  auto lo = static_cast<std::size_t>(pos);
  if (lo >= profile.size() - 1) lo = profile.size() - 2;
  const double frac = pos - static_cast<double>(lo);
  return profile[lo] * (1.0 - frac) + profile[lo + 1] * frac;
}

}  // namespace vaolib::numeric
