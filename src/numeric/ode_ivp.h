// Copyright 2026 The vaolib Authors.
// Initial-value ODE solver: classical fourth-order Runge-Kutta on a uniform
// step, an extension of the Section 4.2 solver family. Error is O(h^4), so
// the VAO adaptation uses the one-term Richardson model err ~= K * h^4 with
// step halving per iteration.

#ifndef VAOLIB_NUMERIC_ODE_IVP_H_
#define VAOLIB_NUMERIC_ODE_IVP_H_

#include <functional>

#include "common/result.h"
#include "common/work_meter.h"

namespace vaolib::numeric {

/// \brief A scalar initial-value problem  y' = f(t, y),  y(t0) = y0,
/// solved for y(t1).
struct OdeIvpProblem {
  std::function<double(double t, double y)> f;
  double t0 = 0.0;
  double y0 = 0.0;
  double t1 = 1.0;
};

/// \brief Integrates \p problem with \p steps uniform RK4 steps and returns
/// y(t1). Charges 4 exec units per step (one per stage evaluation) to
/// \p meter. Error O(h^4).
///
/// \return InvalidArgument for empty f, t1 <= t0, or steps < 1;
/// NumericError if the trajectory leaves the finite range.
Result<double> SolveOdeIvpRk4(const OdeIvpProblem& problem, int steps,
                              WorkMeter* meter);

}  // namespace vaolib::numeric

#endif  // VAOLIB_NUMERIC_ODE_IVP_H_
