// Copyright 2026 The vaolib Authors.
// Initial-value ODE solver: classical fourth-order Runge-Kutta on a uniform
// step, an extension of the Section 4.2 solver family. Error is O(h^4), so
// the VAO adaptation uses the one-term Richardson model err ~= K * h^4 with
// step halving per iteration.

#ifndef VAOLIB_NUMERIC_ODE_IVP_H_
#define VAOLIB_NUMERIC_ODE_IVP_H_

#include <functional>
#include <vector>

#include "common/result.h"
#include "common/work_meter.h"
#include "numeric/batch.h"

namespace vaolib::numeric {

/// \brief A scalar initial-value problem  y' = f(t, y),  y(t0) = y0,
/// solved for y(t1).
struct OdeIvpProblem {
  std::function<double(double t, double y)> f;
  double t0 = 0.0;
  double y0 = 0.0;
  double t1 = 1.0;
};

/// \brief Integrates \p problem with \p steps uniform RK4 steps and returns
/// y(t1). Charges 4 exec units per step (one per stage evaluation) to
/// \p meter. Error O(h^4).
///
/// \return InvalidArgument for empty f, t1 <= t0, or steps < 1;
/// NumericError if the trajectory leaves the finite range.
Result<double> SolveOdeIvpRk4(const OdeIvpProblem& problem, int steps,
                              WorkMeter* meter);

/// \brief K independent scalar IVPs advanced in lockstep with the same step
/// count. Right-hand sides stay per-lane scalar callbacks; the state,
/// step-size, and stage arrays are contiguous so the combination arithmetic
/// batches across lanes.
struct OdeIvpBatch {
  std::vector<OdeIvpProblem> problems;
};

/// \brief Integrates every lane of \p batch with \p steps uniform RK4 steps,
/// writing y(t1) per lane into \p results (resized to the batch size).
///
/// Per-lane results are bit-identical to SolveOdeIvpRk4 on the same problem:
/// each lane performs the identical IEEE operation sequence. A lane whose
/// trajectory leaves the finite range is recorded in \p report with the step
/// index at which it failed and stops evaluating its right-hand side; a lane
/// with an invalid problem (empty f, t1 <= t0) is recorded as failing at
/// step 0. Failed lanes never poison their neighbours. Charges 4 exec units
/// per step to \p meter for each successful lane, matching the scalar
/// solver's charge.
///
/// \return InvalidArgument only for structural errors (empty batch,
/// steps < 1); lane failures are reported per system.
Status SolveOdeIvpRk4Batch(const OdeIvpBatch& batch, int steps,
                           WorkMeter* meter, std::vector<double>* results,
                           BatchKernelReport* report);

}  // namespace vaolib::numeric

#endif  // VAOLIB_NUMERIC_ODE_IVP_H_
