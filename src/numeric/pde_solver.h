// Copyright 2026 The vaolib Authors.
// Finite-difference solver for one-factor parabolic PDEs of the form used by
// the paper's bond model (Section 4.1):
//
//   a(x) F_xx + b(x) F_x + F_t - r(x) F + c(x) = 0,   F(x, t_end) = g(x)
//
// solved backward from the terminal condition to t = 0 with an implicit
// (backward-Euler in time, central-difference in space) scheme whose error is
// O(dt + dx^2) -- exactly the error form the paper's extrapolation assumes.
// Each time step is a tridiagonal solve (Thomas algorithm), and the solver
// charges one WorkMeter exec unit per mesh entry computed, which is the
// paper's "compute work proportional to the number of mesh entries".

#ifndef VAOLIB_NUMERIC_PDE_SOLVER_H_
#define VAOLIB_NUMERIC_PDE_SOLVER_H_

#include <functional>
#include <vector>

#include "common/result.h"
#include "common/work_meter.h"
#include "numeric/batch.h"

namespace vaolib::numeric {

/// \brief Lateral (x-)boundary treatment for the PDE solver.
enum class BoundaryKind {
  kDirichlet,  ///< F(boundary, t) supplied by Pde1dProblem::*_value(t).
  kLinear,     ///< F_xx = 0 at the boundary (financial "linearity" condition).
};

/// \brief A one-dimensional parabolic terminal-value problem.
///
/// All coefficient callbacks must be pure functions of x (the problem class
/// of Section 4.1; the paper's bond PDE has constant a, r, c and affine b).
struct Pde1dProblem {
  std::function<double(double)> diffusion;   ///< a(x), > 0 on [x_min,x_max]
  std::function<double(double)> convection;  ///< b(x)
  std::function<double(double)> reaction;    ///< r(x)
  std::function<double(double)> source;      ///< c(x)
  std::function<double(double)> terminal;    ///< g(x) = F(x, t_end)

  double x_min = 0.0;
  double x_max = 1.0;
  double t_end = 1.0;  ///< horizon; solution is reported at t = 0

  BoundaryKind left_boundary = BoundaryKind::kLinear;
  BoundaryKind right_boundary = BoundaryKind::kLinear;
  /// Dirichlet values as functions of t; only consulted for kDirichlet.
  std::function<double(double)> left_value;
  std::function<double(double)> right_value;
};

/// \brief Discretization parameters: counts of intervals on each axis.
struct PdeGrid {
  int x_intervals = 8;  ///< dx cells; dx = (x_max - x_min) / x_intervals
  int t_steps = 8;      ///< number of dt steps; dt = t_end / t_steps

  double Dx(const Pde1dProblem& p) const {
    return (p.x_max - p.x_min) / x_intervals;
  }
  double Dt(const Pde1dProblem& p) const { return p.t_end / t_steps; }

  /// Total mesh entries computed by one solve (the paper's work measure).
  std::uint64_t MeshEntries() const {
    return static_cast<std::uint64_t>(x_intervals + 1) *
           static_cast<std::uint64_t>(t_steps);
  }
};

/// \brief Solves \p problem on \p grid and returns F(query_x, 0), linearly
/// interpolated between the two nearest x-nodes.
///
/// Charges grid.MeshEntries() exec units to \p meter (if non-null).
/// \return InvalidArgument for malformed problems/grids/query points,
/// NumericError if the linear solves break down or produce non-finite values.
Result<double> SolvePde(const Pde1dProblem& problem, const PdeGrid& grid,
                        double query_x, WorkMeter* meter);

/// \brief Solves and returns the entire final (t = 0) profile, one value per
/// x-node; used by tests to validate against closed forms.
Result<std::vector<double>> SolvePdeProfile(const Pde1dProblem& problem,
                                            const PdeGrid& grid,
                                            WorkMeter* meter);

/// \brief Marches K independent problems on the same grid in lockstep,
/// batching the per-step tridiagonal solves into one SoA kernel call.
/// Writes the t = 0 profile of each lane into \p profiles (values of failed
/// lanes are unspecified). Per-lane profiles are bit-identical to
/// SolvePdeProfile on the same problem and grid.
///
/// A lane whose tridiagonal solve breaks down or produces a non-finite value
/// is recorded in \p report with the time-step index at which it failed and
/// frozen; the remaining lanes keep marching. Charges grid.MeshEntries()
/// exec units per successful lane, matching the scalar solver.
///
/// \return InvalidArgument when the batch is empty or any lane's problem is
/// malformed (nothing is charged then); numeric failures are per-lane.
Status SolvePdeProfileBatch(const std::vector<const Pde1dProblem*>& problems,
                            const PdeGrid& grid, WorkMeter* meter,
                            std::vector<std::vector<double>>* profiles,
                            BatchKernelReport* report);

/// \brief Batched counterpart of SolvePde: solves every lane on the shared
/// grid and interpolates lane s at query_x[s]. Values of failed lanes are
/// unspecified; per-lane values are bit-identical to SolvePde.
Status SolvePdeBatch(const std::vector<const Pde1dProblem*>& problems,
                     const PdeGrid& grid, const std::vector<double>& query_x,
                     WorkMeter* meter, std::vector<double>* values,
                     BatchKernelReport* report);

}  // namespace vaolib::numeric

#endif  // VAOLIB_NUMERIC_PDE_SOLVER_H_
