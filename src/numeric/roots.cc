#include "numeric/roots.h"

#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace vaolib::numeric {

BracketingRootFinder::BracketingRootFinder(std::function<double(double)> f,
                                           const Options& options)
    : f_(std::move(f)), options_(options) {}

Result<BracketingRootFinder> BracketingRootFinder::Create(
    std::function<double(double)> f, double lo, double hi,
    const Options& options, WorkMeter* meter) {
  if (!f) return Status::InvalidArgument("root function is empty");
  if (!(hi > lo)) return Status::InvalidArgument("root bracket needs hi > lo");

  BracketingRootFinder finder(std::move(f), options);
  finder.lo_ = lo;
  finder.hi_ = hi;
  finder.f_lo_ = finder.f_(lo);
  finder.f_hi_ = finder.f_(hi);
  finder.total_evaluations_ = 2;
  if (meter != nullptr) {
    meter->Charge(WorkKind::kExec, 2 * options.work_per_eval);
  }
  obs::CountSolverWork(obs::SolverKind::kRoot, 2 * options.work_per_eval);

  if (finder.f_lo_ == 0.0) {
    finder.hi_ = lo;
    finder.f_hi_ = 0.0;
    return finder;
  }
  if (finder.f_hi_ == 0.0) {
    finder.lo_ = hi;
    finder.f_lo_ = 0.0;
    return finder;
  }
  if ((finder.f_lo_ > 0.0) == (finder.f_hi_ > 0.0)) {
    return Status::InvalidArgument(
        "root bracket endpoints must straddle zero");
  }
  return finder;
}

double BracketingRootFinder::ProbePoint() const {
  if (options_.method == RootMethod::kBisection) {
    return 0.5 * (lo_ + hi_);
  }
  // False-position (secant through the bracket endpoints), clamped away from
  // the endpoints so the bracket always shrinks.
  const double denom = f_hi_ - f_lo_;
  double x = std::abs(denom) < 1e-300
                 ? 0.5 * (lo_ + hi_)
                 : lo_ - f_lo_ * (hi_ - lo_) / denom;
  const double margin = 1e-3 * (hi_ - lo_);
  if (x < lo_ + margin) x = lo_ + margin;
  if (x > hi_ - margin) x = hi_ - margin;
  return x;
}

Status BracketingRootFinder::Step(WorkMeter* meter) {
  const obs::ScopedSpan span("solver", "root", obs::TraceDetail::kFine);
  if (hi_ <= lo_) return Status::OK();  // degenerate: exact root found

  const double x = ProbePoint();
  const double fx = f_(x);
  ++total_evaluations_;
  if (meter != nullptr) {
    meter->Charge(WorkKind::kExec, options_.work_per_eval);
  }
  obs::CountSolverWork(obs::SolverKind::kRoot, options_.work_per_eval);
  if (!std::isfinite(fx)) {
    return Status::NumericError("root probe produced non-finite value");
  }

  if (fx == 0.0) {
    lo_ = hi_ = x;
    f_lo_ = f_hi_ = 0.0;
    return Status::OK();
  }

  if ((fx > 0.0) == (f_lo_ > 0.0)) {
    // Probe matches the lower endpoint's sign: root is in [x, hi].
    lo_ = x;
    f_lo_ = fx;
    last_kept_lower_ = false;
    if (options_.method == RootMethod::kIllinois) f_hi_ *= 0.5;
  } else {
    hi_ = x;
    f_hi_ = fx;
    last_kept_lower_ = true;
    if (options_.method == RootMethod::kIllinois) f_lo_ *= 0.5;
  }
  return Status::OK();
}

Bounds BracketingRootFinder::PredictedBoundsAfterStep() const {
  if (hi_ <= lo_) return Bounds(lo_, hi_);
  const double x = ProbePoint();
  return last_kept_lower_ ? Bounds(lo_, x) : Bounds(x, hi_);
}

}  // namespace vaolib::numeric
