// Copyright 2026 The vaolib Authors.
// Two-factor parabolic PDE solver (ADI / operator splitting): the solver
// class behind two-factor valuation models such as Downing, Stanton &
// Wallace's two-factor mortgage model, which the paper cites as [11]:
//
//   a_x(x,y) F_xx + a_y(x,y) F_yy + b_x(x,y) F_x + b_y(x,y) F_y
//     + F_t - r(x,y) F + c(x,y) = 0,       F(x, y, t_end) = g(x, y)
//
// (no cross-derivative term; the correlation of the real model is dropped,
// a documented simplification). Marched backward with Lie operator
// splitting: each time step is one implicit sweep along x (a tridiagonal
// solve per y-row) followed by one implicit sweep along y (per x-column).
// Unconditionally stable; error O(dt + dx^2 + dy^2), the three-term
// analogue of the paper's Section 4.1 form, so the same Richardson
// machinery applies with one extra coefficient.

#ifndef VAOLIB_NUMERIC_PDE2D_SOLVER_H_
#define VAOLIB_NUMERIC_PDE2D_SOLVER_H_

#include <functional>
#include <vector>

#include "common/result.h"
#include "common/work_meter.h"

namespace vaolib::numeric {

/// \brief A two-factor parabolic terminal-value problem. All coefficients
/// are pure functions of (x, y). Lateral boundaries use the financial
/// "linearity" condition (second derivative zero along the normal axis).
struct Pde2dProblem {
  std::function<double(double, double)> diffusion_x;  ///< a_x > 0
  std::function<double(double, double)> diffusion_y;  ///< a_y > 0
  std::function<double(double, double)> convection_x;  ///< b_x
  std::function<double(double, double)> convection_y;  ///< b_y
  std::function<double(double, double)> reaction;      ///< r
  std::function<double(double, double)> source;        ///< c
  std::function<double(double, double)> terminal;      ///< g

  double x_min = 0.0;
  double x_max = 1.0;
  double y_min = 0.0;
  double y_max = 1.0;
  double t_end = 1.0;

  /// When true, clamp boundary values with Dirichlet zero instead of
  /// linearity (used by validation tests with known boundary behaviour).
  bool dirichlet_zero = false;
};

/// \brief Discretization: interval counts per axis and time steps.
struct Pde2dGrid {
  int x_intervals = 8;
  int y_intervals = 8;
  int t_steps = 8;

  double Dx(const Pde2dProblem& p) const {
    return (p.x_max - p.x_min) / x_intervals;
  }
  double Dy(const Pde2dProblem& p) const {
    return (p.y_max - p.y_min) / y_intervals;
  }
  double Dt(const Pde2dProblem& p) const { return p.t_end / t_steps; }

  /// Mesh entries computed by one solve: nodes x time steps (both ADI
  /// sweeps touch every node once per step; we count node-steps).
  std::uint64_t MeshEntries() const {
    return static_cast<std::uint64_t>(x_intervals + 1) *
           static_cast<std::uint64_t>(y_intervals + 1) *
           static_cast<std::uint64_t>(t_steps);
  }
};

/// \brief Solves \p problem on \p grid and returns F(query_x, query_y, 0),
/// bilinearly interpolated between the four nearest nodes. Charges
/// grid.MeshEntries() exec units to \p meter (if non-null).
Result<double> SolvePde2d(const Pde2dProblem& problem, const Pde2dGrid& grid,
                          double query_x, double query_y, WorkMeter* meter);

}  // namespace vaolib::numeric

#endif  // VAOLIB_NUMERIC_PDE2D_SOLVER_H_
