// Copyright 2026 The vaolib Authors.
// Finite-difference solver for linear two-point boundary-value ODEs
// (Section 4.2 of the paper):
//
//   w''(x) = p(x) w'(x) + q(x) w(x) + r(x),   w(a) = alpha, w(b) = beta
//
// discretized with central differences on a uniform grid (error O(dx^2))
// and solved as one tridiagonal system. The paper's example is beam
// deflection under uniform load: w'' = (S/EI) w + (q x / 2EI)(x - l).

#ifndef VAOLIB_NUMERIC_ODE_SOLVER_H_
#define VAOLIB_NUMERIC_ODE_SOLVER_H_

#include <functional>
#include <vector>

#include "common/result.h"
#include "common/work_meter.h"

namespace vaolib::numeric {

/// \brief A linear second-order two-point boundary-value problem.
struct OdeBvpProblem {
  std::function<double(double)> p;  ///< coefficient of w'
  std::function<double(double)> q;  ///< coefficient of w
  std::function<double(double)> r;  ///< forcing term

  double a = 0.0;       ///< left endpoint
  double b = 1.0;       ///< right endpoint
  double alpha = 0.0;   ///< w(a)
  double beta = 0.0;    ///< w(b)
};

/// \brief Builds the beam-deflection problem from the paper:
/// w'' = (S/EI) w + (load*x / (2EI)) (x - l), w(0) = w(l) = 0.
OdeBvpProblem MakeBeamDeflectionProblem(double stress_s, double modulus_e,
                                        double inertia_i, double load_q,
                                        double length_l);

/// \brief Solves \p problem with \p intervals uniform cells and returns
/// w(query_x) by linear interpolation. Charges one exec unit per interior
/// node to \p meter. Error is O(dx^2).
Result<double> SolveOdeBvp(const OdeBvpProblem& problem, int intervals,
                           double query_x, WorkMeter* meter);

/// \brief Solves and returns the whole nodal profile (including endpoints).
Result<std::vector<double>> SolveOdeBvpProfile(const OdeBvpProblem& problem,
                                               int intervals,
                                               WorkMeter* meter);

}  // namespace vaolib::numeric

#endif  // VAOLIB_NUMERIC_ODE_SOLVER_H_
