// Copyright 2026 The vaolib Authors.
// Thomas-algorithm solver for tridiagonal linear systems, the inner kernel
// of the implicit finite-difference PDE/ODE solvers. Available in two
// shapes: the scalar solver (one system) and a struct-of-arrays batch
// solver running K independent systems in lockstep (see batch.h for the
// layout and bit-identity contract).

#ifndef VAOLIB_NUMERIC_TRIDIAGONAL_H_
#define VAOLIB_NUMERIC_TRIDIAGONAL_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "numeric/batch.h"

namespace vaolib::numeric {

/// \brief A tridiagonal system  lower[i]*x[i-1] + diag[i]*x[i] +
/// upper[i]*x[i+1] = rhs[i],  with lower[0] and upper[n-1] ignored.
struct TridiagonalSystem {
  std::vector<double> lower;  ///< sub-diagonal, size n (index 0 unused)
  std::vector<double> diag;   ///< main diagonal, size n
  std::vector<double> upper;  ///< super-diagonal, size n (index n-1 unused)
  std::vector<double> rhs;    ///< right-hand side, size n

  /// Resizes all four bands to \p n, zero-filled.
  void Resize(std::size_t n);

  /// Number of unknowns.
  std::size_t size() const { return diag.size(); }
};

/// \brief Reusable forward-sweep workspace for SolveTridiagonal. Callers
/// running many solves of similar size (the PDE time march) hold one of
/// these to avoid a pair of heap allocations per solve.
struct TridiagonalScratch {
  std::vector<double> c_prime;
  std::vector<double> d_prime;
};

/// \brief Solves \p system in place by the Thomas algorithm, writing the
/// solution into \p solution (resized to n). O(n) time, no pivoting:
/// requires a (weakly) diagonally dominant system, which the implicit
/// schemes in this library always produce. \p scratch holds the modified
/// bands between calls; its capacity grows to n and is reused.
///
/// \return InvalidArgument on band-size mismatch, NumericError when a pivot
/// underflows (non-dominant system).
Status SolveTridiagonal(const TridiagonalSystem& system,
                        std::vector<double>* solution,
                        TridiagonalScratch* scratch);

/// \brief Scratch-less convenience overload; uses a thread-local workspace.
Status SolveTridiagonal(const TridiagonalSystem& system,
                        std::vector<double>* solution);

/// \brief K independent tridiagonal systems of n rows each, stored as
/// struct-of-arrays planes with layout plane[row * K + system] so the inner
/// loop over systems is contiguous (auto-vectorizable). lower[0] and
/// upper[n-1] of each system are ignored, as in TridiagonalSystem.
struct TridiagonalBatch {
  std::size_t num_systems = 0;  ///< K
  std::size_t rows = 0;         ///< n

  std::vector<double> lower;  ///< size rows * num_systems
  std::vector<double> diag;   ///< size rows * num_systems
  std::vector<double> upper;  ///< size rows * num_systems
  std::vector<double> rhs;    ///< size rows * num_systems

  /// Resizes all four planes to \p n rows x \p k systems, zero-filled.
  void Resize(std::size_t k, std::size_t n);

  /// Plane offset of (row, system).
  std::size_t IndexOf(std::size_t row, std::size_t system) const {
    return row * num_systems + system;
  }
};

/// \brief Reusable workspace for SolveTridiagonalBatch (the c'/d' planes).
struct TridiagonalBatchScratch {
  std::vector<double> c_prime;
  std::vector<double> d_prime;
};

/// \brief Solves all systems of \p batch in lockstep, writing solutions into
/// \p solutions (resized to rows * num_systems, same plane layout).
///
/// Per-system results are bit-identical to SolveTridiagonal on the same
/// bands: every lane performs the identical IEEE operation sequence. A lane
/// whose pivot underflows is recorded in \p report (the first failing row)
/// and neutralized with a unit pivot so the remaining lanes are unaffected;
/// its output values are unspecified. \p report is reset to the batch size.
/// \p scratch may be null (a thread-local workspace is used).
///
/// When the library is built with VAOLIB_ENABLE_SIMD and the CPU supports
/// AVX2, a 4-wide SIMD path is dispatched at runtime; it performs the same
/// non-fused operation sequence and produces identical results.
///
/// \return InvalidArgument on plane-size mismatch or an empty batch; pivot
/// failures are per-system and never fail the whole batch.
Status SolveTridiagonalBatch(const TridiagonalBatch& batch,
                             std::vector<double>* solutions,
                             BatchKernelReport* report,
                             TridiagonalBatchScratch* scratch = nullptr);

/// \brief True when the runtime-dispatched AVX2 path is compiled in AND the
/// CPU supports it (exposed for benches/tests to label their output).
bool TridiagonalBatchUsesAvx2();

namespace internal {

/// Portable lockstep kernel (the scalar fallback); planes are dense
/// rows x k. Defined in tridiagonal.cc; exposed for the SIMD TU and tests.
void SolveTridiagonalBatchGeneric(const double* lower, const double* diag,
                                  const double* upper, const double* rhs,
                                  std::size_t rows, std::size_t k,
                                  double* c_prime, double* d_prime,
                                  double* solution,
                                  std::int32_t* failed_row);

#if defined(VAOLIB_SIMD_AVX2)
/// AVX2 lockstep kernel, compiled only when VAOLIB_ENABLE_SIMD=ON (its TU
/// is built with -mavx2); call only when the CPU supports AVX2.
void SolveTridiagonalBatchAvx2(const double* lower, const double* diag,
                               const double* upper, const double* rhs,
                               std::size_t rows, std::size_t k,
                               double* c_prime, double* d_prime,
                               double* solution, std::int32_t* failed_row);
#endif

}  // namespace internal

}  // namespace vaolib::numeric

#endif  // VAOLIB_NUMERIC_TRIDIAGONAL_H_
