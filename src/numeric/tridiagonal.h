// Copyright 2026 The vaolib Authors.
// Thomas-algorithm solver for tridiagonal linear systems, the inner kernel
// of the implicit finite-difference PDE/ODE solvers.

#ifndef VAOLIB_NUMERIC_TRIDIAGONAL_H_
#define VAOLIB_NUMERIC_TRIDIAGONAL_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace vaolib::numeric {

/// \brief A tridiagonal system  lower[i]*x[i-1] + diag[i]*x[i] +
/// upper[i]*x[i+1] = rhs[i],  with lower[0] and upper[n-1] ignored.
struct TridiagonalSystem {
  std::vector<double> lower;  ///< sub-diagonal, size n (index 0 unused)
  std::vector<double> diag;   ///< main diagonal, size n
  std::vector<double> upper;  ///< super-diagonal, size n (index n-1 unused)
  std::vector<double> rhs;    ///< right-hand side, size n

  /// Resizes all four bands to \p n, zero-filled.
  void Resize(std::size_t n);

  /// Number of unknowns.
  std::size_t size() const { return diag.size(); }
};

/// \brief Solves \p system in place by the Thomas algorithm, writing the
/// solution into \p solution (resized to n). O(n) time, no pivoting:
/// requires a (weakly) diagonally dominant system, which the implicit
/// schemes in this library always produce.
///
/// \return InvalidArgument on band-size mismatch, NumericError when a pivot
/// underflows (non-dominant system).
Status SolveTridiagonal(const TridiagonalSystem& system,
                        std::vector<double>* solution);

}  // namespace vaolib::numeric

#endif  // VAOLIB_NUMERIC_TRIDIAGONAL_H_
