#include "common/macros.h"
#include "numeric/ode_solver.h"

#include <cmath>

#include "numeric/tridiagonal.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vaolib::numeric {

OdeBvpProblem MakeBeamDeflectionProblem(double stress_s, double modulus_e,
                                        double inertia_i, double load_q,
                                        double length_l) {
  OdeBvpProblem problem;
  const double ei = modulus_e * inertia_i;
  problem.p = [](double) { return 0.0; };
  problem.q = [stress_s, ei](double) { return stress_s / ei; };
  problem.r = [load_q, ei, length_l](double x) {
    return load_q * x / (2.0 * ei) * (x - length_l);
  };
  problem.a = 0.0;
  problem.b = length_l;
  problem.alpha = 0.0;
  problem.beta = 0.0;
  return problem;
}

Result<std::vector<double>> SolveOdeBvpProfile(const OdeBvpProblem& problem,
                                               int intervals,
                                               WorkMeter* meter) {
  const obs::ScopedSpan span("solver", "ode", obs::TraceDetail::kFine);
  if (!problem.p || !problem.q || !problem.r) {
    return Status::InvalidArgument("ODE problem has unset coefficient(s)");
  }
  if (!(problem.b > problem.a)) {
    return Status::InvalidArgument("ODE domain requires b > a");
  }
  if (intervals < 2) {
    return Status::InvalidArgument("ODE grid requires >= 2 intervals");
  }

  const int n = intervals;  // nodes 0..n, interior 1..n-1
  const double dx = (problem.b - problem.a) / n;

  // Central differences at interior node i:
  //   (w_{i+1} - 2w_i + w_{i-1})/dx^2
  //     = p_i (w_{i+1} - w_{i-1})/(2dx) + q_i w_i + r_i
  TridiagonalSystem sys;
  sys.Resize(n - 1);
  for (int i = 1; i < n; ++i) {
    const double x = problem.a + dx * i;
    const double pi = problem.p(x);
    const double qi = problem.q(x);
    const double ri = problem.r(x);
    const int row = i - 1;
    sys.lower[row] = 1.0 / (dx * dx) + pi / (2.0 * dx);
    sys.diag[row] = -2.0 / (dx * dx) - qi;
    sys.upper[row] = 1.0 / (dx * dx) - pi / (2.0 * dx);
    sys.rhs[row] = ri;
  }
  // Fold the known boundary values into the first/last rows.
  {
    const double x1 = problem.a + dx;
    sys.rhs[0] -=
        (1.0 / (dx * dx) + problem.p(x1) / (2.0 * dx)) * problem.alpha;
    sys.lower[0] = 0.0;
    const double xn = problem.a + dx * (n - 1);
    sys.rhs[n - 2] -=
        (1.0 / (dx * dx) - problem.p(xn) / (2.0 * dx)) * problem.beta;
    sys.upper[n - 2] = 0.0;
  }

  std::vector<double> interior;
  VAOLIB_RETURN_IF_ERROR(SolveTridiagonal(sys, &interior));

  std::vector<double> profile(n + 1);
  profile[0] = problem.alpha;
  profile[n] = problem.beta;
  for (int i = 1; i < n; ++i) {
    if (!std::isfinite(interior[i - 1])) {
      return Status::NumericError("ODE solve produced non-finite value");
    }
    profile[i] = interior[i - 1];
  }

  if (meter != nullptr) {
    meter->Charge(WorkKind::kExec, static_cast<std::uint64_t>(n - 1));
  }
  obs::CountSolverWork(obs::SolverKind::kOde,
                       static_cast<std::uint64_t>(n - 1));
  return profile;
}

Result<double> SolveOdeBvp(const OdeBvpProblem& problem, int intervals,
                           double query_x, WorkMeter* meter) {
  if (query_x < problem.a || query_x > problem.b) {
    return Status::OutOfRange("query_x outside ODE domain");
  }
  VAOLIB_ASSIGN_OR_RETURN(std::vector<double> profile,
                          SolveOdeBvpProfile(problem, intervals, meter));
  const double dx = (problem.b - problem.a) / intervals;
  const double pos = (query_x - problem.a) / dx;
  auto lo = static_cast<std::size_t>(pos);
  if (lo >= profile.size() - 1) lo = profile.size() - 2;
  const double frac = pos - static_cast<double>(lo);
  return profile[lo] * (1.0 - frac) + profile[lo + 1] * frac;
}

}  // namespace vaolib::numeric
