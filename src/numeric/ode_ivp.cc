#include "numeric/ode_ivp.h"

#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace vaolib::numeric {

Result<double> SolveOdeIvpRk4(const OdeIvpProblem& problem, int steps,
                              WorkMeter* meter) {
  const obs::ScopedSpan span("solver", "ivp", obs::TraceDetail::kFine);
  if (!problem.f) {
    return Status::InvalidArgument("IVP right-hand side is empty");
  }
  if (!(problem.t1 > problem.t0)) {
    return Status::InvalidArgument("IVP requires t1 > t0");
  }
  if (steps < 1) {
    return Status::InvalidArgument("IVP requires steps >= 1");
  }

  const double h = (problem.t1 - problem.t0) / steps;
  double t = problem.t0;
  double y = problem.y0;
  for (int i = 0; i < steps; ++i) {
    const double k1 = problem.f(t, y);
    const double k2 = problem.f(t + 0.5 * h, y + 0.5 * h * k1);
    const double k3 = problem.f(t + 0.5 * h, y + 0.5 * h * k2);
    const double k4 = problem.f(t + h, y + h * k3);
    y += h / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
    t = problem.t0 + h * (i + 1);
    if (!std::isfinite(y)) {
      return Status::NumericError("RK4 trajectory became non-finite");
    }
  }
  if (meter != nullptr) {
    meter->Charge(WorkKind::kExec, static_cast<std::uint64_t>(steps) * 4);
  }
  obs::CountSolverWork(obs::SolverKind::kIvp,
                       static_cast<std::uint64_t>(steps) * 4);
  return y;
}

}  // namespace vaolib::numeric
