#include "numeric/ode_ivp.h"

#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace vaolib::numeric {

Result<double> SolveOdeIvpRk4(const OdeIvpProblem& problem, int steps,
                              WorkMeter* meter) {
  const obs::ScopedSpan span("solver", "ivp", obs::TraceDetail::kFine);
  if (!problem.f) {
    return Status::InvalidArgument("IVP right-hand side is empty");
  }
  if (!(problem.t1 > problem.t0)) {
    return Status::InvalidArgument("IVP requires t1 > t0");
  }
  if (steps < 1) {
    return Status::InvalidArgument("IVP requires steps >= 1");
  }

  const double h = (problem.t1 - problem.t0) / steps;
  double t = problem.t0;
  double y = problem.y0;
  for (int i = 0; i < steps; ++i) {
    const double k1 = problem.f(t, y);
    const double k2 = problem.f(t + 0.5 * h, y + 0.5 * h * k1);
    const double k3 = problem.f(t + 0.5 * h, y + 0.5 * h * k2);
    const double k4 = problem.f(t + h, y + h * k3);
    y += h / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
    t = problem.t0 + h * (i + 1);
    if (!std::isfinite(y)) {
      return Status::NumericError("RK4 trajectory became non-finite");
    }
  }
  if (meter != nullptr) {
    meter->Charge(WorkKind::kExec, static_cast<std::uint64_t>(steps) * 4);
  }
  obs::CountSolverWork(obs::SolverKind::kIvp,
                       static_cast<std::uint64_t>(steps) * 4);
  return y;
}

Status SolveOdeIvpRk4Batch(const OdeIvpBatch& batch, int steps,
                           WorkMeter* meter, std::vector<double>* results,
                           BatchKernelReport* report) {
  const obs::ScopedSpan span("solver", "ivp_batch", obs::TraceDetail::kFine);
  const std::size_t k = batch.problems.size();
  if (k == 0) {
    return Status::InvalidArgument("IVP batch is empty");
  }
  if (steps < 1) {
    return Status::InvalidArgument("IVP requires steps >= 1");
  }
  report->Reset(k);

  std::vector<double> h(k, 0.0);
  std::vector<double> t(k, 0.0);
  std::vector<double> y(k, 0.0);
  std::vector<double> k1(k, 0.0);
  std::vector<double> k2(k, 0.0);
  std::vector<double> k3(k, 0.0);
  std::vector<double> k4(k, 0.0);
  std::vector<char> active(k, 1);

  for (std::size_t s = 0; s < k; ++s) {
    const OdeIvpProblem& problem = batch.problems[s];
    if (!problem.f || !(problem.t1 > problem.t0)) {
      active[s] = 0;
      report->failed_row[s] = 0;
      continue;
    }
    h[s] = (problem.t1 - problem.t0) / steps;
    t[s] = problem.t0;
    y[s] = problem.y0;
  }

  for (int i = 0; i < steps; ++i) {
    for (std::size_t s = 0; s < k; ++s) {
      if (active[s]) k1[s] = batch.problems[s].f(t[s], y[s]);
    }
    for (std::size_t s = 0; s < k; ++s) {
      if (active[s]) {
        k2[s] = batch.problems[s].f(t[s] + 0.5 * h[s],
                                    y[s] + 0.5 * h[s] * k1[s]);
      }
    }
    for (std::size_t s = 0; s < k; ++s) {
      if (active[s]) {
        k3[s] = batch.problems[s].f(t[s] + 0.5 * h[s],
                                    y[s] + 0.5 * h[s] * k2[s]);
      }
    }
    for (std::size_t s = 0; s < k; ++s) {
      if (active[s]) k4[s] = batch.problems[s].f(t[s] + h[s], y[s] + h[s] * k3[s]);
    }
    for (std::size_t s = 0; s < k; ++s) {
      if (!active[s]) continue;
      y[s] += h[s] / 6.0 * (k1[s] + 2.0 * k2[s] + 2.0 * k3[s] + k4[s]);
      t[s] = batch.problems[s].t0 + h[s] * (i + 1);
      if (!std::isfinite(y[s])) {
        active[s] = 0;
        report->failed_row[s] = i;
      }
    }
  }

  std::uint64_t ok_lanes = 0;
  for (std::size_t s = 0; s < k; ++s) {
    if (report->ok(s)) ++ok_lanes;
  }
  if (meter != nullptr && ok_lanes > 0) {
    meter->Charge(WorkKind::kExec,
                  static_cast<std::uint64_t>(steps) * 4 * ok_lanes);
  }
  if (ok_lanes > 0) {
    obs::CountSolverWork(obs::SolverKind::kIvp,
                         static_cast<std::uint64_t>(steps) * 4 * ok_lanes);
  }
  results->assign(y.begin(), y.end());
  return Status::OK();
}

}  // namespace vaolib::numeric
