#include "server/protocol.h"

#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "engine/report_capture.h"

namespace vaolib::server {

namespace {

// Splits off the next space-delimited token starting at *pos; returns an
// empty view at end of input. Never crosses the payload end.
std::string_view NextToken(std::string_view payload, std::size_t* pos) {
  while (*pos < payload.size() && payload[*pos] == ' ') ++*pos;
  const std::size_t start = *pos;
  while (*pos < payload.size() && payload[*pos] != ' ') ++*pos;
  return payload.substr(start, *pos - start);
}

// Shortest decimal that strtod()s back to exactly the same double.
std::string RoundTripNumber(double value) {
  for (int precision = 1; precision <= 17; ++precision) {
    std::ostringstream os;
    os << std::setprecision(precision) << value;
    if (std::strtod(os.str().c_str(), nullptr) == value) return os.str();
  }
  return std::to_string(value);
}

void AppendRowList(const std::vector<std::size_t>& rows, std::ostream& os) {
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) os << ',';
    os << rows[i];
  }
}

}  // namespace

bool IsValidId(std::string_view id) {
  if (id.empty() || id.size() > 64) return false;
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

Result<Request> ParseRequest(std::string_view payload) {
  std::size_t pos = 0;
  const std::string_view verb = NextToken(payload, &pos);
  if (verb.empty()) {
    return Status::InvalidArgument("empty request");
  }
  Request request;
  if (verb == "HELLO") {
    request.verb = Verb::kHello;
    const std::string_view tenant = NextToken(payload, &pos);
    if (!IsValidId(tenant)) {
      return Status::InvalidArgument(
          "HELLO needs a tenant id (1-64 chars of [A-Za-z0-9_.-]), got '" +
          std::string(tenant) + "'");
    }
    request.tenant = std::string(tenant);
    const std::string_view flag = NextToken(payload, &pos);
    if (flag == "reports") {
      request.want_reports = true;
    } else if (!flag.empty()) {
      return Status::InvalidArgument("unknown HELLO flag '" +
                                     std::string(flag) + "'");
    }
    return request;
  }
  if (verb == "REGISTER") {
    request.verb = Verb::kRegister;
    const std::string_view id = NextToken(payload, &pos);
    if (!IsValidId(id)) {
      return Status::InvalidArgument(
          "REGISTER needs a query id (1-64 chars of [A-Za-z0-9_.-]), got '" +
          std::string(id) + "'");
    }
    request.query_id = std::string(id);
    while (pos < payload.size() && payload[pos] == ' ') ++pos;
    if (pos >= payload.size()) {
      return Status::InvalidArgument("REGISTER " + request.query_id +
                                     " is missing the query text");
    }
    request.sql = std::string(payload.substr(pos));
    return request;
  }
  if (verb == "WITHDRAW") {
    request.verb = Verb::kWithdraw;
    const std::string_view id = NextToken(payload, &pos);
    if (!IsValidId(id)) {
      return Status::InvalidArgument("WITHDRAW needs a query id, got '" +
                                     std::string(id) + "'");
    }
    request.query_id = std::string(id);
    if (!NextToken(payload, &pos).empty()) {
      return Status::InvalidArgument("WITHDRAW takes exactly one query id");
    }
    return request;
  }
  if (verb == "TICK") {
    request.verb = Verb::kTick;
    for (std::string_view token = NextToken(payload, &pos); !token.empty();
         token = NextToken(payload, &pos)) {
      const std::string text(token);
      char* end = nullptr;
      const double value = std::strtod(text.c_str(), &end);
      if (end == nullptr || *end != '\0' || end == text.c_str()) {
        return Status::InvalidArgument("TICK value '" + text +
                                       "' is not a number");
      }
      request.tick_values.push_back(value);
    }
    if (request.tick_values.empty()) {
      return Status::InvalidArgument("TICK needs at least one stream value");
    }
    return request;
  }
  if (verb == "STATS") {
    request.verb = Verb::kStats;
    if (!NextToken(payload, &pos).empty()) {
      return Status::InvalidArgument("STATS takes no arguments");
    }
    return request;
  }
  if (verb == "METRICS") {
    request.verb = Verb::kMetrics;
    if (!NextToken(payload, &pos).empty()) {
      return Status::InvalidArgument("METRICS takes no arguments");
    }
    return request;
  }
  if (verb == "INSPECT") {
    request.verb = Verb::kInspect;
    const std::string_view target = NextToken(payload, &pos);
    if (!target.empty()) {
      if (!IsValidId(target)) {
        return Status::InvalidArgument(
            "INSPECT target must be a query or tenant id (1-64 chars of "
            "[A-Za-z0-9_.-]), got '" +
            std::string(target) + "'");
      }
      request.inspect_target = std::string(target);
      if (!NextToken(payload, &pos).empty()) {
        return Status::InvalidArgument("INSPECT takes at most one target");
      }
    }
    return request;
  }
  if (verb == "BYE") {
    request.verb = Verb::kBye;
    if (!NextToken(payload, &pos).empty()) {
      return Status::InvalidArgument("BYE takes no arguments");
    }
    return request;
  }
  return Status::InvalidArgument("unknown verb '" + std::string(verb) + "'");
}

std::string FormatErr(const Status& status) {
  return "ERR " + std::string(StatusCodeToString(status.code())) + " " +
         status.message();
}

std::string FormatShed(std::string_view what, std::uint64_t retry_after_ticks,
                       std::string_view reason) {
  std::ostringstream os;
  os << "SHED " << what << " RETRY-AFTER " << retry_after_ticks << " "
     << reason;
  return os.str();
}

std::string FormatResult(std::string_view query_id, std::uint64_t tick_seq,
                         const engine::TickResult& result) {
  std::ostringstream os;
  os << "RESULT " << query_id << " seq=" << tick_seq
     << " kind=" << engine::QueryKindName(result.kind)
     << " converged=" << (result.converged ? 1 : 0)
     << " lo=" << RoundTripNumber(result.aggregate_bounds.lo)
     << " hi=" << RoundTripNumber(result.aggregate_bounds.hi);
  if (result.winner_row.has_value()) os << " winner=" << *result.winner_row;
  if (result.kind == engine::QueryKind::kSelect ||
      result.kind == engine::QueryKind::kSelectRange) {
    os << " rows=";
    AppendRowList(result.passing_rows, os);
  }
  if (result.kind == engine::QueryKind::kTopK) {
    os << " top=";
    AppendRowList(result.top_rows, os);
  }
  // New tokens go strictly before work= and only on approximate answers, so
  // exact-mode frames stay byte-identical for pre-approx clients.
  if (result.aggregate_bounds.approximate()) {
    const vao::Answer& answer = result.aggregate_bounds;
    os << " mode=approx conf=" << RoundTripNumber(answer.confidence)
       << " samples=" << answer.sample_size << "/" << answer.population_size
       << " dwidth=" << RoundTripNumber(answer.deterministic_width)
       << " swidth=" << RoundTripNumber(answer.sampling_width);
  }
  os << " work=" << result.work_units;
  return os.str();
}

}  // namespace vaolib::server
