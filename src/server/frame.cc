#include "server/frame.h"

#include <utility>

namespace vaolib::server {

namespace {

// 10 digits cover any length the size ceiling can admit; more digits in a
// header means a garbage or adversarial stream.
constexpr std::size_t kMaxHeaderDigits = 10;

}  // namespace

std::string EncodeFrame(std::string_view payload) {
  std::string frame = std::to_string(payload.size());
  frame.reserve(frame.size() + 1 + payload.size());
  frame.push_back('\n');
  frame.append(payload);
  return frame;
}

Status FrameDecoder::Feed(std::string_view bytes) {
  if (broken_) {
    return Status::FailedPrecondition(
        "frame stream is broken; close the session");
  }
  std::size_t i = 0;
  while (i < bytes.size()) {
    if (state_ == State::kHeader) {
      const char c = bytes[i];
      if (c >= '0' && c <= '9') {
        if (++header_digits_ > kMaxHeaderDigits) {
          broken_ = true;
          return Status::InvalidArgument("frame length header too long");
        }
        declared_length_ = declared_length_ * 10 +
                           static_cast<std::size_t>(c - '0');
        if (declared_length_ > max_frame_bytes_) {
          broken_ = true;
          return Status::ResourceExhausted(
              "frame of " + std::to_string(declared_length_) +
              " bytes exceeds the " + std::to_string(max_frame_bytes_) +
              "-byte frame limit");
        }
        header_has_digits_ = true;
        ++i;
        continue;
      }
      if (c == '\n' && header_has_digits_) {
        ++i;
        state_ = State::kPayload;
        partial_.clear();
        partial_.reserve(declared_length_);
        if (declared_length_ == 0) {
          complete_.emplace_back();
          state_ = State::kHeader;
          header_has_digits_ = false;
          declared_length_ = 0;
          header_digits_ = 0;
        }
        continue;
      }
      broken_ = true;
      return Status::InvalidArgument(
          std::string("malformed frame header byte '") + c + "'");
    }
    // kPayload: copy up to the declared length.
    const std::size_t want = declared_length_ - partial_.size();
    const std::size_t take = std::min(want, bytes.size() - i);
    partial_.append(bytes.substr(i, take));
    i += take;
    if (partial_.size() == declared_length_) {
      complete_.push_back(std::move(partial_));
      partial_.clear();
      state_ = State::kHeader;
      header_has_digits_ = false;
      declared_length_ = 0;
      header_digits_ = 0;
    }
  }
  return Status::OK();
}

std::optional<std::string> FrameDecoder::Next() {
  if (complete_.empty()) return std::nullopt;
  std::string payload = std::move(complete_.front());
  complete_.pop_front();
  return payload;
}

std::size_t FrameDecoder::buffered_bytes() const {
  std::size_t total = partial_.size();
  for (const std::string& payload : complete_) total += payload.size();
  return total;
}

}  // namespace vaolib::server
