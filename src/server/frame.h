// Copyright 2026 The vaolib Authors.
// Length-framed wire codec for the standing-query server.
//
// A frame is the decimal byte length of the payload, a single '\n', then
// exactly that many payload bytes:
//
//   22\nREGISTER q1 SELECT...
//
// Length-framing (rather than newline-delimiting) keeps the payload fully
// opaque: query text may legally contain any byte, including '\n' (the SQL
// grammar treats it as whitespace) and the header delimiter itself, and
// still round-trips exactly. The decoder is an incremental push parser --
// feed it arbitrary byte slices (a TCP read may split one frame or merge
// several) and pull complete payloads out -- with hard limits on header
// digits and payload size so a malicious or broken peer cannot make the
// server buffer unbounded input.

#ifndef VAOLIB_SERVER_FRAME_H_
#define VAOLIB_SERVER_FRAME_H_

#include <cstddef>
#include <deque>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"

namespace vaolib::server {

/// \brief Hard ceiling on one frame's payload bytes (default 1 MiB).
inline constexpr std::size_t kDefaultMaxFrameBytes = 1u << 20;

/// \brief Encodes \p payload as one wire frame ("<len>\n<payload>").
std::string EncodeFrame(std::string_view payload);

/// \brief Incremental frame decoder. Feed() accepts arbitrary byte slices;
/// Next() pops complete payloads in arrival order. A framing violation
/// (non-digit header byte, missing length, oversized frame) fails Feed()
/// permanently: the stream is unsynchronizable after a bad header, so the
/// session must be dropped.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Consumes \p bytes. InvalidArgument on a malformed header,
  /// ResourceExhausted on an oversized declared length; both are sticky
  /// (every later Feed() returns FailedPrecondition).
  Status Feed(std::string_view bytes);

  /// Next complete payload, or nullopt when none is buffered.
  std::optional<std::string> Next();

  /// True after a Feed() error; the connection should be closed.
  bool broken() const { return broken_; }

  /// Payload bytes buffered in incomplete + undelivered frames (test and
  /// backpressure support).
  std::size_t buffered_bytes() const;

  std::size_t max_frame_bytes() const { return max_frame_bytes_; }

 private:
  enum class State { kHeader, kPayload };

  std::size_t max_frame_bytes_;
  State state_ = State::kHeader;
  bool broken_ = false;
  bool header_has_digits_ = false;
  std::size_t declared_length_ = 0;
  std::size_t header_digits_ = 0;
  std::string partial_;                // payload bytes of the current frame
  std::deque<std::string> complete_;   // decoded, not yet delivered
};

}  // namespace vaolib::server

#endif  // VAOLIB_SERVER_FRAME_H_
