// Copyright 2026 The vaolib Authors.
// Scenario files: replayable standing-query-server workloads.
//
// One line per step, '#' comments, blank lines ignored:
//
//   SESSION <name> <tenant> [reports]   open a session, HELLO as <tenant>
//   SEND <name> <payload...>            send one request payload verbatim
//                                       (the rest of the line, spaces kept)
//   TICKS <name> <count> <base> <step>  send <count> single-value TICKs
//                                       from <name>: value_i = base + step*i
//   EXPECT <name> <substring...>        assert that some reply already
//                                       received on <name> contains the
//                                       substring (rest of line, verbatim);
//                                       drivers drain the session first
//   CLOSE <name>                        drop the session (no BYE)
//
// The same format drives the in-process load bench (bench/srv01_load.cc)
// and the external load generator (scripts/loadgen.py), so a storm that
// fails in CI can be replayed byte-for-byte against a live server. The
// TICKS series is a deterministic arithmetic ramp on purpose: both
// implementations produce identical wire bytes with no shared RNG.

#ifndef VAOLIB_SERVER_SCENARIO_H_
#define VAOLIB_SERVER_SCENARIO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace vaolib::server {

/// \brief One scenario step.
struct ScenarioStep {
  enum class Kind { kSession, kSend, kTicks, kExpect, kClose };
  Kind kind = Kind::kSend;
  std::string session;  ///< every step names its session
  std::string tenant;   ///< kSession
  bool reports = false; ///< kSession
  std::string payload;  ///< kSend: request payload; kExpect: the substring
  std::uint64_t count = 0;  ///< kTicks
  double base = 0.0;        ///< kTicks
  double step = 0.0;        ///< kTicks
};

/// \brief Parses scenario text. InvalidArgument names the offending line.
Result<std::vector<ScenarioStep>> ParseScenario(std::string_view text);

/// \brief Renders steps back to scenario text (ParseScenario's inverse for
/// any step list it can produce).
std::string FormatScenario(const std::vector<ScenarioStep>& steps);

}  // namespace vaolib::server

#endif  // VAOLIB_SERVER_SCENARIO_H_
