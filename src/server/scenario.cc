#include "server/scenario.h"

#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "common/macros.h"
#include "server/protocol.h"

namespace vaolib::server {

namespace {

std::string_view NextWord(std::string_view line, std::size_t* pos) {
  while (*pos < line.size() && line[*pos] == ' ') ++*pos;
  const std::size_t start = *pos;
  while (*pos < line.size() && line[*pos] != ' ') ++*pos;
  return line.substr(start, *pos - start);
}

Status LineError(std::size_t line_no, const std::string& message) {
  return Status::InvalidArgument("scenario line " + std::to_string(line_no) +
                                 ": " + message);
}

Result<double> ParseNumber(std::string_view word, std::size_t line_no,
                           const char* what) {
  const std::string text(word);
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == nullptr || end == text.c_str() || *end != '\0') {
    return LineError(line_no, std::string(what) + " '" + text +
                                  "' is not a number");
  }
  return value;
}

void AppendNumber(std::ostream& os, double value) {
  // Shortest representation that round-trips; matches loadgen.py's repr().
  for (int precision = 1; precision <= 17; ++precision) {
    std::ostringstream probe;
    probe << std::setprecision(precision) << value;
    if (std::strtod(probe.str().c_str(), nullptr) == value) {
      os << probe.str();
      return;
    }
  }
  os << value;
}

}  // namespace

Result<std::vector<ScenarioStep>> ParseScenario(std::string_view text) {
  std::vector<ScenarioStep> steps;
  std::size_t line_no = 0;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t end = text.find('\n', begin);
    const std::string_view line =
        text.substr(begin, end == std::string_view::npos ? std::string_view::npos
                                                         : end - begin);
    begin = end == std::string_view::npos ? text.size() + 1 : end + 1;
    ++line_no;

    std::size_t pos = 0;
    const std::string_view op = NextWord(line, &pos);
    if (op.empty() || op.front() == '#') continue;

    ScenarioStep step;
    if (op == "SESSION") {
      step.kind = ScenarioStep::Kind::kSession;
      const std::string_view name = NextWord(line, &pos);
      const std::string_view tenant = NextWord(line, &pos);
      if (!IsValidId(name) || !IsValidId(tenant)) {
        return LineError(line_no,
                         "SESSION needs '<name> <tenant>' ids, got '" +
                             std::string(line) + "'");
      }
      step.session = std::string(name);
      step.tenant = std::string(tenant);
      const std::string_view flag = NextWord(line, &pos);
      if (flag == "reports") {
        step.reports = true;
      } else if (!flag.empty()) {
        return LineError(line_no,
                         "unknown SESSION flag '" + std::string(flag) + "'");
      }
    } else if (op == "SEND") {
      step.kind = ScenarioStep::Kind::kSend;
      const std::string_view name = NextWord(line, &pos);
      if (!IsValidId(name)) {
        return LineError(line_no, "SEND needs a session name, got '" +
                                      std::string(name) + "'");
      }
      step.session = std::string(name);
      if (pos < line.size() && line[pos] == ' ') ++pos;
      if (pos >= line.size()) {
        return LineError(line_no, "SEND is missing the request payload");
      }
      step.payload = std::string(line.substr(pos));
    } else if (op == "TICKS") {
      step.kind = ScenarioStep::Kind::kTicks;
      const std::string_view name = NextWord(line, &pos);
      if (!IsValidId(name)) {
        return LineError(line_no, "TICKS needs a session name, got '" +
                                      std::string(name) + "'");
      }
      step.session = std::string(name);
      const std::string_view count = NextWord(line, &pos);
      VAOLIB_ASSIGN_OR_RETURN(const double count_value,
                              ParseNumber(count, line_no, "TICKS count"));
      if (count_value < 1 || count_value != static_cast<double>(
                                                static_cast<std::uint64_t>(
                                                    count_value))) {
        return LineError(line_no, "TICKS count '" + std::string(count) +
                                      "' is not a positive integer");
      }
      step.count = static_cast<std::uint64_t>(count_value);
      VAOLIB_ASSIGN_OR_RETURN(
          step.base,
          ParseNumber(NextWord(line, &pos), line_no, "TICKS base"));
      VAOLIB_ASSIGN_OR_RETURN(
          step.step,
          ParseNumber(NextWord(line, &pos), line_no, "TICKS step"));
      if (!NextWord(line, &pos).empty()) {
        return LineError(line_no,
                         "TICKS takes '<name> <count> <base> <step>'");
      }
    } else if (op == "EXPECT") {
      step.kind = ScenarioStep::Kind::kExpect;
      const std::string_view name = NextWord(line, &pos);
      if (!IsValidId(name)) {
        return LineError(line_no, "EXPECT needs a session name, got '" +
                                      std::string(name) + "'");
      }
      step.session = std::string(name);
      if (pos < line.size() && line[pos] == ' ') ++pos;
      if (pos >= line.size()) {
        return LineError(line_no, "EXPECT is missing the substring");
      }
      step.payload = std::string(line.substr(pos));
    } else if (op == "CLOSE") {
      step.kind = ScenarioStep::Kind::kClose;
      const std::string_view name = NextWord(line, &pos);
      if (!IsValidId(name)) {
        return LineError(line_no, "CLOSE needs a session name, got '" +
                                      std::string(name) + "'");
      }
      step.session = std::string(name);
      if (!NextWord(line, &pos).empty()) {
        return LineError(line_no, "CLOSE takes exactly one session name");
      }
    } else {
      return LineError(line_no, "unknown step '" + std::string(op) + "'");
    }
    steps.push_back(std::move(step));
  }
  return steps;
}

std::string FormatScenario(const std::vector<ScenarioStep>& steps) {
  std::ostringstream os;
  for (const ScenarioStep& step : steps) {
    switch (step.kind) {
      case ScenarioStep::Kind::kSession:
        os << "SESSION " << step.session << ' ' << step.tenant
           << (step.reports ? " reports" : "");
        break;
      case ScenarioStep::Kind::kSend:
        os << "SEND " << step.session << ' ' << step.payload;
        break;
      case ScenarioStep::Kind::kTicks:
        os << "TICKS " << step.session << ' ' << step.count << ' ';
        AppendNumber(os, step.base);
        os << ' ';
        AppendNumber(os, step.step);
        break;
      case ScenarioStep::Kind::kExpect:
        os << "EXPECT " << step.session << ' ' << step.payload;
        break;
      case ScenarioStep::Kind::kClose:
        os << "CLOSE " << step.session;
        break;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace vaolib::server
