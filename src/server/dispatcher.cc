#include "server/dispatcher.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "common/macros.h"
#include "engine/report_capture.h"
#include "obs/metrics.h"
#include "server/protocol.h"

namespace vaolib::server {

namespace {

struct DispatcherMetrics {
  obs::Gauge* standing_queries;
  obs::Counter* registrations;
  obs::Counter* withdrawals;
  obs::Counter* ticks;
  obs::Counter* results;
  obs::Counter* shed_overload;
  obs::Counter* deadline_misses;
  obs::Counter* unconverged;
  obs::Histogram* tick_latency;
  obs::Histogram* tick_work;
};

const DispatcherMetrics& Metrics() {
  static const DispatcherMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::Global();
    registry.SetHelp("vaolib_server_standing_queries",
                     "Standing queries currently registered.");
    registry.SetHelp("vaolib_server_registrations_total",
                     "Accepted REGISTER commands.");
    registry.SetHelp("vaolib_server_withdrawals_total",
                     "WITHDRAW commands and session-close withdrawals.");
    registry.SetHelp("vaolib_server_ticks_total",
                     "Stream ticks dispatched to the standing-query set.");
    registry.SetHelp("vaolib_server_results_total",
                     "Per-query RESULT frames produced.");
    registry.SetHelp("vaolib_server_shed_total",
                     "Standing queries evicted under overload.");
    registry.SetHelp("vaolib_server_deadline_misses_total",
                     "Results that missed their scheduling deadline.");
    registry.SetHelp("vaolib_server_unconverged_total",
                     "Results delivered as sound partial intervals "
                     "(converged=0).");
    registry.SetHelp("vaolib_server_tick_latency_seconds",
                     "Wall-clock latency of one dispatcher tick.");
    registry.SetHelp("vaolib_server_tick_work_units",
                     "Work units spent in one dispatcher tick.");
    return DispatcherMetrics{
        registry.GetGauge("vaolib_server_standing_queries"),
        registry.GetCounter("vaolib_server_registrations_total"),
        registry.GetCounter("vaolib_server_withdrawals_total"),
        registry.GetCounter("vaolib_server_ticks_total"),
        registry.GetCounter("vaolib_server_results_total"),
        registry.GetCounter("vaolib_server_shed_total",
                            {{"reason", "overload"}}),
        registry.GetCounter("vaolib_server_deadline_misses_total"),
        registry.GetCounter("vaolib_server_unconverged_total"),
        registry.GetHistogram("vaolib_server_tick_latency_seconds", {},
                              {1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0,
                               30.0}),
        registry.GetHistogram("vaolib_server_tick_work_units", {},
                              {1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8}),
    };
  }();
  return metrics;
}

// %.9g with non-finite mapped to 0: INSPECT payloads are JSON and
// "inf"/"nan" would break every scraper.
void AppendDouble(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << 0;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  os << buf;
}

}  // namespace

std::vector<obs::SloSpec> DefaultServerSlos(const HealthConfig& health,
                                            std::uint64_t tick_budget) {
  std::vector<obs::SloSpec> slos;
  const auto ratio = [&](const char* name, const char* bad_metric,
                         obs::MetricsRegistry::Labels bad_labels,
                         double budget) {
    obs::SloSpec spec;
    spec.name = name;
    spec.bad_metric = bad_metric;
    spec.bad_labels = std::move(bad_labels);
    spec.total_metric = "vaolib_server_results_total";
    spec.budget = budget;
    spec.fast_epochs = health.fast_epochs;
    spec.slow_epochs = health.slow_epochs;
    slos.push_back(std::move(spec));
  };
  ratio("deadline_miss", "vaolib_server_deadline_misses_total", {}, 0.01);
  ratio("shed", "vaolib_server_shed_total", {{"reason", "overload"}}, 0.01);
  ratio("unconverged", "vaolib_server_unconverged_total", {}, 0.05);
  if (tick_budget > 0) {
    obs::SloSpec spec;
    spec.name = "tick_work_p99";
    spec.histogram_metric = "vaolib_server_tick_work_units";
    spec.quantile = 0.99;
    spec.limit = static_cast<double>(tick_budget);
    spec.fast_epochs = health.fast_epochs;
    spec.slow_epochs = health.slow_epochs;
    slos.push_back(std::move(spec));
  }
  return slos;
}

Dispatcher::Dispatcher(const engine::Relation* relation,
                       engine::Schema stream_schema,
                       const engine::FunctionRegistry* registry,
                       DispatcherConfig config)
    : relation_(relation),
      stream_schema_(std::move(stream_schema)),
      registry_(registry),
      config_(std::move(config)),
      admission_(config_.admission) {
  if (config_.health.enabled) {
    obs::WindowedView::Options view_options;
    view_options.window_count = config_.health.window_count;
    health_view_ = std::make_unique<obs::WindowedView>(
        &obs::MetricsRegistry::Global(), view_options);
    health_monitor_ = std::make_unique<obs::SloMonitor>(
        health_view_.get(),
        config_.health.slos.empty()
            ? DefaultServerSlos(config_.health, config_.tick_budget)
            : config_.health.slos);
  }
}

Result<engine::Query> Dispatcher::ParseSql(const std::string& sql) const {
  return engine::ParseQuery(sql, *registry_, stream_schema_,
                            relation_->schema());
}

std::string Dispatcher::GroupKeyOf(const engine::Query& query) {
  // Two queries sharing a key satisfy MultiQueryExecutor's sharing
  // precondition: same function instance, same argument bindings.
  std::ostringstream os;
  os << static_cast<const void*>(query.function);
  for (const engine::ArgRef& arg : query.args) {
    os << '|';
    switch (arg.source) {
      case engine::ArgRef::Source::kStreamField:
        os << 's' << arg.field;
        break;
      case engine::ArgRef::Source::kRelationField:
        os << 'r' << arg.field;
        break;
      case engine::ArgRef::Source::kConstant:
        os << 'c' << std::setprecision(17) << arg.constant;
        break;
    }
  }
  return os.str();
}

AdmissionDecision Dispatcher::Register(std::uint64_t session,
                                       const std::string& tenant,
                                       const std::string& query_id,
                                       const engine::Query& query,
                                       bool want_reports) {
  AdmissionDecision decision;
  const QueryKey key{session, query_id};
  if (standing_.count(key) > 0) {
    decision.outcome = AdmissionDecision::Outcome::kRejected;
    decision.reason = Status::AlreadyExists(
        "query id '" + query_id + "' is already registered on this session");
    return decision;
  }
  // Validate the query against this dispatcher's relation/schemas NOW, with
  // a single-query probe executor, so a bad registration fails its own
  // REGISTER instead of failing the whole group's next tick.
  {
    engine::MultiQueryOptions probe;
    probe.scheduled = true;
    probe.scheduler.policy = config_.policy;
    const auto validated = engine::MultiQueryExecutor::Create(
        relation_, stream_schema_, {query}, probe);
    if (!validated.ok()) {
      decision.outcome = AdmissionDecision::Outcome::kRejected;
      decision.reason = validated.status();
      return decision;
    }
  }
  decision = admission_.AdmitQuery(tenant, relation_->size());
  if (decision.outcome != AdmissionDecision::Outcome::kAdmitted) {
    return decision;
  }
  StandingQuery standing;
  standing.tenant = tenant;
  standing.query = query;
  standing.want_reports = want_reports;
  standing_.emplace(key, std::move(standing));
  dirty_ = true;
  Metrics().registrations->Increment();
  Metrics().standing_queries->Set(static_cast<std::int64_t>(
      standing_.size()));
  return decision;
}

Status Dispatcher::Withdraw(std::uint64_t session,
                            const std::string& query_id) {
  const auto it = standing_.find(QueryKey{session, query_id});
  if (it == standing_.end()) {
    return Status::NotFound("no standing query '" + query_id +
                            "' on this session");
  }
  admission_.ReleaseQuery(it->second.tenant, relation_->size(),
                          /*shed=*/false);
  progress_.erase(it->first);
  standing_.erase(it);
  dirty_ = true;
  Metrics().withdrawals->Increment();
  Metrics().standing_queries->Set(static_cast<std::int64_t>(
      standing_.size()));
  return Status::OK();
}

void Dispatcher::WithdrawSession(std::uint64_t session) {
  for (auto it = standing_.lower_bound(QueryKey{session, ""});
       it != standing_.end() && it->first.first == session;) {
    admission_.ReleaseQuery(it->second.tenant, relation_->size(),
                            /*shed=*/false);
    progress_.erase(it->first);
    it = standing_.erase(it);
    dirty_ = true;
    Metrics().withdrawals->Increment();
  }
  Metrics().standing_queries->Set(static_cast<std::int64_t>(
      standing_.size()));
}

Status Dispatcher::RebuildGroups() {
  groups_.clear();
  for (const auto& [key, standing] : standing_) {
    groups_[GroupKeyOf(standing.query)].members.push_back(key);
  }
  const std::size_t total = standing_.size();
  for (auto& [signature, group] : groups_) {
    // Each group's scheduler gets the tick budget in proportion to its
    // share of the standing-query set (integer division may strand a few
    // units; they come back as soon as the mix changes).
    group.budget =
        config_.tick_budget > 0 && total > 0
            ? config_.tick_budget * group.members.size() / total
            : 0;
    engine::MultiQueryOptions options;
    options.threads = config_.threads;
    options.scheduled = true;
    options.scheduler.policy = config_.policy;
    options.scheduler.budget = group.budget;
    options.strategy = config_.strategy;
    options.sentinel_probes = config_.sentinel_probes;
    // The history store outlives the executor: fetch-or-create per group
    // signature so corrections learned before a rebuild keep applying.
    auto& history = histories_[signature];
    if (history == nullptr) history = std::make_shared<engine::CostHistory>();
    options.history = history;
    std::vector<engine::Query> queries;
    queries.reserve(group.members.size());
    for (const QueryKey& member : group.members) {
      const StandingQuery& standing = standing_.at(member);
      queries.push_back(standing.query);
      options.schedules.push_back(
          admission_.ScheduleFor(standing.tenant, group.budget));
      options.owners.push_back(standing.tenant);
    }
    VAOLIB_ASSIGN_OR_RETURN(
        group.executor,
        engine::MultiQueryExecutor::Create(relation_, stream_schema_,
                                           std::move(queries), options));
  }
  // Drop histories whose signature no longer has a group; a signature that
  // comes back later starts learning from scratch.
  for (auto it = histories_.begin(); it != histories_.end();) {
    it = groups_.count(it->first) ? std::next(it) : histories_.erase(it);
  }
  return Status::OK();
}

Result<TickSummary> Dispatcher::Tick(const engine::Tuple& stream_tuple,
                                     std::vector<Delivery>* deliveries) {
  const auto start = std::chrono::steady_clock::now();
  if (dirty_) {
    VAOLIB_RETURN_IF_ERROR(RebuildGroups());
    dirty_ = false;
  }
  ++tick_seq_;
  TickSummary summary;
  summary.seq = tick_seq_;

  std::vector<QueryKey> to_shed;
  for (auto& [signature, group] : groups_) {
    const std::uint64_t before = group.executor->meter().Total();
    VAOLIB_ASSIGN_OR_RETURN(const std::vector<engine::TickResult> results,
                            group.executor->ProcessTick(stream_tuple));
    summary.work_units += group.executor->meter().Total() - before;

    for (std::size_t i = 0; i < group.members.size(); ++i) {
      const QueryKey& member = group.members[i];
      StandingQuery& standing = standing_.at(member);
      const engine::TickResult& result = results[i];
      ++summary.queries;
      if (result.converged) ++summary.converged;

      deliveries->push_back(
          {member.first, FormatResult(member.second, tick_seq_, result)});
      if (standing.want_reports) {
        std::ostringstream os;
        os << "REPORT " << member.second << " seq=" << tick_seq_ << " ";
        result.report.RenderJson(os);
        deliveries->push_back({member.first, os.str()});
      }
      Metrics().results->Increment();
      if (!result.converged) Metrics().unconverged->Increment();
      if (result.report.missed_deadline) {
        Metrics().deadline_misses->Increment();
      }
      admission_.RecordResult(standing.tenant, result.report.scheduler_spent,
                              result.converged,
                              result.report.missed_deadline);

      if (health_view_ != nullptr) {
        auto progress_it = progress_.find(member);
        if (progress_it == progress_.end()) {
          ProgressEntry entry;
          entry.tenant = standing.tenant;
          entry.kind = result.kind;
          entry.epsilon = standing.query.epsilon;
          entry.signature = signature;
          entry.ring = obs::ProgressRing(config_.health.progress_capacity);
          progress_it = progress_.emplace(member, std::move(entry)).first;
        }
        obs::ProgressSample sample;
        sample.tick = tick_seq_;
        sample.width = result.report.answer_width;
        sample.rel_width = result.report.answer_rel_width;
        sample.work_spent = result.work_units;
        sample.converged = result.converged;
        sample.limited_by_min_width = result.report.limited_by_min_width;
        progress_it->second.ring.Record(sample);
      }

      if (result.converged) {
        standing.misses = 0;
      } else if (config_.shed_after_misses > 0 &&
                 !admission_.QuotaFor(standing.tenant).reserved() &&
                 ++standing.misses >= config_.shed_after_misses) {
        to_shed.push_back(member);
      }
    }
  }

  for (const QueryKey& member : to_shed) {
    const auto it = standing_.find(member);
    admission_.ReleaseQuery(it->second.tenant, relation_->size(),
                            /*shed=*/true);
    progress_.erase(member);
    deliveries->push_back(
        {member.first,
         FormatShed(member.second, config_.admission.retry_after_ticks,
                    "unconverged for " +
                        std::to_string(config_.shed_after_misses) +
                        " consecutive ticks; re-register after backoff")});
    standing_.erase(it);
    dirty_ = true;
    Metrics().shed_overload->Increment();
    ++summary.shed;
  }
  total_shed_ += summary.shed;
  if (summary.shed > 0) {
    Metrics().standing_queries->Set(static_cast<std::int64_t>(
        standing_.size()));
  }

  total_work_units_ += summary.work_units;
  summary.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  Metrics().ticks->Increment();
  Metrics().tick_latency->Observe(summary.wall_seconds);
  Metrics().tick_work->Observe(static_cast<double>(summary.work_units));

  if (health_view_ != nullptr &&
      tick_seq_ % std::max<std::size_t>(config_.health.ticks_per_epoch, 1) ==
          0) {
    // Tick-driven epochs: deliberately no wall clock here, so deterministic
    // replays close identical windows.
    health_view_->Advance();
    health_monitor_->Evaluate();
  }
  return summary;
}

obs::HealthState Dispatcher::health_state() const {
  return health_monitor_ != nullptr ? health_monitor_->state()
                                    : obs::HealthState::kHealthy;
}

double Dispatcher::ShrinkHintFor(const std::string& signature) const {
  const auto it = histories_.find(signature);
  if (it == histories_.end() || it->second == nullptr) return 1.0;
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& [key, entry] : it->second->Snapshot()) {
    if (!entry.has_shrink) continue;
    sum += entry.shrink_ratio;
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 1.0;
}

void Dispatcher::RenderQueryProgress(const QueryKey& key,
                                     const ProgressEntry& entry,
                                     std::ostream& os) const {
  os << "{\"id\": \"" << key.second << "\", \"session\": " << key.first
     << ", \"tenant\": \"" << entry.tenant << "\", \"kind\": \""
     << engine::QueryKindName(entry.kind) << "\", \"epsilon\": ";
  AppendDouble(os, entry.epsilon);
  os << ", \"ticks_observed\": " << entry.ring.total_recorded();
  if (entry.ring.size() > 0) {
    const obs::ProgressSample& last = entry.ring.newest();
    os << ", \"width\": ";
    AppendDouble(os, last.width);
    os << ", \"rel_width\": ";
    AppendDouble(os, last.rel_width);
    os << ", \"work_last_tick\": " << last.work_spent
       << ", \"converged\": " << (last.converged ? "true" : "false")
       << ", \"limited_by_min_width\": "
       << (last.limited_by_min_width ? "true" : "false");
    const obs::EtaEstimate eta =
        entry.ring.EstimateEta(entry.epsilon, ShrinkHintFor(entry.signature));
    os << ", \"eta\": {\"known\": " << (eta.known ? "true" : "false")
       << ", \"ticks\": ";
    AppendDouble(os, eta.ticks);
    os << ", \"work_units\": ";
    AppendDouble(os, eta.work_units);
    os << "}, \"trajectory\": [";
    for (std::size_t i = 0; i < entry.ring.size(); ++i) {
      const obs::ProgressSample& sample = entry.ring.at(i);
      if (i > 0) os << ", ";
      os << "{\"tick\": " << sample.tick << ", \"width\": ";
      AppendDouble(os, sample.width);
      os << ", \"work\": " << sample.work_spent << "}";
    }
    os << "]";
  }
  os << "}";
}

Result<std::string> Dispatcher::InspectServer() const {
  if (health_monitor_ == nullptr) {
    return Status::FailedPrecondition(
        "health plane disabled on this server (DispatcherConfig::health)");
  }
  std::ostringstream os;
  os << "{\"scope\": \"server\", \"health\": \""
     << obs::HealthStateName(health_monitor_->state()) << "\""
     << ", \"ticks\": " << tick_seq_ << ", \"queries\": " << standing_.size()
     << ", \"epochs\": " << health_view_->epochs()
     << ", \"window_count\": " << health_view_->options().window_count
     << ", \"critical_transitions\": "
     << health_monitor_->critical_transitions() << ", \"slos\": [";
  bool first = true;
  for (const obs::SloStatus& status : health_monitor_->statuses()) {
    if (!first) os << ", ";
    first = false;
    os << "{\"name\": \"" << status.name << "\", \"state\": \""
       << obs::HealthStateName(status.state) << "\", \"fast_value\": ";
    AppendDouble(os, status.fast_value);
    os << ", \"slow_value\": ";
    AppendDouble(os, status.slow_value);
    os << ", \"fast_burn\": ";
    AppendDouble(os, status.fast_burn);
    os << ", \"slow_burn\": ";
    AppendDouble(os, status.slow_burn);
    os << "}";
  }
  os << "]}";
  return os.str();
}

Result<std::string> Dispatcher::InspectQuery(std::uint64_t session,
                                             const std::string& query_id)
    const {
  if (health_monitor_ == nullptr) {
    return Status::FailedPrecondition(
        "health plane disabled on this server (DispatcherConfig::health)");
  }
  const QueryKey key{session, query_id};
  const auto it = progress_.find(key);
  if (it == progress_.end()) {
    // Registered but never ticked: answer with identity only, no samples.
    const auto standing_it = standing_.find(key);
    if (standing_it == standing_.end()) {
      return Status::NotFound("no standing query '" + query_id +
                              "' on this session");
    }
    std::ostringstream os;
    os << "{\"scope\": \"query\", \"health\": \""
       << obs::HealthStateName(health_monitor_->state())
       << "\", \"queries\": [{\"id\": \"" << query_id
       << "\", \"session\": " << session << ", \"tenant\": \""
       << standing_it->second.tenant << "\", \"ticks_observed\": 0}]}";
    return os.str();
  }
  std::ostringstream os;
  os << "{\"scope\": \"query\", \"health\": \""
     << obs::HealthStateName(health_monitor_->state())
     << "\", \"queries\": [";
  RenderQueryProgress(key, it->second, os);
  os << "]}";
  return os.str();
}

Result<std::string> Dispatcher::InspectTenant(const std::string& tenant)
    const {
  if (health_monitor_ == nullptr) {
    return Status::FailedPrecondition(
        "health plane disabled on this server (DispatcherConfig::health)");
  }
  const auto usage_map = admission_.AllUsage();
  const auto usage_it = usage_map.find(tenant);
  if (usage_it == usage_map.end()) {
    return Status::NotFound("no tenant '" + tenant + "'");
  }
  const TenantUsage& usage = usage_it->second;
  std::ostringstream os;
  os << "{\"scope\": \"tenant\", \"tenant\": \"" << tenant
     << "\", \"health\": \""
     << obs::HealthStateName(health_monitor_->state())
     << "\", \"usage\": {\"queries\": " << usage.queries
     << ", \"work_units\": " << usage.work_units
     << ", \"results\": " << usage.results
     << ", \"unconverged\": " << usage.unconverged_results
     << ", \"deadline_misses\": " << usage.deadline_misses
     << ", \"shed\": " << usage.shed_queries
     << ", \"rejected\": " << usage.rejected_registrations
     << "}, \"queries\": [";
  bool first = true;
  for (const auto& [key, entry] : progress_) {
    if (entry.tenant != tenant) continue;
    if (!first) os << ", ";
    first = false;
    RenderQueryProgress(key, entry, os);
  }
  os << "]}";
  return os.str();
}

}  // namespace vaolib::server
