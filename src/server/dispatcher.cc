#include "server/dispatcher.h"

#include <chrono>
#include <iomanip>
#include <sstream>

#include "common/macros.h"
#include "obs/metrics.h"
#include "server/protocol.h"

namespace vaolib::server {

namespace {

struct DispatcherMetrics {
  obs::Gauge* standing_queries;
  obs::Counter* registrations;
  obs::Counter* withdrawals;
  obs::Counter* ticks;
  obs::Counter* results;
  obs::Counter* shed_overload;
  obs::Histogram* tick_latency;
};

const DispatcherMetrics& Metrics() {
  static const DispatcherMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::Global();
    return DispatcherMetrics{
        registry.GetGauge("vaolib_server_standing_queries"),
        registry.GetCounter("vaolib_server_registrations_total"),
        registry.GetCounter("vaolib_server_withdrawals_total"),
        registry.GetCounter("vaolib_server_ticks_total"),
        registry.GetCounter("vaolib_server_results_total"),
        registry.GetCounter("vaolib_server_shed_total",
                            {{"reason", "overload"}}),
        registry.GetHistogram("vaolib_server_tick_latency_seconds", {},
                              {1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0,
                               30.0}),
    };
  }();
  return metrics;
}

}  // namespace

Dispatcher::Dispatcher(const engine::Relation* relation,
                       engine::Schema stream_schema,
                       const engine::FunctionRegistry* registry,
                       DispatcherConfig config)
    : relation_(relation),
      stream_schema_(std::move(stream_schema)),
      registry_(registry),
      config_(std::move(config)),
      admission_(config_.admission) {}

Result<engine::Query> Dispatcher::ParseSql(const std::string& sql) const {
  return engine::ParseQuery(sql, *registry_, stream_schema_,
                            relation_->schema());
}

std::string Dispatcher::GroupKeyOf(const engine::Query& query) {
  // Two queries sharing a key satisfy MultiQueryExecutor's sharing
  // precondition: same function instance, same argument bindings.
  std::ostringstream os;
  os << static_cast<const void*>(query.function);
  for (const engine::ArgRef& arg : query.args) {
    os << '|';
    switch (arg.source) {
      case engine::ArgRef::Source::kStreamField:
        os << 's' << arg.field;
        break;
      case engine::ArgRef::Source::kRelationField:
        os << 'r' << arg.field;
        break;
      case engine::ArgRef::Source::kConstant:
        os << 'c' << std::setprecision(17) << arg.constant;
        break;
    }
  }
  return os.str();
}

AdmissionDecision Dispatcher::Register(std::uint64_t session,
                                       const std::string& tenant,
                                       const std::string& query_id,
                                       const engine::Query& query,
                                       bool want_reports) {
  AdmissionDecision decision;
  const QueryKey key{session, query_id};
  if (standing_.count(key) > 0) {
    decision.outcome = AdmissionDecision::Outcome::kRejected;
    decision.reason = Status::AlreadyExists(
        "query id '" + query_id + "' is already registered on this session");
    return decision;
  }
  // Validate the query against this dispatcher's relation/schemas NOW, with
  // a single-query probe executor, so a bad registration fails its own
  // REGISTER instead of failing the whole group's next tick.
  {
    engine::MultiQueryOptions probe;
    probe.scheduled = true;
    probe.scheduler.policy = config_.policy;
    const auto validated = engine::MultiQueryExecutor::Create(
        relation_, stream_schema_, {query}, probe);
    if (!validated.ok()) {
      decision.outcome = AdmissionDecision::Outcome::kRejected;
      decision.reason = validated.status();
      return decision;
    }
  }
  decision = admission_.AdmitQuery(tenant, relation_->size());
  if (decision.outcome != AdmissionDecision::Outcome::kAdmitted) {
    return decision;
  }
  StandingQuery standing;
  standing.tenant = tenant;
  standing.query = query;
  standing.want_reports = want_reports;
  standing_.emplace(key, std::move(standing));
  dirty_ = true;
  Metrics().registrations->Increment();
  Metrics().standing_queries->Set(static_cast<std::int64_t>(
      standing_.size()));
  return decision;
}

Status Dispatcher::Withdraw(std::uint64_t session,
                            const std::string& query_id) {
  const auto it = standing_.find(QueryKey{session, query_id});
  if (it == standing_.end()) {
    return Status::NotFound("no standing query '" + query_id +
                            "' on this session");
  }
  admission_.ReleaseQuery(it->second.tenant, relation_->size(),
                          /*shed=*/false);
  standing_.erase(it);
  dirty_ = true;
  Metrics().withdrawals->Increment();
  Metrics().standing_queries->Set(static_cast<std::int64_t>(
      standing_.size()));
  return Status::OK();
}

void Dispatcher::WithdrawSession(std::uint64_t session) {
  for (auto it = standing_.lower_bound(QueryKey{session, ""});
       it != standing_.end() && it->first.first == session;) {
    admission_.ReleaseQuery(it->second.tenant, relation_->size(),
                            /*shed=*/false);
    it = standing_.erase(it);
    dirty_ = true;
    Metrics().withdrawals->Increment();
  }
  Metrics().standing_queries->Set(static_cast<std::int64_t>(
      standing_.size()));
}

Status Dispatcher::RebuildGroups() {
  groups_.clear();
  for (const auto& [key, standing] : standing_) {
    groups_[GroupKeyOf(standing.query)].members.push_back(key);
  }
  const std::size_t total = standing_.size();
  for (auto& [signature, group] : groups_) {
    // Each group's scheduler gets the tick budget in proportion to its
    // share of the standing-query set (integer division may strand a few
    // units; they come back as soon as the mix changes).
    group.budget =
        config_.tick_budget > 0 && total > 0
            ? config_.tick_budget * group.members.size() / total
            : 0;
    engine::MultiQueryOptions options;
    options.threads = config_.threads;
    options.scheduled = true;
    options.scheduler.policy = config_.policy;
    options.scheduler.budget = group.budget;
    options.strategy = config_.strategy;
    options.sentinel_probes = config_.sentinel_probes;
    // The history store outlives the executor: fetch-or-create per group
    // signature so corrections learned before a rebuild keep applying.
    auto& history = histories_[signature];
    if (history == nullptr) history = std::make_shared<engine::CostHistory>();
    options.history = history;
    std::vector<engine::Query> queries;
    queries.reserve(group.members.size());
    for (const QueryKey& member : group.members) {
      const StandingQuery& standing = standing_.at(member);
      queries.push_back(standing.query);
      options.schedules.push_back(
          admission_.ScheduleFor(standing.tenant, group.budget));
      options.owners.push_back(standing.tenant);
    }
    VAOLIB_ASSIGN_OR_RETURN(
        group.executor,
        engine::MultiQueryExecutor::Create(relation_, stream_schema_,
                                           std::move(queries), options));
  }
  // Drop histories whose signature no longer has a group; a signature that
  // comes back later starts learning from scratch.
  for (auto it = histories_.begin(); it != histories_.end();) {
    it = groups_.count(it->first) ? std::next(it) : histories_.erase(it);
  }
  return Status::OK();
}

Result<TickSummary> Dispatcher::Tick(const engine::Tuple& stream_tuple,
                                     std::vector<Delivery>* deliveries) {
  const auto start = std::chrono::steady_clock::now();
  if (dirty_) {
    VAOLIB_RETURN_IF_ERROR(RebuildGroups());
    dirty_ = false;
  }
  ++tick_seq_;
  TickSummary summary;
  summary.seq = tick_seq_;

  std::vector<QueryKey> to_shed;
  for (auto& [signature, group] : groups_) {
    const std::uint64_t before = group.executor->meter().Total();
    VAOLIB_ASSIGN_OR_RETURN(const std::vector<engine::TickResult> results,
                            group.executor->ProcessTick(stream_tuple));
    summary.work_units += group.executor->meter().Total() - before;

    for (std::size_t i = 0; i < group.members.size(); ++i) {
      const QueryKey& member = group.members[i];
      StandingQuery& standing = standing_.at(member);
      const engine::TickResult& result = results[i];
      ++summary.queries;
      if (result.converged) ++summary.converged;

      deliveries->push_back(
          {member.first, FormatResult(member.second, tick_seq_, result)});
      if (standing.want_reports) {
        std::ostringstream os;
        os << "REPORT " << member.second << " seq=" << tick_seq_ << " ";
        result.report.RenderJson(os);
        deliveries->push_back({member.first, os.str()});
      }
      Metrics().results->Increment();
      admission_.RecordResult(standing.tenant, result.report.scheduler_spent,
                              result.converged,
                              result.report.missed_deadline);

      if (result.converged) {
        standing.misses = 0;
      } else if (config_.shed_after_misses > 0 &&
                 !admission_.QuotaFor(standing.tenant).reserved() &&
                 ++standing.misses >= config_.shed_after_misses) {
        to_shed.push_back(member);
      }
    }
  }

  for (const QueryKey& member : to_shed) {
    const auto it = standing_.find(member);
    admission_.ReleaseQuery(it->second.tenant, relation_->size(),
                            /*shed=*/true);
    deliveries->push_back(
        {member.first,
         FormatShed(member.second, config_.admission.retry_after_ticks,
                    "unconverged for " +
                        std::to_string(config_.shed_after_misses) +
                        " consecutive ticks; re-register after backoff")});
    standing_.erase(it);
    dirty_ = true;
    Metrics().shed_overload->Increment();
    ++summary.shed;
  }
  total_shed_ += summary.shed;
  if (summary.shed > 0) {
    Metrics().standing_queries->Set(static_cast<std::int64_t>(
        standing_.size()));
  }

  total_work_units_ += summary.work_units;
  summary.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  Metrics().ticks->Increment();
  Metrics().tick_latency->Observe(summary.wall_seconds);
  return summary;
}

}  // namespace vaolib::server
