// Copyright 2026 The vaolib Authors.
// Dispatcher: the standing-query set and its tick loop.
//
// Sessions (server/server.h) register and withdraw queries; the dispatcher
// groups them by shared (function, argument-binding) signature -- the
// sharing precondition of MultiQueryExecutor -- and on every stream tick
// drives each group through scheduled execution with a per-tick work
// budget. Results fan back out as protocol frames addressed to the owning
// sessions.
//
// Overload degrades in two sound stages rather than failing:
//   1. Budget exhaustion: the scheduler stops granting work and every
//      unfinished query still answers with a sound partial [L,H] interval,
//      delivered with converged=0 (the paper's budget-exhaustion path).
//   2. Shedding: a best-effort query that stayed unconverged for
//      `shed_after_misses` consecutive ticks is evicted -- its owner gets a
//      SHED frame with RETRY-AFTER -- so a persistently oversubscribed
//      server returns to a query set it can serve. Reserved tenants are
//      never shed; their admission reserves guarantee them budget first.

#ifndef VAOLIB_SERVER_DISPATCHER_H_
#define VAOLIB_SERVER_DISPATCHER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "engine/multi_query.h"
#include "engine/relation.h"
#include "engine/schema.h"
#include "engine/sql_parser.h"
#include "obs/health.h"
#include "server/admission.h"

namespace vaolib::server {

/// \brief Runtime health plane configuration (obs/health.h). Disabled by
/// default for library embedders; the serving binary turns it on. One
/// health-enabled dispatcher per process is the supported shape (the plane
/// reads and writes the process-global metrics registry).
struct HealthConfig {
  bool enabled = false;
  /// Closed metric epochs retained by the windowed view.
  std::size_t window_count = 64;
  /// Dispatcher ticks per epoch: every Nth Tick() closes an epoch and
  /// re-evaluates the SLO monitors.
  std::size_t ticks_per_epoch = 1;
  /// Per-query progress samples retained (one per tick).
  std::size_t progress_capacity = 32;
  /// Fast/slow burn-rate windows, in epochs, for the default SLO set.
  std::size_t fast_epochs = 6;
  std::size_t slow_epochs = 36;
  /// Objectives to monitor; empty installs the default server set
  /// (deadline-miss rate, shed rate, unconverged rate, p99 tick work).
  std::vector<obs::SloSpec> slos;
};

/// \brief Dispatcher-wide execution parameters.
struct DispatcherConfig {
  /// Scheduler work-unit budget for one tick, split over query groups
  /// proportional to their query counts. 0 = unlimited (converge-all).
  std::uint64_t tick_budget = 0;
  /// Scheduling policy inside each group. kDeadline honours the admission
  /// reserves and is the default for multi-tenant serving.
  engine::SchedulerPolicy policy = engine::SchedulerPolicy::kDeadline;
  /// Threads for shared object creation / row-parallel phases.
  int threads = 1;
  /// Evict a best-effort standing query after this many CONSECUTIVE
  /// unconverged ticks (0 disables eviction). Reserved tenants are exempt.
  int shed_after_misses = 3;
  /// Iteration strategy for every group's aggregate operators.
  /// kCalibratedGreedy / kSentinelGreedy turn on calibration-corrected
  /// scoring backed by a per-group CostHistory that survives group
  /// rebuilds, so corrections learned on tick N still apply after a
  /// register/withdraw churns the group set.
  operators::StrategyKind strategy = operators::StrategyKind::kGreedy;
  /// kSentinelGreedy: probe budget per correlation group.
  int sentinel_probes = 2;
  AdmissionConfig admission;
  HealthConfig health;
};

/// \brief The default serving objectives, over \p health's fast/slow
/// windows: deadline-miss rate <= 1%, shed rate <= 1%, unconverged rate
/// <= 5% of results, and (when \p tick_budget > 0) p99 tick work within
/// the budget. Exposed so tools and benches can start from the defaults
/// and tighten.
std::vector<obs::SloSpec> DefaultServerSlos(const HealthConfig& health,
                                            std::uint64_t tick_budget);

/// \brief One outbound protocol payload addressed to a session.
struct Delivery {
  std::uint64_t session = 0;
  std::string payload;
};

/// \brief Account of one Tick() call.
struct TickSummary {
  std::uint64_t seq = 0;
  std::size_t queries = 0;    ///< standing queries evaluated
  std::size_t converged = 0;  ///< finished within the budget
  std::size_t shed = 0;       ///< evicted this tick
  std::uint64_t work_units = 0;
  double wall_seconds = 0.0;
};

/// \brief Owns the standing-query set and executes stream ticks. Not
/// thread-safe: one thread (the server loop) drives it.
class Dispatcher {
 public:
  /// \p relation and \p registry are borrowed and must outlive the
  /// dispatcher.
  Dispatcher(const engine::Relation* relation, engine::Schema stream_schema,
             const engine::FunctionRegistry* registry,
             DispatcherConfig config);

  /// Parses wire query text against this dispatcher's schemas/registry.
  Result<engine::Query> ParseSql(const std::string& sql) const;

  /// Registers a standing query owned by (\p session, \p query_id). The
  /// admission decision is returned verbatim; only kAdmitted registers.
  /// \p want_reports subscribes the owner to REPORT frames for this query.
  AdmissionDecision Register(std::uint64_t session, const std::string& tenant,
                             const std::string& query_id,
                             const engine::Query& query, bool want_reports);

  /// Withdraws one standing query (NotFound if absent).
  Status Withdraw(std::uint64_t session, const std::string& query_id);

  /// Withdraws every query a closing session still holds.
  void WithdrawSession(std::uint64_t session);

  /// Evaluates every standing query for \p stream_tuple; RESULT / REPORT /
  /// SHED frames are appended to \p deliveries. Succeeds with zero queries
  /// (an empty tick still advances the sequence number).
  Result<TickSummary> Tick(const engine::Tuple& stream_tuple,
                           std::vector<Delivery>* deliveries);

  AdmissionController& admission() { return admission_; }
  const AdmissionController& admission() const { return admission_; }
  const DispatcherConfig& config() const { return config_; }
  const engine::Schema& stream_schema() const { return stream_schema_; }

  std::size_t query_count() const { return standing_.size(); }
  std::uint64_t ticks() const { return tick_seq_; }
  std::uint64_t total_work_units() const { return total_work_units_; }
  std::uint64_t total_shed() const { return total_shed_; }

  /// \name Health plane (config().health.enabled).
  /// @{
  bool health_enabled() const { return health_monitor_ != nullptr; }
  /// kHealthy when the plane is disabled or no epoch has closed yet.
  obs::HealthState health_state() const;
  const obs::SloMonitor* health_monitor() const {
    return health_monitor_.get();
  }
  const obs::WindowedView* health_view() const { return health_view_.get(); }

  /// INSPECT payload JSON (see protocol.h for the reply grammar). All three
  /// answer FailedPrecondition when the plane is disabled; the query/tenant
  /// forms answer NotFound for unknown ids.
  Result<std::string> InspectServer() const;
  Result<std::string> InspectQuery(std::uint64_t session,
                                   const std::string& query_id) const;
  Result<std::string> InspectTenant(const std::string& tenant) const;
  /// @}

 private:
  struct StandingQuery {
    std::string tenant;
    engine::Query query;
    bool want_reports = false;
    int misses = 0;  ///< consecutive unconverged ticks
  };
  /// (session, query id) -> standing query; map order makes group member
  /// order (and thus scheduling order) deterministic.
  using QueryKey = std::pair<std::uint64_t, std::string>;

  struct Group {
    std::vector<QueryKey> members;
    std::unique_ptr<engine::MultiQueryExecutor> executor;
    std::uint64_t budget = 0;
  };

  /// Shared-execution signature: queries with equal keys may share one
  /// MultiQueryExecutor (same function, same argument bindings).
  static std::string GroupKeyOf(const engine::Query& query);

  /// Rebuilds `groups_` (and their executors) from `standing_`.
  Status RebuildGroups();

  const engine::Relation* relation_;
  engine::Schema stream_schema_;
  const engine::FunctionRegistry* registry_;
  DispatcherConfig config_;
  AdmissionController admission_;

  /// One standing query's health-plane state: its progress ring plus the
  /// identity needed to render INSPECT without re-deriving it.
  struct ProgressEntry {
    std::string tenant;
    engine::QueryKind kind = engine::QueryKind::kSelect;
    double epsilon = 0.0;
    std::string signature;  ///< group key, for the CostHistory shrink hint
    obs::ProgressRing ring;
  };

  /// Renders one query's progress object into \p os (InspectQuery /
  /// InspectTenant share it).
  void RenderQueryProgress(const QueryKey& key, const ProgressEntry& entry,
                           std::ostream& os) const;
  /// Mean CostHistory shrink ratio for \p signature (1.0 when unknown).
  double ShrinkHintFor(const std::string& signature) const;

  std::map<QueryKey, StandingQuery> standing_;
  std::map<std::string, Group> groups_;
  /// Per-group-signature cost history; keyed like `groups_` but kept
  /// across RebuildGroups() so learned corrections survive query churn.
  /// Signatures with no surviving group are pruned on rebuild.
  std::map<std::string, std::shared_ptr<engine::CostHistory>> histories_;
  bool dirty_ = true;

  std::uint64_t tick_seq_ = 0;
  std::uint64_t total_work_units_ = 0;
  std::uint64_t total_shed_ = 0;

  /// Health plane (null when config_.health.enabled is false). The view
  /// snapshots the global registry once per ticks_per_epoch ticks; progress
  /// rings live and die with their standing query.
  std::unique_ptr<obs::WindowedView> health_view_;
  std::unique_ptr<obs::SloMonitor> health_monitor_;
  std::map<QueryKey, ProgressEntry> progress_;
};

}  // namespace vaolib::server

#endif  // VAOLIB_SERVER_DISPATCHER_H_
