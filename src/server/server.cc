#include "server/server.h"

#include <sstream>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "server/protocol.h"

namespace vaolib::server {

namespace {

obs::Gauge* SessionsGauge() {
  static obs::Gauge* const gauge =
      obs::MetricsRegistry::Global().GetGauge("vaolib_server_sessions");
  return gauge;
}

}  // namespace

StandingQueryServer::StandingQueryServer(
    const engine::Relation* relation, engine::Schema stream_schema,
    const engine::FunctionRegistry* registry, ServerConfig config)
    : stream_schema_(stream_schema),
      config_(std::move(config)),
      dispatcher_(relation, std::move(stream_schema), registry,
                  config_.dispatcher) {}

std::uint64_t StandingQueryServer::OpenSession() {
  const std::uint64_t id = next_session_++;
  sessions_.emplace(id, Session(config_.max_frame_bytes));
  SessionsGauge()->Set(static_cast<std::int64_t>(sessions_.size()));
  return id;
}

void StandingQueryServer::CloseSession(std::uint64_t session) {
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) return;
  dispatcher_.WithdrawSession(session);
  sessions_.erase(it);
  SessionsGauge()->Set(static_cast<std::int64_t>(sessions_.size()));
}

void StandingQueryServer::Reply(std::uint64_t session,
                                std::string_view payload) {
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) return;
  it->second.outbox += EncodeFrame(payload);
}

void StandingQueryServer::HandleBytes(std::uint64_t session,
                                      std::string_view bytes) {
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) return;
  Session& state = it->second;
  if (state.closing) return;

  const Status fed = state.decoder.Feed(bytes);
  // Drain every frame that decoded cleanly before surfacing the framing
  // error: bytes before the corruption point are still valid requests.
  while (true) {
    const auto payload = state.decoder.Next();
    if (!payload.has_value()) break;
    HandleRequest(session, *payload);
    if (state.closing) return;
  }
  if (!fed.ok()) {
    Reply(session, FormatErr(fed));
    state.closing = true;
  }
}

void StandingQueryServer::HandleRequest(std::uint64_t session,
                                        const std::string& payload) {
  Session& state = sessions_.at(session);
  const auto parsed = ParseRequest(payload);
  if (!parsed.ok()) {
    Reply(session, FormatErr(parsed.status()));
    return;
  }
  const Request& request = *parsed;

  if (state.tenant.empty() && request.verb != Verb::kHello) {
    Reply(session, FormatErr(Status::FailedPrecondition(
                       "say HELLO <tenant> before anything else")));
    return;
  }

  switch (request.verb) {
    case Verb::kHello: {
      if (!state.tenant.empty()) {
        Reply(session, FormatErr(Status::FailedPrecondition(
                           "session is already bound to tenant '" +
                           state.tenant + "'")));
        return;
      }
      state.tenant = request.tenant;
      state.want_reports = request.want_reports;
      Reply(session, "OK HELLO " + state.tenant +
                         (state.want_reports ? " reports" : ""));
      return;
    }
    case Verb::kRegister: {
      const auto query = dispatcher_.ParseSql(request.sql);
      if (!query.ok()) {
        Reply(session, FormatErr(query.status()));
        return;
      }
      const AdmissionDecision decision =
          dispatcher_.Register(session, state.tenant, request.query_id,
                               *query, state.want_reports);
      switch (decision.outcome) {
        case AdmissionDecision::Outcome::kAdmitted:
          Reply(session, "OK REGISTER " + request.query_id);
          return;
        case AdmissionDecision::Outcome::kRejected:
          Reply(session, FormatErr(decision.reason));
          return;
        case AdmissionDecision::Outcome::kShed:
          Reply(session,
                FormatShed("REGISTER", decision.retry_after_ticks,
                           decision.reason.message()));
          return;
      }
      return;
    }
    case Verb::kWithdraw: {
      const Status withdrawn = dispatcher_.Withdraw(session,
                                                    request.query_id);
      if (!withdrawn.ok()) {
        Reply(session, FormatErr(withdrawn));
        return;
      }
      Reply(session, "OK WITHDRAW " + request.query_id);
      return;
    }
    case Verb::kTick: {
      if (request.tick_values.size() != stream_schema_.size()) {
        Reply(session,
              FormatErr(Status::InvalidArgument(
                  "TICK carries " +
                  std::to_string(request.tick_values.size()) +
                  " values but the stream schema has " +
                  std::to_string(stream_schema_.size()) + " columns")));
        return;
      }
      engine::Tuple tuple;
      tuple.reserve(request.tick_values.size());
      for (const double value : request.tick_values) {
        tuple.emplace_back(value);
      }
      std::vector<Delivery> deliveries;
      const auto summary = dispatcher_.Tick(tuple, &deliveries);
      if (!summary.ok()) {
        Reply(session, FormatErr(summary.status()));
        return;
      }
      for (const Delivery& delivery : deliveries) {
        Reply(delivery.session, delivery.payload);
      }
      std::ostringstream os;
      os << "OK TICK seq=" << summary->seq << " queries=" << summary->queries
         << " converged=" << summary->converged << " shed=" << summary->shed
         << " work=" << summary->work_units;
      Reply(session, os.str());
      return;
    }
    case Verb::kStats: {
      std::ostringstream os;
      os << "OK STATS sessions=" << sessions_.size()
         << " queries=" << dispatcher_.query_count()
         << " ticks=" << dispatcher_.ticks()
         << " work=" << dispatcher_.total_work_units()
         << " shed=" << dispatcher_.total_shed();
      // AllUsage() is an ordered map, so the tenant tokens come out sorted
      // by name -- the machine-parseable grammar documented in protocol.h.
      for (const auto& [tenant, usage] : dispatcher_.admission().AllUsage()) {
        os << " tenant." << tenant << "=q:" << usage.queries
           << ",work:" << usage.work_units
           << ",unconverged:" << usage.unconverged_results
           << ",misses:" << usage.deadline_misses
           << ",shed:" << usage.shed_queries
           << ",rejected:" << usage.rejected_registrations;
      }
      Reply(session, os.str());
      return;
    }
    case Verb::kMetrics: {
      // The whole Prometheus exposition rides in one frame; METRICS frames
      // are the protocol's first multi-kilobyte replies (frame.h caps the
      // size, server_test covers near-cap payloads).
      std::ostringstream os;
      obs::MetricsRegistry::Global().RenderPrometheus(os);
      Reply(session, os.str());
      return;
    }
    case Verb::kInspect: {
      // Resolution order (protocol.h): no target = whole server; otherwise
      // the requesting session's query of that id first, then a tenant of
      // that name.
      Result<std::string> inspected =
          request.inspect_target.empty()
              ? dispatcher_.InspectServer()
              : dispatcher_.InspectQuery(session, request.inspect_target);
      if (!request.inspect_target.empty()) {
        if (!inspected.ok() &&
            inspected.status().code() == StatusCode::kNotFound) {
          const auto as_tenant =
              dispatcher_.InspectTenant(request.inspect_target);
          if (as_tenant.ok()) {
            inspected = as_tenant;
          } else {
            inspected = Status::NotFound(
                "'" + request.inspect_target +
                "' names neither a query on this session nor a tenant");
          }
        }
      }
      if (!inspected.ok()) {
        Reply(session, FormatErr(inspected.status()));
        return;
      }
      Reply(session, "INSPECT " + *inspected);
      return;
    }
    case Verb::kBye: {
      dispatcher_.WithdrawSession(session);
      Reply(session, "OK BYE");
      state.closing = true;
      return;
    }
  }
}

std::string StandingQueryServer::DrainOutput(std::uint64_t session) {
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) return {};
  return std::exchange(it->second.outbox, {});
}

bool StandingQueryServer::ShouldClose(std::uint64_t session) const {
  const auto it = sessions_.find(session);
  return it == sessions_.end() || it->second.closing;
}

}  // namespace vaolib::server
