// Copyright 2026 The vaolib Authors.
// Text protocol of the standing-query server. Every frame payload (see
// server/frame.h) is one message; the first space-delimited token is the
// verb. Query text rides the existing SQL surface syntax verbatim --
// ParseQuery is the wire parser and FormatQuery the wire printer, so any
// query the library can express is expressible on the wire.
//
// Client -> server:
//   HELLO <tenant> [reports]          bind this session to a tenant; the
//                                     optional `reports` flag subscribes the
//                                     session to per-result REPORT frames
//   REGISTER <qid> <sql...>           register a standing query under a
//                                     session-chosen id
//   WITHDRAW <qid>                    remove a standing query
//   TICK <v1> [v2 ...]                inject one stream tuple; results fan
//                                     out to every owning session
//   STATS                             one-line server account
//   METRICS                           full Prometheus scrape in one frame
//   INSPECT [id]                      health-plane introspection: no id =
//                                     whole-server SLO/health state; id =
//                                     this session's query of that id, else
//                                     the tenant of that name
//   BYE                               withdraw everything and close
//
// Server -> client:
//   OK <verb> ...                     command acknowledged
//   ERR <code> <message>              command failed (code = Status code
//                                     name, e.g. invalid-argument)
//   SHED <qid|REGISTER> RETRY-AFTER <ticks> <reason>
//                                     load was shed: a registration was
//                                     refused, or a standing query was
//                                     evicted after sustained overload
//   RESULT <qid> seq=<n> kind=<kind> converged=<0|1> lo=<v> hi=<v>
//          [winner=<row>] [rows=<r1,r2,...>] [top=<r1,r2,...>]
//          [mode=approx conf=<c> samples=<n>/<N> dwidth=<v> swidth=<v>]
//          work=<units>
//                                     one query's answer for one tick; lo/hi
//                                     is the sound [L,H] interval (partial
//                                     but still sound when converged=0).
//                                     The mode=approx group appears only for
//                                     queries registered with an APPROX
//                                     clause: lo/hi is then a confidence
//                                     interval at level conf, decomposed
//                                     into deterministic (dwidth) and
//                                     sampling (swidth) widths over a
//                                     samples=<drawn>/<population> sample.
//                                     conf=0 marks a tier with NO coverage
//                                     guarantee: APPROX TOP-K reports the
//                                     sampled winner's hard bounds (rows
//                                     outside the sample were never
//                                     considered, no per-rank CLT claim),
//                                     and a sampled aggregate read before
//                                     any variance estimate exists reports
//                                     a placeholder interval. Exact results
//                                     are byte-identical to pre-approx
//                                     frames.
//   REPORT <qid> seq=<n> <json>       the query's ExecutionReport (only for
//                                     sessions that said HELLO ... reports)
//
// STATS reply grammar (machine-parseable; one line, space-delimited):
//   OK STATS sessions=<n> queries=<n> ticks=<n> work=<n> shed=<n>
//      [tenant.<name>=q:<n>,work:<n>,unconverged:<n>,misses:<n>,shed:<n>,
//       rejected:<n>]...
// One tenant.<name>= token per tenant that has ever registered, sorted by
// tenant name ascending (bytewise), so scrapers can diff successive STATS
// lines without re-ordering. Tenant names are ids (no spaces, '=' or ',').
//
// METRICS reply: the frame payload is the raw Prometheus text exposition of
// the process registry (starts with "# HELP"; multi-kilobyte frames are
// normal -- see frame.h for the size cap).
//
// INSPECT reply: "INSPECT <json>" where <json> is an object with
//   "scope":  "server" | "tenant" | "query"
//   "health": "healthy" | "degraded" | "critical" | "disabled"
//   "slos":   [{name, state, fast_burn, slow_burn, ...}] (server scope)
//   "queries":[{id, tenant, width, rel_width, converged,
//               limited_by_min_width, eta_ticks, ...}] (tenant/query scope)
// An unknown id answers ERR not-found; a server without the health plane
// enabled answers ERR failed-precondition.

#ifndef VAOLIB_SERVER_PROTOCOL_H_
#define VAOLIB_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "engine/executor.h"

namespace vaolib::server {

/// \brief Client-request verbs.
enum class Verb {
  kHello,
  kRegister,
  kWithdraw,
  kTick,
  kStats,
  kMetrics,
  kInspect,
  kBye,
};

/// \brief One parsed client request.
struct Request {
  Verb verb = Verb::kStats;
  std::string tenant;               ///< kHello
  bool want_reports = false;        ///< kHello: subscribe to REPORT frames
  std::string query_id;             ///< kRegister / kWithdraw
  std::string sql;                  ///< kRegister: ParseQuery text, verbatim
  std::vector<double> tick_values;  ///< kTick: the stream tuple
  std::string inspect_target;       ///< kInspect: tenant/query id, may be ""
};

/// \brief Parses one frame payload into a Request. InvalidArgument carries
/// the offending token so the ERR reply is actionable.
Result<Request> ParseRequest(std::string_view payload);

/// \brief True when \p id is a legal tenant or query id: 1-64 bytes of
/// [A-Za-z0-9_.-]. Keeps ids single-token on the wire.
bool IsValidId(std::string_view id);

/// \name Reply formatters.
/// @{

/// "ERR <code-name> <message>".
std::string FormatErr(const Status& status);

/// "SHED <what> RETRY-AFTER <ticks> <reason>".
std::string FormatShed(std::string_view what, std::uint64_t retry_after_ticks,
                       std::string_view reason);

/// "RESULT <qid> seq=<n> ..." for one query's tick answer. Bounds print
/// with round-trip precision.
std::string FormatResult(std::string_view query_id, std::uint64_t tick_seq,
                         const engine::TickResult& result);

/// @}

}  // namespace vaolib::server

#endif  // VAOLIB_SERVER_PROTOCOL_H_
