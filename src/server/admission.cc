#include "server/admission.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace vaolib::server {

namespace {

struct AdmissionCounters {
  obs::Counter* admitted;
  obs::Counter* rejected;
  obs::Counter* shed;
};

const AdmissionCounters& Counters() {
  static const AdmissionCounters counters = [] {
    auto& registry = obs::MetricsRegistry::Global();
    return AdmissionCounters{
        registry.GetCounter("vaolib_server_admitted_total"),
        registry.GetCounter("vaolib_server_rejected_total"),
        registry.GetCounter("vaolib_server_shed_total",
                            {{"reason", "register"}}),
    };
  }();
  return counters;
}

}  // namespace

void AdmissionController::SetQuota(const std::string& tenant,
                                   const TenantQuota& quota) {
  const std::lock_guard<std::mutex> lock(mutex_);
  quotas_[tenant] = quota;
}

TenantQuota AdmissionController::QuotaFor(const std::string& tenant) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = quotas_.find(tenant);
  return it == quotas_.end() ? config_.default_quota : it->second;
}

AdmissionDecision AdmissionController::AdmitQuery(const std::string& tenant,
                                                  std::size_t relation_rows) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto quota_it = quotas_.find(tenant);
  const TenantQuota& quota =
      quota_it == quotas_.end() ? config_.default_quota : quota_it->second;
  TenantUsage& usage = usage_[tenant];

  AdmissionDecision decision;
  if (usage.queries + 1 > quota.max_queries) {
    decision.outcome = AdmissionDecision::Outcome::kRejected;
    decision.reason = Status::ResourceExhausted(
        "tenant '" + tenant + "' is at its query quota (" +
        std::to_string(quota.max_queries) + "); withdraw one first");
  } else if (usage.objects + relation_rows > quota.max_objects) {
    decision.outcome = AdmissionDecision::Outcome::kRejected;
    decision.reason = Status::ResourceExhausted(
        "tenant '" + tenant + "' is at its object quota (" +
        std::to_string(quota.max_objects) + " objects; this query needs " +
        std::to_string(relation_rows) + " more)");
  } else if (total_queries_ + 1 > config_.max_total_queries) {
    decision.outcome = AdmissionDecision::Outcome::kShed;
    decision.reason = Status::ResourceExhausted(
        "server is at its standing-query capacity (" +
        std::to_string(config_.max_total_queries) + ")");
    decision.retry_after_ticks = config_.retry_after_ticks;
  }

  switch (decision.outcome) {
    case AdmissionDecision::Outcome::kAdmitted:
      usage.queries += 1;
      usage.objects += relation_rows;
      total_queries_ += 1;
      Counters().admitted->Increment();
      break;
    case AdmissionDecision::Outcome::kRejected:
      usage.rejected_registrations += 1;
      Counters().rejected->Increment();
      break;
    case AdmissionDecision::Outcome::kShed:
      usage.rejected_registrations += 1;
      Counters().shed->Increment();
      break;
  }
  return decision;
}

void AdmissionController::ReleaseQuery(const std::string& tenant,
                                       std::size_t relation_rows, bool shed) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TenantUsage& usage = usage_[tenant];
  usage.queries = usage.queries > 0 ? usage.queries - 1 : 0;
  usage.objects =
      usage.objects > relation_rows ? usage.objects - relation_rows : 0;
  if (shed) usage.shed_queries += 1;
  total_queries_ = total_queries_ > 0 ? total_queries_ - 1 : 0;
}

void AdmissionController::RecordResult(const std::string& tenant,
                                       std::uint64_t spent, bool converged,
                                       bool missed_deadline) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TenantUsage& usage = usage_[tenant];
  usage.work_units += spent;
  usage.results += 1;
  if (!converged) usage.unconverged_results += 1;
  if (missed_deadline) usage.deadline_misses += 1;
}

engine::QuerySchedule AdmissionController::ScheduleFor(
    const std::string& tenant, std::uint64_t tick_budget) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto quota_it = quotas_.find(tenant);
  const TenantQuota& quota =
      quota_it == quotas_.end() ? config_.default_quota : quota_it->second;
  const auto usage_it = usage_.find(tenant);
  const std::size_t live =
      usage_it == usage_.end() ? 0 : usage_it->second.queries;
  const double split = static_cast<double>(std::max<std::size_t>(live, 1));

  engine::QuerySchedule schedule;
  // The whole tenant owns work_share; each of its queries competes with
  // 1/live of it, so registering more queries never buys more total work.
  schedule.priority = std::max(quota.work_share / split, 1e-9);
  if (quota.reserved()) {
    schedule.reserve = quota.reserve_units / std::max<std::uint64_t>(
                                                static_cast<std::uint64_t>(
                                                    live),
                                                1);
    // Any nonzero deadline beats "no deadline" under EDF; the tick budget
    // is the natural work-clock bound ("finish within this tick").
    schedule.deadline = tick_budget > 0 ? tick_budget : 0;
  }
  return schedule;
}

TenantUsage AdmissionController::UsageFor(const std::string& tenant) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = usage_.find(tenant);
  return it == usage_.end() ? TenantUsage{} : it->second;
}

std::map<std::string, TenantUsage> AdmissionController::AllUsage() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return usage_;
}

std::size_t AdmissionController::total_queries() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return total_queries_;
}

}  // namespace vaolib::server
