// Copyright 2026 The vaolib Authors.
// Multi-tenant admission control for the standing-query server.
//
// Tenants are the isolation unit: each carries a quota (standing queries,
// result objects, a work share, and optionally a reserved per-tick work
// budget), and the controller maps those quotas onto the WorkScheduler's
// QuerySchedule parameters so the EXISTING scheduler policies enforce
// isolation at execution time:
//
//   * work_share   -> kFairShare priority, split over the tenant's live
//                     queries (a tenant registering 4x the queries gets a
//                     4x-split priority per query, not 4x the work),
//   * reserve      -> kDeadline per-query reserve + a deadline at the tick
//                     budget, so reserved tenants run first under EDF and
//                     keep guaranteed budget headroom no matter how many
//                     best-effort queries pile up.
//
// Registration-time decisions distinguish a tenant exceeding its OWN quota
// (kRejected -> a clean ERR, the client must withdraw something first) from
// server-wide overload (kShed -> SHED ... RETRY-AFTER, the client should
// back off and retry). All methods are thread-safe.

#ifndef VAOLIB_SERVER_ADMISSION_H_
#define VAOLIB_SERVER_ADMISSION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/result.h"
#include "engine/scheduler.h"

namespace vaolib::server {

/// \brief Per-tenant resource limits and scheduling weight.
struct TenantQuota {
  /// Standing queries this tenant may hold at once.
  std::size_t max_queries = 16;
  /// Result-object ceiling: standing queries x relation rows. Bounds the
  /// per-tick object-creation and refinement footprint a tenant can demand.
  std::size_t max_objects = 1u << 20;
  /// Fair-share weight of the whole tenant (> 0); divided over the
  /// tenant's live queries when building per-query schedules.
  double work_share = 1.0;
  /// Work units per tick guaranteed to this tenant (0 = best effort).
  /// Reserved tenants map onto kDeadline reserves and run ahead of
  /// best-effort traffic; they are also exempt from overload shedding.
  std::uint64_t reserve_units = 0;

  bool reserved() const { return reserve_units > 0; }
};

/// \brief Live accounting for one tenant.
struct TenantUsage {
  std::size_t queries = 0;  ///< live standing queries
  std::size_t objects = 0;  ///< live queries x relation rows
  std::uint64_t work_units = 0;          ///< cumulative scheduled spend
  std::uint64_t results = 0;             ///< RESULT frames produced
  std::uint64_t unconverged_results = 0; ///< budget ran out first
  std::uint64_t deadline_misses = 0;
  std::uint64_t shed_queries = 0;  ///< standing queries evicted by overload
  std::uint64_t rejected_registrations = 0;
};

/// \brief Server-wide admission limits.
struct AdmissionConfig {
  /// Quota applied to tenants without an explicit SetQuota() entry.
  TenantQuota default_quota;
  /// Standing queries across ALL tenants; registrations beyond it shed.
  std::size_t max_total_queries = 1024;
  /// RETRY-AFTER value (in ticks) attached to shed replies.
  std::uint64_t retry_after_ticks = 2;
};

/// \brief Outcome of one registration attempt.
struct AdmissionDecision {
  enum class Outcome {
    kAdmitted,
    kRejected,  ///< tenant quota exceeded: ERR, withdraw first
    kShed,      ///< server-wide overload: SHED + RETRY-AFTER, back off
  };
  Outcome outcome = Outcome::kAdmitted;
  Status reason;                      ///< set for kRejected / kShed
  std::uint64_t retry_after_ticks = 0;  ///< set for kShed
};

/// \brief Thread-safe tenant bookkeeping + quota -> schedule mapping.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config)
      : config_(std::move(config)) {}

  /// Installs (or replaces) \p tenant's quota. Existing usage is kept.
  void SetQuota(const std::string& tenant, const TenantQuota& quota);
  TenantQuota QuotaFor(const std::string& tenant) const;

  /// Decides one registration of a query over \p relation_rows rows and, on
  /// admission, charges it to the tenant's usage.
  AdmissionDecision AdmitQuery(const std::string& tenant,
                               std::size_t relation_rows);

  /// Returns one admitted query's resources (withdraw, shed, session close).
  void ReleaseQuery(const std::string& tenant, std::size_t relation_rows,
                    bool shed);

  /// Folds one tick result into the tenant's account.
  void RecordResult(const std::string& tenant, std::uint64_t spent,
                    bool converged, bool missed_deadline);

  /// Scheduling parameters for one of \p tenant's queries in a tick whose
  /// scheduler budget is \p tick_budget work units. The tenant's share and
  /// reserve are split over its live queries; reserved tenants get
  /// deadline = tick_budget so EDF runs them ahead of best-effort tasks.
  engine::QuerySchedule ScheduleFor(const std::string& tenant,
                                    std::uint64_t tick_budget) const;

  TenantUsage UsageFor(const std::string& tenant) const;
  std::map<std::string, TenantUsage> AllUsage() const;
  std::size_t total_queries() const;
  const AdmissionConfig& config() const { return config_; }

 private:
  AdmissionConfig config_;
  mutable std::mutex mutex_;
  std::map<std::string, TenantQuota> quotas_;
  std::map<std::string, TenantUsage> usage_;
  std::size_t total_queries_ = 0;
};

}  // namespace vaolib::server

#endif  // VAOLIB_SERVER_ADMISSION_H_
