// Copyright 2026 The vaolib Authors.
// StandingQueryServer: session management over the dispatcher.
//
// This is the transport-independent core of the serving layer: callers
// (tools/vaolib_server.cc's TCP loop, the in-process load bench, tests)
// open a session per client connection, push whatever bytes arrived into
// HandleBytes(), and write back whatever DrainOutput() returns. Framing
// (server/frame.h), the request grammar (server/protocol.h), tenant
// admission, and result fan-out all live behind those three calls, so a
// transport is ~30 lines of socket plumbing.
//
// Sessions are single-tenant: the first request must be HELLO <tenant>,
// which binds the session. A malformed frame stream is unrecoverable by
// design (framing is byte-exact); the session gets one final ERR and
// should_close() turns true. BYE (or CloseSession) withdraws every standing
// query the session still owns, returning its quota to the tenant.

#ifndef VAOLIB_SERVER_SERVER_H_
#define VAOLIB_SERVER_SERVER_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "server/dispatcher.h"
#include "server/frame.h"

namespace vaolib::server {

/// \brief Server-wide configuration.
struct ServerConfig {
  DispatcherConfig dispatcher;
  /// Per-session inbound frame size ceiling.
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
};

/// \brief Transport-independent standing-query server: sessions in, framed
/// bytes out. Not thread-safe; one thread (the transport loop) drives it.
class StandingQueryServer {
 public:
  /// \p relation and \p registry are borrowed and must outlive the server.
  StandingQueryServer(const engine::Relation* relation,
                      engine::Schema stream_schema,
                      const engine::FunctionRegistry* registry,
                      ServerConfig config);

  /// Opens a session (one per client connection); returns its id.
  std::uint64_t OpenSession();

  /// Closes a session, withdrawing all its standing queries. Unknown ids
  /// are ignored (double close is fine).
  void CloseSession(std::uint64_t session);

  /// Feeds raw bytes from the session's connection. Complete frames are
  /// parsed and executed immediately; replies (and any fan-out to OTHER
  /// sessions triggered by a TICK) accumulate in per-session outboxes.
  void HandleBytes(std::uint64_t session, std::string_view bytes);

  /// Returns-and-clears the session's pending outbound bytes (frames,
  /// ready to write to the socket verbatim).
  std::string DrainOutput(std::uint64_t session);

  /// True when the session asked to close (BYE) or its frame stream broke;
  /// the transport should flush DrainOutput() one last time and disconnect.
  bool ShouldClose(std::uint64_t session) const;

  std::size_t session_count() const { return sessions_.size(); }
  Dispatcher& dispatcher() { return dispatcher_; }
  const Dispatcher& dispatcher() const { return dispatcher_; }

 private:
  struct Session {
    FrameDecoder decoder;
    std::string tenant;  ///< empty until HELLO
    bool want_reports = false;
    bool closing = false;
    std::string outbox;

    explicit Session(std::size_t max_frame_bytes)
        : decoder(max_frame_bytes) {}
  };

  /// Executes one complete frame payload for \p session.
  void HandleRequest(std::uint64_t session, const std::string& payload);
  void Reply(std::uint64_t session, std::string_view payload);

  engine::Schema stream_schema_;
  ServerConfig config_;
  Dispatcher dispatcher_;
  std::map<std::uint64_t, Session> sessions_;
  std::uint64_t next_session_ = 1;
};

}  // namespace vaolib::server

#endif  // VAOLIB_SERVER_SERVER_H_
