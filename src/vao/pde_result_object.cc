#include "vao/pde_result_object.h"

#include <utility>

#include "common/macros.h"
#include "vao/calibration_probe.h"

namespace vaolib::vao {

PdeResultObject::PdeResultObject(numeric::Pde1dProblem problem, double query_x,
                                 const PdeResultOptions& options,
                                 WorkMeter* meter)
    : ResultObjectBase(meter),
      problem_(std::move(problem)),
      query_x_(query_x),
      options_(options),
      model_(options.safety_factor),
      grid_(options.initial_grid) {}

Result<double> PdeResultObject::SolveAt(const numeric::PdeGrid& grid) {
  const auto key = std::make_pair(grid.x_intervals, grid.t_steps);
  if (const auto it = solve_cache_.find(key); it != solve_cache_.end()) {
    return it->second;
  }
  VAOLIB_ASSIGN_OR_RETURN(const double value,
                          numeric::SolvePde(problem_, grid, query_x_, meter()));
  solve_cache_.emplace(key, value);
  return value;
}

Result<ResultObjectPtr> PdeResultObject::Create(numeric::Pde1dProblem problem,
                                                double query_x,
                                                const PdeResultOptions& options,
                                                WorkMeter* meter) {
  if (options.min_width <= 0.0) {
    return Status::InvalidArgument("min_width must be > 0");
  }
  if (options.safety_factor < 1.0) {
    return Status::InvalidArgument("safety_factor must be >= 1");
  }
  auto object = std::unique_ptr<PdeResultObject>(
      new PdeResultObject(std::move(problem), query_x, options, meter));

  // The extrapolation triple of Table 1: F1 at (dt*, dx*), F2 at
  // (dt*/2, dx*), F3 at (dt*, dx*/2).
  const numeric::PdeGrid g1 = object->grid_;
  numeric::PdeGrid g2 = g1;
  g2.t_steps *= 2;
  numeric::PdeGrid g3 = g1;
  g3.x_intervals *= 2;

  VAOLIB_ASSIGN_OR_RETURN(const double f1, object->SolveAt(g1));
  VAOLIB_ASSIGN_OR_RETURN(const double f2, object->SolveAt(g2));
  VAOLIB_ASSIGN_OR_RETURN(const double f3, object->SolveAt(g3));

  const double dt = g1.Dt(object->problem_);
  const double dx = g1.Dx(object->problem_);
  object->model_.EstimateK1(f1, f2, dt);
  object->model_.EstimateK2(f1, f3, dx);
  object->value_ = f1;
  object->RefreshDerivedState();
  return ResultObjectPtr(std::move(object));
}

numeric::PdeGrid PdeResultObject::NextRefinementGrid() const {
  const double dt = grid_.Dt(problem_);
  const double dx = grid_.Dx(problem_);
  const numeric::StepAxis axis = model_.PreferredAxis(dt, dx);
  numeric::PdeGrid next = grid_;
  if (axis == numeric::StepAxis::kTime) {
    next.t_steps *= 2;
  } else {
    next.x_intervals *= 2;
  }
  return next;
}

void PdeResultObject::RefreshDerivedState() {
  const double dt = grid_.Dt(problem_);
  const double dx = grid_.Dx(problem_);
  bounds_ = model_.BoundsFor(value_, dt, dx);
  const numeric::StepAxis axis = model_.PreferredAxis(dt, dx);
  est_bounds_ = model_.PredictBoundsAfterHalving(value_, dt, dx, axis);
  const numeric::PdeGrid next = NextRefinementGrid();
  // The initial extrapolation probes are memoized, so the first halvings can
  // be free; estCPU must reflect that or the greedy strategies over-price
  // them.
  const bool cached =
      solve_cache_.contains({next.x_intervals, next.t_steps});
  est_cost_ = cached ? 0 : next.MeshEntries();
}

std::string PdeResultObject::batch_key() const {
  if (iterations() >= options_.max_iterations) return {};
  const numeric::PdeGrid next = NextRefinementGrid();
  // A memoized next solve is (nearly) free in the scalar path; keep it out
  // of kernel batches, which would re-pay for it.
  if (solve_cache_.contains({next.x_intervals, next.t_steps})) return {};
  return "pde:" + std::to_string(next.x_intervals) + ":" +
         std::to_string(next.t_steps);
}

std::vector<Status> PdeResultObject::IterateGroup(
    const std::vector<PdeResultObject*>& objects,
    std::vector<std::uint64_t>* spent) {
  const std::size_t k = objects.size();
  std::vector<Status> statuses(k, Status::OK());
  spent->assign(k, 0);
  if (k == 0) return statuses;

  const std::string key = objects[0]->batch_key();
  WorkMeter* meter = objects[0]->meter();
  for (const PdeResultObject* object : objects) {
    if (key.empty() || object->batch_key() != key ||
        object->meter() != meter) {
      statuses.assign(k, Status::InvalidArgument(
                             "PDE iterate group needs one shared batch_key "
                             "and meter"));
      return statuses;
    }
  }

  const bool calibrate = obs::Enabled() && meter != nullptr;
  const numeric::PdeGrid next = objects[0]->NextRefinementGrid();
  std::vector<const numeric::Pde1dProblem*> problems(k);
  std::vector<double> queries(k);
  std::vector<double> dts(k), dxs(k);
  std::vector<numeric::StepAxis> axes(k);
  std::vector<Bounds> est_before(k, Bounds(0.0, 0.0));
  std::vector<double> est_cost_before(k, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    PdeResultObject* object = objects[i];
    if (calibrate) {
      est_before[i] = object->est_bounds();
      est_cost_before[i] = static_cast<double>(object->est_cost());
    }
    object->ChargeStateOverhead();
    problems[i] = &object->problem_;
    queries[i] = object->query_x_;
    dts[i] = object->grid_.Dt(object->problem_);
    dxs[i] = object->grid_.Dx(object->problem_);
    axes[i] = object->model_.PreferredAxis(dts[i], dxs[i]);
  }

  numeric::BatchKernelReport report;
  std::vector<double> values;
  const Status solve_status = numeric::SolvePdeBatch(
      problems, next, queries, meter, &values, &report);
  if (!solve_status.ok()) {
    for (std::size_t i = 0; i < k; ++i) {
      statuses[i] = solve_status;
      (*spent)[i] = 2;  // the state overhead already charged
    }
    return statuses;
  }

  const std::uint64_t mesh = next.MeshEntries();
  for (std::size_t i = 0; i < k; ++i) {
    PdeResultObject* object = objects[i];
    (*spent)[i] = 2;
    if (!report.ok(i)) {
      statuses[i] = Status::NumericError(
          "PDE batch lane failed at time step " +
          std::to_string(report.failed_row[i]));
      continue;
    }
    (*spent)[i] += mesh;
    const double new_value = values[i];
    object->solve_cache_.emplace(
        std::make_pair(next.x_intervals, next.t_steps), new_value);
    if (axes[i] == numeric::StepAxis::kTime) {
      object->model_.EstimateK1(object->value_, new_value, dts[i]);
    } else {
      object->model_.EstimateK2(object->value_, new_value, dxs[i]);
    }
    object->grid_ = next;
    object->value_ = new_value;
    object->BumpIterations();
    object->RefreshDerivedState();
    if (calibrate) {
      const Bounds after = object->bounds();
      obs::RecordEstimatorSample(obs::SolverKind::kPde, est_cost_before[i],
                                 est_before[i].lo, est_before[i].hi,
                                 static_cast<double>((*spent)[i]), after.lo,
                                 after.hi);
    }
  }
  return statuses;
}

Status PdeResultObject::Iterate() {
  if (iterations() >= options_.max_iterations) {
    return Status::ResourceExhausted("PDE result object at max_iterations");
  }
  const CalibrationProbe probe(obs::SolverKind::kPde, *this, meter());
  ChargeStateOverhead();

  const double dt = grid_.Dt(problem_);
  const double dx = grid_.Dx(problem_);
  const numeric::StepAxis axis = model_.PreferredAxis(dt, dx);

  numeric::PdeGrid next = grid_;
  if (axis == numeric::StepAxis::kTime) {
    next.t_steps *= 2;
  } else {
    next.x_intervals *= 2;
  }

  const auto solved = SolveAt(next);
  if (!solved.ok()) return solved.status();
  const double new_value = solved.value();

  // Refresh the coefficient on the axis just halved (Section 4.1: "updates
  // the error bounds by updating the error formula").
  if (axis == numeric::StepAxis::kTime) {
    model_.EstimateK1(value_, new_value, dt);
  } else {
    model_.EstimateK2(value_, new_value, dx);
  }

  grid_ = next;
  value_ = new_value;
  BumpIterations();
  RefreshDerivedState();
  probe.Commit();
  return Status::OK();
}

Result<ResultObjectPtr> PdeFunction::Invoke(const std::vector<double>& args,
                                            WorkMeter* meter) const {
  if (static_cast<int>(args.size()) != arity_) {
    return Status::InvalidArgument(
        name_ + " expects " + std::to_string(arity_) + " args, got " +
        std::to_string(args.size()));
  }
  VAOLIB_ASSIGN_OR_RETURN(auto built, builder_(args));
  return PdeResultObject::Create(std::move(built.first), built.second,
                                 options_, meter);
}

}  // namespace vaolib::vao
