// Copyright 2026 The vaolib Authors.
// The iterative UDF interface of Section 3.2 -- the paper's core abstraction.
//
// Instead of a single value, a variable-accuracy UDF call returns a
// ResultObject carrying:
//   * bounds()    -- the H and L error bounds on the true function value,
//   * Iterate()   -- spend more CPU to tighten the bounds,
//   * min_width() -- the width below which the answer is "as accurate as
//                    possible" and no further Iterate() calls should be made,
//   * est_cost()/est_bounds() -- the estCPU/estL/estH members that aggregate
//                    VAOs use to choose among candidate iterations.
//
// Concrete result objects (PDE, ODE, integral, root, shifted) live in
// sibling headers. All cost accounting flows through the WorkMeter supplied
// when the object is created.

#ifndef VAOLIB_VAO_RESULT_OBJECT_H_
#define VAOLIB_VAO_RESULT_OBJECT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bounds.h"
#include "common/result.h"
#include "common/status.h"
#include "common/work_meter.h"

namespace vaolib::vao {

/// \brief A refinable function result: the paper's result object.
///
/// Implementations must keep bounds() sound (always containing the true
/// function value) and should keep widths non-increasing across Iterate()
/// calls. est_bounds()/est_cost() are best-effort predictions and carry no
/// soundness guarantee (Section 3.2).
class ResultObject {
 public:
  virtual ~ResultObject() = default;

  /// Current error bounds [L, H] on the function value.
  virtual Bounds bounds() const = 0;

  /// The paper's L member.
  double lower() const { return bounds().lo; }

  /// The paper's H member.
  double upper() const { return bounds().hi; }

  /// Width floor below which no further Iterate() calls should be made.
  virtual double min_width() const = 0;

  /// Refines the bounds at the cost of more CPU cycles (charged to the
  /// WorkMeter supplied at creation).
  ///
  /// \return ResourceExhausted when the implementation's refinement limit is
  /// reached, NumericError on solver breakdown; otherwise OK.
  virtual Status Iterate() = 0;

  /// Estimated work units of the next Iterate() call (the paper's estCPU).
  virtual std::uint64_t est_cost() const = 0;

  /// Estimated bounds after the next Iterate() (the paper's estL/estH).
  virtual Bounds est_bounds() const = 0;

  /// Number of Iterate() calls made so far.
  virtual int iterations() const = 0;

  /// Work units a traditional one-shot solver would charge to reach the
  /// current accuracy (the paper's cost_trad of Section 3.2): the final-grid
  /// solve for finite-difference solvers, the cumulative evaluations for
  /// integrators and root solvers. Used to build calibrated black-box
  /// baselines exactly the way Section 6 does.
  virtual std::uint64_t traditional_cost() const = 0;

  /// True when bounds().Width() < min_width(): the stopping condition of
  /// Section 3.2. Operators must not call Iterate() past this point.
  bool AtStoppingCondition() const { return bounds().Width() < min_width(); }

  /// Batch-compatibility key for the next Iterate(). Two objects whose keys
  /// are equal and non-empty can have their next refinement executed
  /// together by one SoA batch kernel (vao::IterateBatch) with results
  /// bit-identical to calling Iterate() on each. The empty key (the
  /// default) means "not batchable right now" -- at a refinement cap, about
  /// to hit a memoized solve, or simply not backed by a batch kernel.
  virtual std::string batch_key() const { return {}; }

  /// Index into obs::SolverKind of the calibrated solver family this
  /// object's estimates come from, or -1 (the default) for objects outside
  /// those families (synthetic, custom black boxes). The calibrated
  /// scoring path uses it to pick the right CalibrationSnapshot bias for
  /// a candidate; wrappers must forward it.
  virtual int calibration_kind() const { return -1; }

  /// Correlation-group key for sentinel re-ranking: objects sharing a
  /// non-empty key are expected to move together (same rate tick, same
  /// model family), so observations on a few members predict the rest.
  /// Defaults to batch_key() -- lockstep-batchable objects are correlated
  /// by construction -- but can be broader: correlated objects need not be
  /// kernel-batchable. Wrappers must forward it.
  virtual std::string correlation_key() const { return batch_key(); }
};

using ResultObjectPtr = std::unique_ptr<ResultObject>;

/// \brief Convenience base holding the meter pointer and iteration count.
class ResultObjectBase : public ResultObject {
 public:
  int iterations() const override { return iterations_; }

 protected:
  explicit ResultObjectBase(WorkMeter* meter) : meter_(meter) {}

  /// Charges \p units of \p kind to the meter if one is attached.
  void Charge(WorkKind kind, std::uint64_t units) const {
    if (meter_ != nullptr) meter_->Charge(kind, units);
  }

  /// Charges the per-iteration get/store state overhead of the cost model
  /// (Section 3.2); a handful of units, negligible by design.
  void ChargeStateOverhead() const {
    Charge(WorkKind::kGetState, 1);
    Charge(WorkKind::kStoreState, 1);
  }

  WorkMeter* meter() const { return meter_; }
  void BumpIterations() { ++iterations_; }

 private:
  WorkMeter* meter_;
  int iterations_ = 0;
};

/// \brief A variable-accuracy UDF: maps an argument vector to a fresh
/// ResultObject whose work is charged to \p meter. This is the interface the
/// query engine registers and VAO operators invoke.
class VariableAccuracyFunction {
 public:
  virtual ~VariableAccuracyFunction() = default;

  /// Human-readable function name (for plans and diagnostics).
  virtual const std::string& name() const = 0;

  /// Number of arguments Invoke() expects.
  virtual int arity() const = 0;

  /// Starts a new evaluation of the function at \p args. The returned object
  /// begins with the coarsest bounds the implementation supports.
  virtual Result<ResultObjectPtr> Invoke(const std::vector<double>& args,
                                         WorkMeter* meter) const = 0;
};

}  // namespace vaolib::vao

#endif  // VAOLIB_VAO_RESULT_OBJECT_H_
