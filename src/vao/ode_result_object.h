// Copyright 2026 The vaolib Authors.
// OdeResultObject: the Section 4.2 adaptation of a finite-difference ODE
// boundary-value solver to the VAO interface. The grid has one dimension, so
// the extrapolation model is the one-term specialization err ~= K2 * dx^2;
// each Iterate() doubles the interval count.

#ifndef VAOLIB_VAO_ODE_RESULT_OBJECT_H_
#define VAOLIB_VAO_ODE_RESULT_OBJECT_H_

#include <functional>
#include <string>
#include <utility>

#include "numeric/ode_solver.h"
#include "obs/metrics.h"
#include "vao/result_object.h"

namespace vaolib::vao {

/// \brief Tuning knobs for ODE result objects.
struct OdeResultOptions {
  int initial_intervals = 4;
  double min_width = 1e-8;
  double safety_factor = 3.0;
  int max_iterations = 40;
};

/// \brief Result object for w(query_x) of a two-point boundary-value ODE.
class OdeResultObject : public ResultObjectBase {
 public:
  /// Solves at the initial grid and its halving to seed K2; both solves are
  /// charged to \p meter.
  static Result<ResultObjectPtr> Create(numeric::OdeBvpProblem problem,
                                        double query_x,
                                        const OdeResultOptions& options,
                                        WorkMeter* meter);

  Bounds bounds() const override { return bounds_; }
  double min_width() const override { return options_.min_width; }
  Status Iterate() override;
  std::uint64_t est_cost() const override { return est_cost_; }
  Bounds est_bounds() const override { return est_bounds_; }
  int calibration_kind() const override {
    return static_cast<int>(obs::SolverKind::kOde);
  }

  std::uint64_t traditional_cost() const override {
    return static_cast<std::uint64_t>(intervals_ - 1);
  }

  /// Interval count backing the current value.
  int current_intervals() const { return intervals_; }

  /// Fitted error coefficient K2 (exposed for tests).
  double k2() const { return k2_; }

 private:
  OdeResultObject(numeric::OdeBvpProblem problem, double query_x,
                  const OdeResultOptions& options, WorkMeter* meter);

  void RefreshDerivedState();
  double Dx() const { return (problem_.b - problem_.a) / intervals_; }

  numeric::OdeBvpProblem problem_;
  double query_x_;
  OdeResultOptions options_;

  int intervals_ = 0;
  double value_ = 0.0;
  double k2_ = 0.0;
  Bounds bounds_;
  Bounds est_bounds_;
  std::uint64_t est_cost_ = 0;
};

/// \brief VariableAccuracyFunction producing OdeResultObjects.
class OdeFunction : public VariableAccuracyFunction {
 public:
  using ProblemBuilder =
      std::function<Result<std::pair<numeric::OdeBvpProblem, double>>(
          const std::vector<double>& args)>;

  OdeFunction(std::string name, int arity, ProblemBuilder builder,
              OdeResultOptions options)
      : name_(std::move(name)),
        arity_(arity),
        builder_(std::move(builder)),
        options_(options) {}

  const std::string& name() const override { return name_; }
  int arity() const override { return arity_; }
  Result<ResultObjectPtr> Invoke(const std::vector<double>& args,
                                 WorkMeter* meter) const override;

 private:
  std::string name_;
  int arity_;
  ProblemBuilder builder_;
  OdeResultOptions options_;
};

}  // namespace vaolib::vao

#endif  // VAOLIB_VAO_ODE_RESULT_OBJECT_H_
