#include "vao/ode_result_object.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "vao/calibration_probe.h"

namespace vaolib::vao {

namespace {

// Conservative one-term bounds: A ~= value - K2*dx^2, inflated by safety.
Bounds OneTermBounds(double value, double k2, double dx, double safety) {
  const double err = k2 * dx * dx;
  return Bounds(value - safety * std::max(err, 0.0),
                value - safety * std::min(err, 0.0));
}

}  // namespace

OdeResultObject::OdeResultObject(numeric::OdeBvpProblem problem,
                                 double query_x,
                                 const OdeResultOptions& options,
                                 WorkMeter* meter)
    : ResultObjectBase(meter),
      problem_(std::move(problem)),
      query_x_(query_x),
      options_(options) {}

Result<ResultObjectPtr> OdeResultObject::Create(numeric::OdeBvpProblem problem,
                                                double query_x,
                                                const OdeResultOptions& options,
                                                WorkMeter* meter) {
  if (options.min_width <= 0.0) {
    return Status::InvalidArgument("min_width must be > 0");
  }
  if (options.safety_factor < 1.0) {
    return Status::InvalidArgument("safety_factor must be >= 1");
  }
  if (options.initial_intervals < 2) {
    return Status::InvalidArgument("initial_intervals must be >= 2");
  }
  auto object = std::unique_ptr<OdeResultObject>(
      new OdeResultObject(std::move(problem), query_x, options, meter));

  // F1 at dx*, F2 at dx*/2 seed K2 = (4/3)(F1 - F2)/dx^2 (error O(dx^2):
  // F1 - F2 = K2 dx^2 - K2 dx^2/4 = (3/4) K2 dx^2).
  const int n1 = options.initial_intervals;
  VAOLIB_ASSIGN_OR_RETURN(
      const double f1,
      numeric::SolveOdeBvp(object->problem_, n1, query_x, meter));
  VAOLIB_ASSIGN_OR_RETURN(
      const double f2,
      numeric::SolveOdeBvp(object->problem_, 2 * n1, query_x, meter));

  const double dx1 = (object->problem_.b - object->problem_.a) / n1;
  object->k2_ = (4.0 / 3.0) * (f1 - f2) / (dx1 * dx1);
  object->intervals_ = 2 * n1;
  object->value_ = f2;
  object->RefreshDerivedState();
  return ResultObjectPtr(std::move(object));
}

void OdeResultObject::RefreshDerivedState() {
  const double dx = Dx();
  bounds_ = OneTermBounds(value_, k2_, dx, options_.safety_factor);
  const double predicted = value_ - 0.75 * k2_ * dx * dx;
  est_bounds_ =
      OneTermBounds(predicted, k2_, dx * 0.5, options_.safety_factor);
  est_cost_ = static_cast<std::uint64_t>(2 * intervals_ - 1);
}

Status OdeResultObject::Iterate() {
  if (iterations() >= options_.max_iterations) {
    return Status::ResourceExhausted("ODE result object at max_iterations");
  }
  const CalibrationProbe probe(obs::SolverKind::kOde, *this, meter());
  ChargeStateOverhead();

  const double dx = Dx();
  const int next_intervals = intervals_ * 2;
  const auto solved =
      numeric::SolveOdeBvp(problem_, next_intervals, query_x_, meter());
  if (!solved.ok()) return solved.status();

  k2_ = (4.0 / 3.0) * (value_ - solved.value()) / (dx * dx);
  intervals_ = next_intervals;
  value_ = solved.value();
  BumpIterations();
  RefreshDerivedState();
  probe.Commit();
  return Status::OK();
}

Result<ResultObjectPtr> OdeFunction::Invoke(const std::vector<double>& args,
                                            WorkMeter* meter) const {
  if (static_cast<int>(args.size()) != arity_) {
    return Status::InvalidArgument(
        name_ + " expects " + std::to_string(arity_) + " args, got " +
        std::to_string(args.size()));
  }
  VAOLIB_ASSIGN_OR_RETURN(auto built, builder_(args));
  return OdeResultObject::Create(std::move(built.first), built.second,
                                 options_, meter);
}

}  // namespace vaolib::vao
