// Copyright 2026 The vaolib Authors.
// IvpResultObject: the RK4 initial-value ODE solver behind the VAO
// interface. One-term Richardson model for an O(h^4) scheme:
//   F(h) = A + K h^4,  so  K = (16/15) (F(h) - F(h/2)) / h^4,
// with each Iterate() halving the step (doubling the work).

#ifndef VAOLIB_VAO_IVP_RESULT_OBJECT_H_
#define VAOLIB_VAO_IVP_RESULT_OBJECT_H_

#include <functional>
#include <string>
#include <utility>

#include "numeric/ode_ivp.h"
#include "obs/metrics.h"
#include "vao/result_object.h"

namespace vaolib::vao {

/// \brief Tuning knobs for IVP result objects.
struct IvpResultOptions {
  int initial_steps = 4;
  double min_width = 1e-9;
  double safety_factor = 3.0;
  int max_iterations = 40;
};

/// \brief Result object for y(t1) of an initial-value ODE.
class IvpResultObject : public ResultObjectBase {
 public:
  /// Solves at the initial step count and its halving to seed K; both
  /// solves are charged to \p meter.
  static Result<ResultObjectPtr> Create(numeric::OdeIvpProblem problem,
                                        const IvpResultOptions& options,
                                        WorkMeter* meter);

  Bounds bounds() const override { return bounds_; }
  double min_width() const override { return options_.min_width; }
  Status Iterate() override;
  std::uint64_t est_cost() const override { return est_cost_; }
  Bounds est_bounds() const override { return est_bounds_; }
  int calibration_kind() const override {
    return static_cast<int>(obs::SolverKind::kIvp);
  }

  std::uint64_t traditional_cost() const override {
    return static_cast<std::uint64_t>(steps_) * 4;
  }

  /// "ivp:<steps>" (the next Iterate() doubles it); empty at max_iterations.
  std::string batch_key() const override;

  /// Runs one Iterate() on every object through the lockstep RK4 kernel.
  /// Preconditions: all objects share the same non-empty batch_key() and the
  /// same WorkMeter. Per-object results are bit-identical to scalar
  /// Iterate(); \p spent receives each object's work-unit share, summing
  /// exactly to what the shared meter was charged.
  static std::vector<Status> IterateGroup(
      const std::vector<IvpResultObject*>& objects,
      std::vector<std::uint64_t>* spent);

  /// Step count backing the current value.
  int current_steps() const { return steps_; }

  /// Fitted h^4 error coefficient (exposed for tests).
  double k() const { return k_; }

 private:
  IvpResultObject(numeric::OdeIvpProblem problem,
                  const IvpResultOptions& options, WorkMeter* meter);

  void RefreshDerivedState();
  double StepSize() const {
    return (problem_.t1 - problem_.t0) / steps_;
  }

  numeric::OdeIvpProblem problem_;
  IvpResultOptions options_;

  int steps_ = 0;
  double value_ = 0.0;
  double k_ = 0.0;
  Bounds bounds_;
  Bounds est_bounds_;
  std::uint64_t est_cost_ = 0;
};

/// \brief VariableAccuracyFunction producing IvpResultObjects.
class IvpFunction : public VariableAccuracyFunction {
 public:
  using ProblemBuilder =
      std::function<Result<numeric::OdeIvpProblem>(
          const std::vector<double>& args)>;

  IvpFunction(std::string name, int arity, ProblemBuilder builder,
              IvpResultOptions options)
      : name_(std::move(name)),
        arity_(arity),
        builder_(std::move(builder)),
        options_(options) {}

  const std::string& name() const override { return name_; }
  int arity() const override { return arity_; }
  Result<ResultObjectPtr> Invoke(const std::vector<double>& args,
                                 WorkMeter* meter) const override;

 private:
  std::string name_;
  int arity_;
  ProblemBuilder builder_;
  IvpResultOptions options_;
};

}  // namespace vaolib::vao

#endif  // VAOLIB_VAO_IVP_RESULT_OBJECT_H_
