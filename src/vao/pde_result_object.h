// Copyright 2026 The vaolib Authors.
// PdeResultObject: the Section 4.1 adaptation of a finite-difference PDE
// solver to the iterative VAO interface.
//
// Creation runs the solver at a coarse grid (dt*, dx*) plus the two
// half-step probes (dt*/2, dx*) and (dt*, dx*/2) needed to estimate the
// extrapolation coefficients K1 and K2; bounds follow from the Richardson
// model with the paper's safety factor. Each Iterate() halves whichever step
// size the error model says removes more error, re-solves, refreshes the
// matching coefficient, and updates bounds and the est* predictions. Work
// roughly doubles per iteration, giving the paper's
// sum-of-iterations ~= 2 * cost_trad property.

#ifndef VAOLIB_VAO_PDE_RESULT_OBJECT_H_
#define VAOLIB_VAO_PDE_RESULT_OBJECT_H_

#include <map>
#include <utility>

#include "numeric/pde_solver.h"
#include "numeric/richardson.h"
#include "obs/metrics.h"
#include "vao/result_object.h"

namespace vaolib::vao {

/// \brief Tuning knobs for PDE result objects.
struct PdeResultOptions {
  numeric::PdeGrid initial_grid{8, 8};
  double min_width = 0.01;      ///< the paper's $.01 for bond prices
  double safety_factor = 3.0;   ///< Richardson inflation (paper uses 3)
  int max_iterations = 40;      ///< refinement cap (grid doubles per step)
};

/// \brief Result object for a parabolic PDE solution F(query_x, 0).
class PdeResultObject : public ResultObjectBase {
 public:
  /// Solves the initial coarse grid and the two half-step probes, charging
  /// all three solves to \p meter.
  static Result<ResultObjectPtr> Create(numeric::Pde1dProblem problem,
                                        double query_x,
                                        const PdeResultOptions& options,
                                        WorkMeter* meter);

  Bounds bounds() const override { return bounds_; }
  double min_width() const override { return options_.min_width; }
  Status Iterate() override;
  std::uint64_t est_cost() const override { return est_cost_; }
  Bounds est_bounds() const override { return est_bounds_; }
  int calibration_kind() const override {
    return static_cast<int>(obs::SolverKind::kPde);
  }

  std::uint64_t traditional_cost() const override {
    return grid_.MeshEntries();
  }

  /// "pde:<nx>:<nt>" of the next refinement grid; empty at max_iterations or
  /// when the next solve is already memoized (batching a free solve would
  /// pay for it).
  std::string batch_key() const override;

  /// Runs one Iterate() on every object through the lockstep PDE kernel.
  /// Preconditions: all objects share the same non-empty batch_key() and the
  /// same WorkMeter. Per-object results are bit-identical to scalar
  /// Iterate(); \p spent receives each object's work-unit share, summing
  /// exactly to what the shared meter was charged.
  static std::vector<Status> IterateGroup(
      const std::vector<PdeResultObject*>& objects,
      std::vector<std::uint64_t>* spent);

  /// Grid currently backing the bounds (exposed for calibration/tests).
  const numeric::PdeGrid& current_grid() const { return grid_; }

  /// Raw solver output at the current grid (centre of the error model).
  double current_value() const { return value_; }

  /// The fitted extrapolation model (exposed for tests/ablations).
  const numeric::RichardsonModel& model() const { return model_; }

 private:
  PdeResultObject(numeric::Pde1dProblem problem, double query_x,
                  const PdeResultOptions& options, WorkMeter* meter);

  /// Solves at \p grid, memoizing so a grid is never paid for twice.
  Result<double> SolveAt(const numeric::PdeGrid& grid);

  /// Grid the next Iterate() will solve (preferred axis halved).
  numeric::PdeGrid NextRefinementGrid() const;

  /// Refreshes bounds_, est_bounds_, est_cost_ from the model and grid.
  void RefreshDerivedState();

  numeric::Pde1dProblem problem_;
  double query_x_;
  PdeResultOptions options_;
  numeric::RichardsonModel model_;

  numeric::PdeGrid grid_;  ///< grid of the current value
  double value_ = 0.0;
  Bounds bounds_;
  Bounds est_bounds_;
  std::uint64_t est_cost_ = 0;

  /// Memoized solves keyed by (x_intervals, t_steps).
  std::map<std::pair<int, int>, double> solve_cache_;
};

/// \brief A VariableAccuracyFunction producing PdeResultObjects. The problem
/// builder maps the argument vector to a PDE problem and query point, which
/// is how the bond model binds (rate, bond) pairs to PDE instances.
class PdeFunction : public VariableAccuracyFunction {
 public:
  /// Builds a PDE problem plus query abscissa from UDF arguments.
  using ProblemBuilder =
      std::function<Result<std::pair<numeric::Pde1dProblem, double>>(
          const std::vector<double>& args)>;

  PdeFunction(std::string name, int arity, ProblemBuilder builder,
              PdeResultOptions options)
      : name_(std::move(name)),
        arity_(arity),
        builder_(std::move(builder)),
        options_(options) {}

  const std::string& name() const override { return name_; }
  int arity() const override { return arity_; }

  Result<ResultObjectPtr> Invoke(const std::vector<double>& args,
                                 WorkMeter* meter) const override;

  const PdeResultOptions& options() const { return options_; }

 private:
  std::string name_;
  int arity_;
  ProblemBuilder builder_;
  PdeResultOptions options_;
};

}  // namespace vaolib::vao

#endif  // VAOLIB_VAO_PDE_RESULT_OBJECT_H_
