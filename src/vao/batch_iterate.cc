#include "vao/batch_iterate.h"

#include <map>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "vao/integral_result_object.h"
#include "vao/ivp_result_object.h"
#include "vao/pde_result_object.h"
#include "vao/shifted_result_object.h"

namespace vaolib::vao {

namespace {

void ObserveBatchSize(std::size_t size) {
  if (!obs::Enabled()) return;
  static obs::Histogram* histogram = obs::MetricsRegistry::Global().GetHistogram(
      "vaolib_batch_size", {}, {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0});
  histogram->Observe(static_cast<double>(size));
}

// A shifted wrapper refines through its inner object; kernels dispatch on
// the unwrapped type.
ResultObject* Unwrap(ResultObject* object) {
  if (auto* shifted = dynamic_cast<ShiftedResultObject*>(object)) {
    return shifted->mutable_inner();
  }
  return object;
}

// Casts every member of the group to T; empty on the first mismatch.
template <typename T>
std::vector<T*> CastGroup(const std::vector<ResultObject*>& unwrapped) {
  std::vector<T*> cast;
  cast.reserve(unwrapped.size());
  for (ResultObject* object : unwrapped) {
    T* typed = dynamic_cast<T*>(object);
    if (typed == nullptr) return {};
    cast.push_back(typed);
  }
  return cast;
}

// One object through the scalar path, spend bracketed by meter deltas.
void IterateScalar(ResultObject* object, WorkMeter* meter,
                   std::size_t index, BatchIterateOutcome* outcome) {
  const std::uint64_t before = meter != nullptr ? meter->Total() : 0;
  outcome->statuses[index] = object->Iterate();
  outcome->spent[index] = meter != nullptr ? meter->Total() - before : 0;
}

}  // namespace

BatchIterateOutcome IterateBatch(const std::vector<ResultObject*>& objects,
                                 WorkMeter* meter) {
  BatchIterateOutcome outcome;
  const std::size_t n = objects.size();
  outcome.statuses.assign(n, Status::OK());
  outcome.spent.assign(n, 0);
  if (n == 0) return outcome;

  // Group indices by batch_key, preserving input order inside each group.
  // std::map keeps dispatch order deterministic across runs.
  std::map<std::string, std::vector<std::size_t>> groups;
  std::vector<std::size_t> singles;
  for (std::size_t i = 0; i < n; ++i) {
    const std::string key = objects[i]->batch_key();
    if (key.empty()) {
      singles.push_back(i);
    } else {
      groups[key].push_back(i);
    }
  }

  for (auto& [key, members] : groups) {
    if (members.size() < 2) {
      singles.insert(singles.end(), members.begin(), members.end());
      continue;
    }
    std::vector<ResultObject*> unwrapped;
    unwrapped.reserve(members.size());
    for (const std::size_t i : members) unwrapped.push_back(Unwrap(objects[i]));

    std::vector<Status> statuses;
    std::vector<std::uint64_t> spent;
    bool dispatched = true;
    {
      const obs::ScopedSpan span("batch", "kernel_group",
                                 obs::TraceDetail::kFine);
      if (auto pde = CastGroup<PdeResultObject>(unwrapped); !pde.empty()) {
        statuses = PdeResultObject::IterateGroup(pde, &spent);
      } else if (auto ivp = CastGroup<IvpResultObject>(unwrapped);
                 !ivp.empty()) {
        statuses = IvpResultObject::IterateGroup(ivp, &spent);
      } else if (auto intg = CastGroup<IntegralResultObject>(unwrapped);
                 !intg.empty()) {
        statuses = IntegralResultObject::IterateGroup(intg, &spent);
      } else {
        dispatched = false;
      }
    }
    if (!dispatched) {
      // Same key but no kernel behind it (custom object types): scalar path.
      singles.insert(singles.end(), members.begin(), members.end());
      continue;
    }
    ObserveBatchSize(members.size());
    ++outcome.kernel_batches;
    outcome.kernel_objects += members.size();
    for (std::size_t j = 0; j < members.size(); ++j) {
      outcome.statuses[members[j]] = statuses[j];
      outcome.spent[members[j]] = spent[j];
    }
  }

  for (const std::size_t i : singles) {
    ObserveBatchSize(1);
    IterateScalar(objects[i], meter, i, &outcome);
  }
  return outcome;
}

}  // namespace vaolib::vao
