// Copyright 2026 The vaolib Authors.
// Pde2dResultObject: the two-factor (ADI) PDE solver behind the VAO
// interface -- the Section 4.1 adaptation extended with a third error term
// for the second space dimension. Creation runs the coarse grid plus three
// half-step probes (time, x, y); each Iterate() halves whichever axis the
// error model says removes the most error per cycle.

#ifndef VAOLIB_VAO_PDE2D_RESULT_OBJECT_H_
#define VAOLIB_VAO_PDE2D_RESULT_OBJECT_H_

#include <map>
#include <tuple>
#include <utility>

#include "numeric/pde2d_solver.h"
#include "numeric/richardson.h"
#include "obs/metrics.h"
#include "vao/result_object.h"

namespace vaolib::vao {

/// \brief Tuning knobs for two-factor PDE result objects.
struct Pde2dResultOptions {
  numeric::Pde2dGrid initial_grid{8, 8, 8};
  double min_width = 0.01;
  double safety_factor = 3.0;
  int max_iterations = 40;
};

/// \brief Result object for a two-factor PDE solution F(qx, qy, 0).
class Pde2dResultObject : public ResultObjectBase {
 public:
  /// Solves the coarse grid plus the (dt/2), (dx/2), (dy/2) probes (all
  /// charged to \p meter).
  static Result<ResultObjectPtr> Create(numeric::Pde2dProblem problem,
                                        double query_x, double query_y,
                                        const Pde2dResultOptions& options,
                                        WorkMeter* meter);

  Bounds bounds() const override { return bounds_; }
  double min_width() const override { return options_.min_width; }
  Status Iterate() override;
  std::uint64_t est_cost() const override { return est_cost_; }
  Bounds est_bounds() const override { return est_bounds_; }
  int calibration_kind() const override {
    return static_cast<int>(obs::SolverKind::kPde2d);
  }

  std::uint64_t traditional_cost() const override {
    return grid_.MeshEntries();
  }

  const numeric::Pde2dGrid& current_grid() const { return grid_; }
  const numeric::Richardson3Model& model() const { return model_; }

 private:
  Pde2dResultObject(numeric::Pde2dProblem problem, double query_x,
                    double query_y, const Pde2dResultOptions& options,
                    WorkMeter* meter);

  Result<double> SolveAt(const numeric::Pde2dGrid& grid);
  void RefreshDerivedState();

  numeric::Pde2dProblem problem_;
  double query_x_;
  double query_y_;
  Pde2dResultOptions options_;
  numeric::Richardson3Model model_;

  numeric::Pde2dGrid grid_;
  double value_ = 0.0;
  Bounds bounds_;
  Bounds est_bounds_;
  std::uint64_t est_cost_ = 0;

  std::map<std::tuple<int, int, int>, double> solve_cache_;
};

/// \brief VariableAccuracyFunction producing Pde2dResultObjects.
class Pde2dFunction : public VariableAccuracyFunction {
 public:
  /// Maps UDF args to (problem, query_x, query_y).
  using ProblemBuilder = std::function<
      Result<std::tuple<numeric::Pde2dProblem, double, double>>(
          const std::vector<double>& args)>;

  Pde2dFunction(std::string name, int arity, ProblemBuilder builder,
                Pde2dResultOptions options)
      : name_(std::move(name)),
        arity_(arity),
        builder_(std::move(builder)),
        options_(options) {}

  const std::string& name() const override { return name_; }
  int arity() const override { return arity_; }
  Result<ResultObjectPtr> Invoke(const std::vector<double>& args,
                                 WorkMeter* meter) const override;

 private:
  std::string name_;
  int arity_;
  ProblemBuilder builder_;
  Pde2dResultOptions options_;
};

}  // namespace vaolib::vao

#endif  // VAOLIB_VAO_PDE2D_RESULT_OBJECT_H_
