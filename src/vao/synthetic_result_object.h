// Copyright 2026 The vaolib Authors.
// SyntheticResultObject: a deterministic, cheap ResultObject whose bounds
// shrink geometrically around a hidden true value. Useful for unit-testing
// operators, for microbenchmarking iteration strategies at scale without
// paying solver costs, and as a template for users wrapping their own
// functions into the VAO interface.

#ifndef VAOLIB_VAO_SYNTHETIC_RESULT_OBJECT_H_
#define VAOLIB_VAO_SYNTHETIC_RESULT_OBJECT_H_

#include <algorithm>
#include <cstdint>
#include <string>

#include "vao/result_object.h"

namespace vaolib::vao {

/// \brief Configurable synthetic refinable result.
class SyntheticResultObject : public ResultObject {
 public:
  struct Config {
    double true_value = 0.0;
    double initial_half_width = 10.0;
    /// Width multiplier per iteration (0 < shrink < 1).
    double shrink = 0.5;
    /// Fraction of the interval the true value sits at (0 = at the lower
    /// end, 0.5 = centred, 1 = at the upper end); bounds stay sound for any
    /// value in [0, 1].
    double skew = 0.5;
    double min_width = 0.01;
    std::uint64_t cost_per_iteration = 1;
    /// Work multiplier per iteration (2.0 models PDE-style doubling).
    double cost_growth = 1.0;
    /// When false, est_bounds() deliberately predicts no progress, to
    /// exercise operators' fallback paths.
    bool honest_estimates = true;
    /// Correlation-group key reported by correlation_key() (sentinel
    /// re-ranking); empty = ungrouped. Never used as a batch_key, so
    /// synthetic objects stay out of the SoA kernel dispatch.
    std::string correlation_key;
    WorkMeter* meter = nullptr;
  };

  explicit SyntheticResultObject(const Config& config)
      : config_(config),
        half_width_(config.initial_half_width),
        est_cost_now_(std::max<std::uint64_t>(config.cost_per_iteration, 1)) {}

  Bounds bounds() const override { return BoundsAt(half_width_); }
  double min_width() const override { return config_.min_width; }

  Status Iterate() override {
    ++iterations_;
    if (config_.meter != nullptr) {
      config_.meter->Charge(WorkKind::kExec, est_cost_now_);
    }
    est_cost_now_ = static_cast<std::uint64_t>(
        static_cast<double>(est_cost_now_) * config_.cost_growth);
    if (est_cost_now_ == 0) est_cost_now_ = 1;
    half_width_ *= config_.shrink;
    return Status::OK();
  }

  std::uint64_t est_cost() const override { return est_cost_now_; }

  Bounds est_bounds() const override {
    if (!config_.honest_estimates) return bounds();
    return BoundsAt(half_width_ * config_.shrink);
  }

  int iterations() const override { return iterations_; }

  std::uint64_t traditional_cost() const override { return est_cost_now_; }

  std::string correlation_key() const override {
    return config_.correlation_key;
  }

  double true_value() const { return config_.true_value; }

 private:
  Bounds BoundsAt(double half_width) const {
    // Interval of width 2*half_width positioned so the true value sits at
    // `skew` of the way up; always contains the true value.
    const double width = 2.0 * half_width;
    const double lo = config_.true_value - config_.skew * width;
    return Bounds(lo, lo + width);
  }

  Config config_;
  double half_width_;
  std::uint64_t est_cost_now_;
  int iterations_ = 0;
};

}  // namespace vaolib::vao

#endif  // VAOLIB_VAO_SYNTHETIC_RESULT_OBJECT_H_
