#include "vao/root_result_object.h"

#include <utility>

#include "common/macros.h"
#include "vao/calibration_probe.h"

namespace vaolib::vao {

RootResultObject::RootResultObject(numeric::BracketingRootFinder finder,
                                   const RootResultOptions& options,
                                   WorkMeter* meter)
    : ResultObjectBase(meter),
      finder_(std::make_unique<numeric::BracketingRootFinder>(
          std::move(finder))),
      options_(options) {}

Result<ResultObjectPtr> RootResultObject::Create(
    RootProblem problem, const RootResultOptions& options, WorkMeter* meter) {
  if (options.min_width <= 0.0) {
    return Status::InvalidArgument("min_width must be > 0");
  }
  VAOLIB_ASSIGN_OR_RETURN(
      numeric::BracketingRootFinder finder,
      numeric::BracketingRootFinder::Create(std::move(problem.f), problem.lo,
                                            problem.hi, options.finder,
                                            meter));
  return ResultObjectPtr(
      new RootResultObject(std::move(finder), options, meter));
}

Status RootResultObject::Iterate() {
  if (iterations() >= options_.max_iterations) {
    return Status::ResourceExhausted("root result object at max_iterations");
  }
  const CalibrationProbe probe(obs::SolverKind::kRoot, *this, meter());
  ChargeStateOverhead();
  VAOLIB_RETURN_IF_ERROR(finder_->Step(meter()));
  BumpIterations();
  probe.Commit();
  return Status::OK();
}

Result<ResultObjectPtr> RootFunction::Invoke(const std::vector<double>& args,
                                             WorkMeter* meter) const {
  if (static_cast<int>(args.size()) != arity_) {
    return Status::InvalidArgument(
        name_ + " expects " + std::to_string(arity_) + " args, got " +
        std::to_string(args.size()));
  }
  VAOLIB_ASSIGN_OR_RETURN(RootProblem problem, builder_(args));
  return RootResultObject::Create(std::move(problem), options_, meter);
}

}  // namespace vaolib::vao
