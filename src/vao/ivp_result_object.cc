#include "vao/ivp_result_object.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "vao/calibration_probe.h"

namespace vaolib::vao {

namespace {

// Conservative one-term bounds: A ~= value - K*h^4, inflated by safety.
Bounds FourthOrderBounds(double value, double k, double h, double safety) {
  const double err = k * h * h * h * h;
  return Bounds(value - safety * std::max(err, 0.0),
                value - safety * std::min(err, 0.0));
}

}  // namespace

IvpResultObject::IvpResultObject(numeric::OdeIvpProblem problem,
                                 const IvpResultOptions& options,
                                 WorkMeter* meter)
    : ResultObjectBase(meter),
      problem_(std::move(problem)),
      options_(options) {}

Result<ResultObjectPtr> IvpResultObject::Create(
    numeric::OdeIvpProblem problem, const IvpResultOptions& options,
    WorkMeter* meter) {
  if (options.min_width <= 0.0) {
    return Status::InvalidArgument("min_width must be > 0");
  }
  if (options.safety_factor < 1.0) {
    return Status::InvalidArgument("safety_factor must be >= 1");
  }
  if (options.initial_steps < 1) {
    return Status::InvalidArgument("initial_steps must be >= 1");
  }
  auto object = std::unique_ptr<IvpResultObject>(
      new IvpResultObject(std::move(problem), options, meter));

  // F(h) - F(h/2) = K h^4 (1 - 1/16) = (15/16) K h^4.
  const int n1 = options.initial_steps;
  VAOLIB_ASSIGN_OR_RETURN(const double f1,
                          numeric::SolveOdeIvpRk4(object->problem_, n1,
                                                  meter));
  VAOLIB_ASSIGN_OR_RETURN(const double f2,
                          numeric::SolveOdeIvpRk4(object->problem_, 2 * n1,
                                                  meter));
  const double h1 = (object->problem_.t1 - object->problem_.t0) / n1;
  object->k_ = (16.0 / 15.0) * (f1 - f2) / (h1 * h1 * h1 * h1);
  object->steps_ = 2 * n1;
  object->value_ = f2;
  object->RefreshDerivedState();
  return ResultObjectPtr(std::move(object));
}

void IvpResultObject::RefreshDerivedState() {
  const double h = StepSize();
  bounds_ = FourthOrderBounds(value_, k_, h, options_.safety_factor);
  // Halving removes 15/16 of the modelled error.
  const double predicted = value_ - (15.0 / 16.0) * k_ * h * h * h * h;
  est_bounds_ =
      FourthOrderBounds(predicted, k_, h * 0.5, options_.safety_factor);
  est_cost_ = static_cast<std::uint64_t>(steps_) * 2 * 4;
}

Status IvpResultObject::Iterate() {
  if (iterations() >= options_.max_iterations) {
    return Status::ResourceExhausted("IVP result object at max_iterations");
  }
  const CalibrationProbe probe(obs::SolverKind::kIvp, *this, meter());
  ChargeStateOverhead();

  const double h = StepSize();
  const int next_steps = steps_ * 2;
  const auto solved = numeric::SolveOdeIvpRk4(problem_, next_steps, meter());
  if (!solved.ok()) return solved.status();

  k_ = (16.0 / 15.0) * (value_ - solved.value()) / (h * h * h * h);
  steps_ = next_steps;
  value_ = solved.value();
  BumpIterations();
  RefreshDerivedState();
  probe.Commit();
  return Status::OK();
}

std::string IvpResultObject::batch_key() const {
  if (iterations() >= options_.max_iterations) return {};
  return "ivp:" + std::to_string(steps_);
}

std::vector<Status> IvpResultObject::IterateGroup(
    const std::vector<IvpResultObject*>& objects,
    std::vector<std::uint64_t>* spent) {
  const std::size_t k = objects.size();
  std::vector<Status> statuses(k, Status::OK());
  spent->assign(k, 0);
  if (k == 0) return statuses;

  const std::string key = objects[0]->batch_key();
  WorkMeter* meter = objects[0]->meter();
  for (const IvpResultObject* object : objects) {
    if (key.empty() || object->batch_key() != key ||
        object->meter() != meter) {
      statuses.assign(k, Status::InvalidArgument(
                             "IVP iterate group needs one shared batch_key "
                             "and meter"));
      return statuses;
    }
  }

  const bool calibrate = obs::Enabled() && meter != nullptr;
  const int next_steps = objects[0]->steps_ * 2;
  numeric::OdeIvpBatch batch;
  batch.problems.resize(k);
  std::vector<double> hs(k);
  std::vector<Bounds> est_before(k, Bounds(0.0, 0.0));
  std::vector<double> est_cost_before(k, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    IvpResultObject* object = objects[i];
    if (calibrate) {
      est_before[i] = object->est_bounds();
      est_cost_before[i] = static_cast<double>(object->est_cost());
    }
    object->ChargeStateOverhead();
    batch.problems[i] = object->problem_;
    hs[i] = object->StepSize();
  }

  numeric::BatchKernelReport report;
  std::vector<double> values;
  const Status solve_status =
      numeric::SolveOdeIvpRk4Batch(batch, next_steps, meter, &values, &report);
  if (!solve_status.ok()) {
    for (std::size_t i = 0; i < k; ++i) {
      statuses[i] = solve_status;
      (*spent)[i] = 2;  // the state overhead already charged
    }
    return statuses;
  }

  const std::uint64_t step_cost = static_cast<std::uint64_t>(next_steps) * 4;
  for (std::size_t i = 0; i < k; ++i) {
    IvpResultObject* object = objects[i];
    (*spent)[i] = 2;
    if (!report.ok(i)) {
      statuses[i] = Status::NumericError("RK4 trajectory became non-finite");
      continue;
    }
    (*spent)[i] += step_cost;
    const double h = hs[i];
    object->k_ = (16.0 / 15.0) * (object->value_ - values[i]) /
                 (h * h * h * h);
    object->steps_ = next_steps;
    object->value_ = values[i];
    object->BumpIterations();
    object->RefreshDerivedState();
    if (calibrate) {
      const Bounds after = object->bounds();
      obs::RecordEstimatorSample(obs::SolverKind::kIvp, est_cost_before[i],
                                 est_before[i].lo, est_before[i].hi,
                                 static_cast<double>((*spent)[i]), after.lo,
                                 after.hi);
    }
  }
  return statuses;
}

Result<ResultObjectPtr> IvpFunction::Invoke(const std::vector<double>& args,
                                            WorkMeter* meter) const {
  if (static_cast<int>(args.size()) != arity_) {
    return Status::InvalidArgument(
        name_ + " expects " + std::to_string(arity_) + " args, got " +
        std::to_string(args.size()));
  }
  VAOLIB_ASSIGN_OR_RETURN(numeric::OdeIvpProblem problem, builder_(args));
  return IvpResultObject::Create(std::move(problem), options_, meter);
}

}  // namespace vaolib::vao
