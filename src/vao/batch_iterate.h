// Copyright 2026 The vaolib Authors.
// IterateBatch: the vao-layer entry point of the batch execution tier.
//
// Operators hand it the result objects a strategy picked for one cycle; it
// groups them by batch_key(), dispatches each group of two or more
// compatible objects to the matching lockstep kernel (PDE, RK4, quadrature;
// ShiftedResultObject wrappers are unwrapped first), and iterates the rest
// one by one. Per-object results are bit-identical to calling Iterate() on
// each object, and per-object spends sum exactly to the shared WorkMeter's
// delta, so the accounting invariants and decision traces of the scalar
// path keep holding. Batch sizes are observed in the vaolib_batch_size
// histogram; group dispatches run under a "batch" trace span.

#ifndef VAOLIB_VAO_BATCH_ITERATE_H_
#define VAOLIB_VAO_BATCH_ITERATE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/work_meter.h"
#include "vao/result_object.h"

namespace vaolib::vao {

/// \brief Per-object outcome of one IterateBatch call.
struct BatchIterateOutcome {
  /// Status of each object's Iterate(), in input order.
  std::vector<Status> statuses;
  /// Work units attributable to each object. Sums exactly to the delta of
  /// the meter passed to IterateBatch across the call (when the objects
  /// charge that meter, which operators guarantee).
  std::vector<std::uint64_t> spent;
  /// Number of groups (>= 2 objects) executed by a lockstep kernel.
  std::size_t kernel_batches = 0;
  /// Objects covered by those kernel groups.
  std::size_t kernel_objects = 0;
};

/// \brief Iterates every object once, batching compatible ones through the
/// SoA kernels. \p meter must be the meter the objects charge (used to
/// bracket the objects that fall back to scalar Iterate()); it may be null
/// only if no object charges one, in which case spends of scalar-iterated
/// objects read 0.
BatchIterateOutcome IterateBatch(const std::vector<ResultObject*>& objects,
                                 WorkMeter* meter);

}  // namespace vaolib::vao

#endif  // VAOLIB_VAO_BATCH_ITERATE_H_
