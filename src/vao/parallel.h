// Copyright 2026 The vaolib Authors.
// Parallel helpers for bulk result-object work. The paper notes its models
// are "easily parallelizable" and sizes production deployments in
// processors (Section 6.1); these helpers parallelize the embarrassingly
// parallel parts -- creating result objects for many rows, and converging
// many objects -- across std::thread workers, with per-thread WorkMeters
// merged into the caller's meter so deterministic accounting survives.
//
// Thread-safety requirement: the function's Invoke() must be safe to call
// concurrently (true for the pure solver-backed functions in this library:
// Pde/Pde2d/Ode/Ivp/Integral/Root and the bond models). CachingFunction is
// NOT safe here (single-writer cache); invoke it serially.

#ifndef VAOLIB_VAO_PARALLEL_H_
#define VAOLIB_VAO_PARALLEL_H_

#include <vector>

#include "vao/result_object.h"

namespace vaolib::vao {

/// \brief Invokes \p function on every row of \p rows using up to
/// \p threads workers. Returns the result objects in row order; all work is
/// merged into \p meter (if non-null). threads < 2 falls back to serial.
///
/// \return the first error encountered (remaining rows may be skipped).
Result<std::vector<ResultObjectPtr>> InvokeAll(
    const VariableAccuracyFunction& function,
    const std::vector<std::vector<double>>& rows, int threads,
    WorkMeter* meter);

/// \brief Converges every object to its minWidth using up to \p threads
/// workers (each object is driven by exactly one worker). Note: objects
/// created against a caller meter charge THAT meter from worker threads,
/// which is unsafe; create objects with per-use meters (e.g. via InvokeAll,
/// which wires thread-local meters) or a null meter before using this.
Status ConvergeAllToMinWidth(const std::vector<ResultObject*>& objects,
                             int threads);

}  // namespace vaolib::vao

#endif  // VAOLIB_VAO_PARALLEL_H_
