// Copyright 2026 The vaolib Authors.
// Parallel helpers for bulk result-object work. The paper notes its models
// are "easily parallelizable" and sizes production deployments in
// processors (Section 6.1); these helpers parallelize the embarrassingly
// parallel parts -- creating result objects for many rows, and converging
// many objects -- on the shared persistent ThreadPool (common/thread_pool.h),
// so a stream tick costs queue pushes rather than thread spawns.
//
// Thread-safety requirement: the function's Invoke() must be safe to call
// concurrently. That holds for the pure solver-backed functions in this
// library (Pde/Pde2d/Ode/Ivp/Integral/Root and the bond models) AND for
// CachingFunction, whose BoundsCache is sharded and locked per shard --
// lookups, updates, and destructor write-backs are safe from any worker.
//
// Determinism: work-unit totals and returned errors are identical for every
// thread count, including 1 (see the contracts on each helper).

#ifndef VAOLIB_VAO_PARALLEL_H_
#define VAOLIB_VAO_PARALLEL_H_

#include <cstdint>
#include <vector>

#include "vao/result_object.h"

namespace vaolib::vao {

/// \brief Invokes \p function on every row of \p rows using up to
/// \p threads workers of the shared pool. Returns the result objects in row
/// order; all work is charged to \p meter (if non-null), whose totals are
/// independent of \p threads. threads < 2 runs serially on the caller.
///
/// Objects are created against \p meter itself (not a per-chunk scratch
/// meter) so later Iterate() calls keep charging it; WorkMeter charging is
/// atomic, so this is safe from workers.
///
/// Error semantics: every row is attempted even after a failure, and the
/// returned error is deterministically that of the lowest-indexed failing
/// row regardless of thread count.
Result<std::vector<ResultObjectPtr>> InvokeAll(
    const VariableAccuracyFunction& function,
    const std::vector<std::vector<double>>& rows, int threads,
    WorkMeter* meter);

/// \brief Converges every object to its minWidth using up to \p threads
/// workers (each object is driven by exactly one worker, so per-object
/// Iterate() sequences are serial). Objects charge whatever meter they were
/// created against; WorkMeter charging is atomic, so caller-owned meters
/// (e.g. wired by InvokeAll) are safe.
///
/// Error semantics: every object is attempted even after a failure; returns
/// the error of the lowest-indexed failing object, deterministically.
///
/// Each object's loop is budgeted: ResourceExhausted after
/// \p max_iterations_per_object Iterate() calls, or as soon as its bounds
/// stop tightening while still above minWidth (StallGuard) -- one stalled
/// object would otherwise hang the whole bulk convergence.
Status ConvergeAllToMinWidth(const std::vector<ResultObject*>& objects,
                             int threads,
                             std::uint64_t max_iterations_per_object =
                                 50'000'000);

/// \brief Gives every listed object exactly one Iterate() call, using up to
/// \p threads workers of the shared pool (threads < 2 runs serially on the
/// caller). This is the batched form of a resumable task step: the engine's
/// scheduler refines many independent rows one notch per scheduling round,
/// and this fans one round out over the pool. Objects charge whatever meter
/// they were created against (atomic), so work totals are independent of
/// the thread count, and each object receives exactly one call regardless
/// of errors elsewhere.
///
/// Error semantics: every object is attempted even after a failure; returns
/// the error of the lowest-indexed failing object, deterministically.
Status StepAll(const std::vector<ResultObject*>& objects, int threads);

}  // namespace vaolib::vao

#endif  // VAOLIB_VAO_PARALLEL_H_
