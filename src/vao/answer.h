// Copyright 2026 The vaolib Authors.
// Answer: the unified result type returned at every public seam of the
// engine. It generalizes the paper's hard [L, H] interval (Bounds) with an
// answer mode: exact answers carry deterministic bounds that are guaranteed
// to contain the true value; approximate answers carry a combined interval
// whose width is the sum of a deterministic component (residual VAO bound
// width over the sampled objects, scaled to the population) and a sampling
// component (a CLT confidence interval at the stated confidence level).
//
// Answer derives from Bounds so that every existing call site -- comparisons
// against oracle bounds, Contains()/Width() checks, streaming into reports
// -- keeps compiling unchanged: an exact Answer *is* its Bounds.

#ifndef VAOLIB_VAO_ANSWER_H_
#define VAOLIB_VAO_ANSWER_H_

#include <cstddef>
#include <ostream>

#include "common/bounds.h"

namespace vaolib::vao {

/// \brief How an Answer's interval should be interpreted.
enum class AnswerMode {
  kExact,        ///< hard bounds: the true value is in [lo, hi] with certainty
  kApproximate,  ///< probabilistic: true value in [lo, hi] with `confidence`
};

/// Human-readable name ("exact" / "approximate") for reports and wire frames.
inline const char* AnswerModeName(AnswerMode mode) {
  return mode == AnswerMode::kApproximate ? "approximate" : "exact";
}

/// \brief A query answer: an interval plus the provenance needed to interpret
/// it. Exact answers degenerate to plain Bounds (confidence 1, whole width
/// deterministic); approximate answers additionally report how much of the
/// interval width comes from unfinished VAO iteration versus sampling error,
/// and how many rows of the population were actually sampled.
struct Answer : Bounds {
  /// Interpretation of [lo, hi]. Defaults to exact so that existing code
  /// converting from Bounds keeps its hard-interval semantics.
  AnswerMode mode = AnswerMode::kExact;

  /// Coverage probability of [lo, hi]. 1.0 for exact answers; the stated
  /// confidence level (e.g. 0.95) for approximate ones. An approximate
  /// answer with confidence 0 makes NO probabilistic coverage claim: the
  /// interval is best-effort only (the sampled TOP-K heuristic tier, whose
  /// interval is the sampled winner's hard bounds, or a sampled aggregate
  /// snapshot taken before any variance estimate exists).
  double confidence = 1.0;

  /// Rows actually sampled (0 for exact answers, which visit every row).
  std::size_t sample_size = 0;

  /// Rows in the underlying relation (0 when not applicable).
  std::size_t population_size = 0;

  /// Width contributed by residual VAO bound width (hard error). For exact
  /// answers this is the entire interval width.
  double deterministic_width = 0.0;

  /// Width contributed by the CLT confidence interval (probabilistic error).
  /// Always 0 for exact answers.
  double sampling_width = 0.0;

  Answer() = default;

  /// Implicit lift of hard bounds into an exact answer. Keeps every
  /// `answer = some_bounds;` assignment in the engine compiling unchanged.
  Answer(const Bounds& b)  // NOLINT(google-explicit-constructor)
      : Bounds(b), deterministic_width(b.Width()) {}

  /// Builds an exact answer from hard bounds.
  static Answer Exact(const Bounds& b) { return Answer(b); }

  /// Builds an approximate answer. \p deterministic_width and
  /// \p sampling_width must sum to b.Width() (up to rounding).
  static Answer Approximate(const Bounds& b, double confidence,
                            std::size_t sample_size,
                            std::size_t population_size,
                            double deterministic_width,
                            double sampling_width) {
    Answer a;
    a.lo = b.lo;
    a.hi = b.hi;
    a.mode = AnswerMode::kApproximate;
    a.confidence = confidence;
    a.sample_size = sample_size;
    a.population_size = population_size;
    a.deterministic_width = deterministic_width;
    a.sampling_width = sampling_width;
    return a;
  }

  /// The interval alone, without provenance.
  const Bounds& bounds() const { return *this; }

  /// True iff this answer is probabilistic.
  bool approximate() const { return mode == AnswerMode::kApproximate; }
};

inline std::ostream& operator<<(std::ostream& os, const Answer& a) {
  os << static_cast<const Bounds&>(a);
  if (a.approximate()) {
    os << " ~" << a.confidence << " (n=" << a.sample_size << "/"
       << a.population_size << ")";
  }
  return os;
}

}  // namespace vaolib::vao

#endif  // VAOLIB_VAO_ANSWER_H_
