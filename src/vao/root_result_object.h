// Copyright 2026 The vaolib Authors.
// RootResultObject: the Section 4.4 adaptation of bracketing root solvers to
// the VAO interface. The bracket is the bound; each Iterate() is one probe.

#ifndef VAOLIB_VAO_ROOT_RESULT_OBJECT_H_
#define VAOLIB_VAO_ROOT_RESULT_OBJECT_H_

#include <functional>
#include <string>

#include "numeric/roots.h"
#include "obs/metrics.h"
#include "vao/result_object.h"

namespace vaolib::vao {

/// \brief Tuning knobs for root result objects.
struct RootResultOptions {
  numeric::BracketingRootFinder::Options finder;
  double min_width = 1e-10;
  int max_iterations = 200;
};

/// \brief A bracketed root-finding problem instance.
struct RootProblem {
  std::function<double(double)> f;
  double lo = 0.0;
  double hi = 1.0;
};

/// \brief Result object for the root of f inside [lo, hi].
class RootResultObject : public ResultObjectBase {
 public:
  /// Evaluates both bracket endpoints (charged to \p meter).
  static Result<ResultObjectPtr> Create(RootProblem problem,
                                        const RootResultOptions& options,
                                        WorkMeter* meter);

  Bounds bounds() const override { return finder_->bounds(); }
  double min_width() const override { return options_.min_width; }
  Status Iterate() override;
  std::uint64_t est_cost() const override {
    return finder_->CostOfNextStep();
  }
  Bounds est_bounds() const override {
    return finder_->PredictedBoundsAfterStep();
  }
  int calibration_kind() const override {
    return static_cast<int>(obs::SolverKind::kRoot);
  }

  std::uint64_t traditional_cost() const override {
    // A traditional bisection run to the same accuracy performs the same
    // probes, so cost_trad == cumulative evaluations (Section 4.4).
    return finder_->total_evaluations() * options_.finder.work_per_eval;
  }

  /// Total function evaluations so far (exposed for the cost-model bench).
  std::uint64_t total_evaluations() const {
    return finder_->total_evaluations();
  }

 private:
  RootResultObject(numeric::BracketingRootFinder finder,
                   const RootResultOptions& options, WorkMeter* meter);

  std::unique_ptr<numeric::BracketingRootFinder> finder_;
  RootResultOptions options_;
};

/// \brief VariableAccuracyFunction producing RootResultObjects.
class RootFunction : public VariableAccuracyFunction {
 public:
  using ProblemBuilder =
      std::function<Result<RootProblem>(const std::vector<double>& args)>;

  RootFunction(std::string name, int arity, ProblemBuilder builder,
               RootResultOptions options)
      : name_(std::move(name)),
        arity_(arity),
        builder_(std::move(builder)),
        options_(options) {}

  const std::string& name() const override { return name_; }
  int arity() const override { return arity_; }
  Result<ResultObjectPtr> Invoke(const std::vector<double>& args,
                                 WorkMeter* meter) const override;

 private:
  std::string name_;
  int arity_;
  ProblemBuilder builder_;
  RootResultOptions options_;
};

}  // namespace vaolib::vao

#endif  // VAOLIB_VAO_ROOT_RESULT_OBJECT_H_
