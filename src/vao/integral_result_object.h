// Copyright 2026 The vaolib Authors.
// IntegralResultObject: the Section 4.3 adaptation of refinable numerical
// integration to the VAO interface. Thin adapter over
// numeric::RefinableIntegral, which already maintains bounds, predictions,
// and per-refinement costs.

#ifndef VAOLIB_VAO_INTEGRAL_RESULT_OBJECT_H_
#define VAOLIB_VAO_INTEGRAL_RESULT_OBJECT_H_

#include <functional>
#include <string>

#include "numeric/integration.h"
#include "obs/metrics.h"
#include "vao/result_object.h"

namespace vaolib::vao {

/// \brief Tuning knobs for integral result objects.
struct IntegralResultOptions {
  numeric::RefinableIntegral::Options integral;
  double min_width = 1e-8;
  int max_iterations = 28;
};

/// \brief A definite-integral problem instance.
struct IntegralProblem {
  std::function<double(double)> integrand;
  double a = 0.0;
  double b = 1.0;
};

/// \brief Result object for \int_a^b f(x) dx.
class IntegralResultObject : public ResultObjectBase {
 public:
  /// Computes the level-0/1 pair so bounds exist immediately; evaluations
  /// are charged to \p meter.
  static Result<ResultObjectPtr> Create(IntegralProblem problem,
                                        const IntegralResultOptions& options,
                                        WorkMeter* meter);

  Bounds bounds() const override { return integral_->bounds(); }
  double min_width() const override { return options_.min_width; }
  Status Iterate() override;
  std::uint64_t est_cost() const override {
    return integral_->CostOfNextRefine();
  }
  Bounds est_bounds() const override {
    return integral_->PredictedBoundsAfterRefine();
  }
  int calibration_kind() const override {
    return static_cast<int>(obs::SolverKind::kIntegral);
  }

  std::uint64_t traditional_cost() const override {
    // A one-shot composite rule at the final resolution evaluates every
    // current sample point once; the refinable integral evaluated exactly
    // the same set, so cost_trad == cumulative evaluations (Section 4.3).
    return integral_->total_evaluations() * options_.integral.work_per_eval;
  }

  /// Total integrand evaluations so far (exposed for the cost-model bench).
  std::uint64_t total_evaluations() const {
    return integral_->total_evaluations();
  }

  /// "intg:<rule>:<level>"; empty at max_iterations or the integral's
  /// max_level. Same-key objects share rule and panel count, which is what
  /// the lockstep composite reduction requires.
  std::string batch_key() const override;

  /// Runs one Iterate() on every object through the lockstep quadrature
  /// refinement. Preconditions: all objects share the same non-empty
  /// batch_key() and the same WorkMeter. Per-object results are
  /// bit-identical to scalar Iterate(); \p spent receives each object's
  /// work-unit share, summing exactly to what the shared meter was charged.
  static std::vector<Status> IterateGroup(
      const std::vector<IntegralResultObject*>& objects,
      std::vector<std::uint64_t>* spent);

 private:
  IntegralResultObject(numeric::RefinableIntegral integral,
                       const IntegralResultOptions& options, WorkMeter* meter);

  std::unique_ptr<numeric::RefinableIntegral> integral_;
  IntegralResultOptions options_;
};

/// \brief VariableAccuracyFunction producing IntegralResultObjects.
class IntegralFunction : public VariableAccuracyFunction {
 public:
  using ProblemBuilder =
      std::function<Result<IntegralProblem>(const std::vector<double>& args)>;

  IntegralFunction(std::string name, int arity, ProblemBuilder builder,
                   IntegralResultOptions options)
      : name_(std::move(name)),
        arity_(arity),
        builder_(std::move(builder)),
        options_(options) {}

  const std::string& name() const override { return name_; }
  int arity() const override { return arity_; }
  Result<ResultObjectPtr> Invoke(const std::vector<double>& args,
                                 WorkMeter* meter) const override;

 private:
  std::string name_;
  int arity_;
  ProblemBuilder builder_;
  IntegralResultOptions options_;
};

}  // namespace vaolib::vao

#endif  // VAOLIB_VAO_INTEGRAL_RESULT_OBJECT_H_
