#include "vao/pde2d_result_object.h"

#include "common/macros.h"
#include "vao/calibration_probe.h"

namespace vaolib::vao {

namespace {

numeric::Pde2dGrid Halved(const numeric::Pde2dGrid& grid,
                          numeric::StepAxis3 axis) {
  numeric::Pde2dGrid next = grid;
  switch (axis) {
    case numeric::StepAxis3::kTime:
      next.t_steps *= 2;
      break;
    case numeric::StepAxis3::kSpaceX:
      next.x_intervals *= 2;
      break;
    case numeric::StepAxis3::kSpaceY:
      next.y_intervals *= 2;
      break;
  }
  return next;
}

}  // namespace

Pde2dResultObject::Pde2dResultObject(numeric::Pde2dProblem problem,
                                     double query_x, double query_y,
                                     const Pde2dResultOptions& options,
                                     WorkMeter* meter)
    : ResultObjectBase(meter),
      problem_(std::move(problem)),
      query_x_(query_x),
      query_y_(query_y),
      options_(options),
      model_(options.safety_factor),
      grid_(options.initial_grid) {}

Result<double> Pde2dResultObject::SolveAt(const numeric::Pde2dGrid& grid) {
  const auto key =
      std::make_tuple(grid.x_intervals, grid.y_intervals, grid.t_steps);
  if (const auto it = solve_cache_.find(key); it != solve_cache_.end()) {
    return it->second;
  }
  VAOLIB_ASSIGN_OR_RETURN(
      const double value,
      numeric::SolvePde2d(problem_, grid, query_x_, query_y_, meter()));
  solve_cache_.emplace(key, value);
  return value;
}

Result<ResultObjectPtr> Pde2dResultObject::Create(
    numeric::Pde2dProblem problem, double query_x, double query_y,
    const Pde2dResultOptions& options, WorkMeter* meter) {
  if (options.min_width <= 0.0) {
    return Status::InvalidArgument("min_width must be > 0");
  }
  if (options.safety_factor < 1.0) {
    return Status::InvalidArgument("safety_factor must be >= 1");
  }
  auto object = std::unique_ptr<Pde2dResultObject>(new Pde2dResultObject(
      std::move(problem), query_x, query_y, options, meter));

  const numeric::Pde2dGrid g1 = object->grid_;
  VAOLIB_ASSIGN_OR_RETURN(const double f1, object->SolveAt(g1));
  VAOLIB_ASSIGN_OR_RETURN(
      const double f2,
      object->SolveAt(Halved(g1, numeric::StepAxis3::kTime)));
  VAOLIB_ASSIGN_OR_RETURN(
      const double f3,
      object->SolveAt(Halved(g1, numeric::StepAxis3::kSpaceX)));
  VAOLIB_ASSIGN_OR_RETURN(
      const double f4,
      object->SolveAt(Halved(g1, numeric::StepAxis3::kSpaceY)));

  const double dt = g1.Dt(object->problem_);
  const double dx = g1.Dx(object->problem_);
  const double dy = g1.Dy(object->problem_);
  object->model_.EstimateK1(f1, f2, dt);
  object->model_.EstimateK2(f1, f3, dx);
  object->model_.EstimateK3(f1, f4, dy);
  object->value_ = f1;
  object->RefreshDerivedState();
  return ResultObjectPtr(std::move(object));
}

void Pde2dResultObject::RefreshDerivedState() {
  const double dt = grid_.Dt(problem_);
  const double dx = grid_.Dx(problem_);
  const double dy = grid_.Dy(problem_);
  bounds_ = model_.BoundsFor(value_, dt, dx, dy);
  const numeric::StepAxis3 axis = model_.PreferredAxis(dt, dx, dy);
  est_bounds_ = model_.PredictBoundsAfterHalving(value_, dt, dx, dy, axis);
  const numeric::Pde2dGrid next = Halved(grid_, axis);
  const bool cached = solve_cache_.contains(
      {next.x_intervals, next.y_intervals, next.t_steps});
  est_cost_ = cached ? 0 : next.MeshEntries();
}

Status Pde2dResultObject::Iterate() {
  if (iterations() >= options_.max_iterations) {
    return Status::ResourceExhausted("2D PDE result object at max_iterations");
  }
  const CalibrationProbe probe(obs::SolverKind::kPde2d, *this, meter());
  ChargeStateOverhead();

  const double dt = grid_.Dt(problem_);
  const double dx = grid_.Dx(problem_);
  const double dy = grid_.Dy(problem_);
  const numeric::StepAxis3 axis = model_.PreferredAxis(dt, dx, dy);
  const numeric::Pde2dGrid next = Halved(grid_, axis);

  const auto solved = SolveAt(next);
  if (!solved.ok()) return solved.status();
  const double new_value = solved.value();

  switch (axis) {
    case numeric::StepAxis3::kTime:
      model_.EstimateK1(value_, new_value, dt);
      break;
    case numeric::StepAxis3::kSpaceX:
      model_.EstimateK2(value_, new_value, dx);
      break;
    case numeric::StepAxis3::kSpaceY:
      model_.EstimateK3(value_, new_value, dy);
      break;
  }

  grid_ = next;
  value_ = new_value;
  BumpIterations();
  RefreshDerivedState();
  probe.Commit();
  return Status::OK();
}

Result<ResultObjectPtr> Pde2dFunction::Invoke(const std::vector<double>& args,
                                              WorkMeter* meter) const {
  if (static_cast<int>(args.size()) != arity_) {
    return Status::InvalidArgument(
        name_ + " expects " + std::to_string(arity_) + " args, got " +
        std::to_string(args.size()));
  }
  VAOLIB_ASSIGN_OR_RETURN(auto built, builder_(args));
  return Pde2dResultObject::Create(std::move(std::get<0>(built)),
                                   std::get<1>(built), std::get<2>(built),
                                   options_, meter);
}

}  // namespace vaolib::vao
