#include "vao/function_cache.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/macros.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vaolib::vao {

namespace {

// Global cache-event counters (the per-instance shard counters stay exact;
// these feed the process-wide registry for exporters and dashboards).
obs::Counter* CacheEventCounter(const char* event) {
  return obs::MetricsRegistry::Global().GetCounter(
      "vaolib_bounds_cache_events_total", {{"event", event}});
}

void CountCacheHit() {
  static obs::Counter* counter = CacheEventCounter("hit");
  counter->Increment();
}

void CountCacheMiss() {
  static obs::Counter* counter = CacheEventCounter("miss");
  counter->Increment();
}

void CountCacheEviction() {
  static obs::Counter* counter = CacheEventCounter("eviction");
  counter->Increment();
}

// Sound intersection of two sound intervals; if numerically disjoint (which
// would indicate an unsound model upstream), fall back to the fresher one.
Bounds Intersect(const Bounds& a, const Bounds& b) {
  const Bounds out(std::max(a.lo, b.lo), std::min(a.hi, b.hi));
  return out.IsValid() ? out : a;
}

// A result object that is already converged: fixed bounds, free iterations.
class ConvergedResultObject : public ResultObject {
 public:
  ConvergedResultObject(const Bounds& bounds, double min_width)
      : bounds_(bounds), min_width_(min_width) {}

  Bounds bounds() const override { return bounds_; }
  double min_width() const override { return min_width_; }
  Status Iterate() override { return Status::OK(); }  // nothing left to do
  std::uint64_t est_cost() const override { return 0; }
  Bounds est_bounds() const override { return bounds_; }
  int iterations() const override { return 0; }
  std::uint64_t traditional_cost() const override { return 0; }

 private:
  Bounds bounds_;
  double min_width_;
};

// Wraps a live inner object: visible bounds are the running intersection of
// the inner bounds with the cache's prior knowledge; final bounds are
// written back on destruction.
class WriteBackResultObject : public ResultObject {
 public:
  WriteBackResultObject(ResultObjectPtr inner, Bounds prior,
                        std::shared_ptr<BoundsCache> cache,
                        std::vector<double> args)
      : inner_(std::move(inner)),
        best_(Intersect(prior, inner_->bounds())),
        cache_(std::move(cache)),
        args_(std::move(args)) {}

  ~WriteBackResultObject() override {
    cache_->Update(args_, best_, inner_->min_width());
  }

  Bounds bounds() const override { return best_; }
  double min_width() const override { return inner_->min_width(); }

  Status Iterate() override {
    VAOLIB_RETURN_IF_ERROR(inner_->Iterate());
    best_ = Intersect(best_, inner_->bounds());
    return Status::OK();
  }

  std::uint64_t est_cost() const override { return inner_->est_cost(); }
  Bounds est_bounds() const override {
    return Intersect(best_, inner_->est_bounds());
  }
  int iterations() const override { return inner_->iterations(); }
  std::uint64_t traditional_cost() const override {
    return inner_->traditional_cost();
  }
  int calibration_kind() const override {
    return inner_->calibration_kind();
  }
  std::string correlation_key() const override {
    return inner_->correlation_key();
  }

 private:
  ResultObjectPtr inner_;
  Bounds best_;
  std::shared_ptr<BoundsCache> cache_;
  std::vector<double> args_;
};

// Cache hit with non-converged prior bounds: serves the cached bounds
// WITHOUT invoking the inner function. The (possibly expensive) inner
// object is created only if the operator actually needs a refinement --
// when the cached knowledge already decides the query, the solver never
// runs at all. The meter passed to Invoke() is captured for that deferred
// creation and must outlive this object (true for all operator usage:
// meters outlive the per-tick objects they measure).
class LazyWriteBackResultObject : public ResultObject {
 public:
  LazyWriteBackResultObject(const VariableAccuracyFunction* function,
                            std::vector<double> args, WorkMeter* meter,
                            BoundsCache::Entry prior,
                            std::shared_ptr<BoundsCache> cache)
      : function_(function),
        args_(std::move(args)),
        meter_(meter),
        best_(prior.bounds),
        min_width_(prior.min_width),
        cache_(std::move(cache)) {}

  ~LazyWriteBackResultObject() override {
    cache_->Update(args_, best_, min_width_);
  }

  Bounds bounds() const override { return best_; }
  double min_width() const override { return min_width_; }

  Status Iterate() override {
    if (inner_ == nullptr) {
      // First refinement request: materialize the real object now.
      auto made = function_->Invoke(args_, meter_);
      VAOLIB_RETURN_IF_ERROR(made.status());
      inner_ = std::move(made).value();
      min_width_ = inner_->min_width();
      best_ = Intersect(best_, inner_->bounds());
      ++iterations_;
      return Status::OK();
    }
    VAOLIB_RETURN_IF_ERROR(inner_->Iterate());
    best_ = Intersect(best_, inner_->bounds());
    ++iterations_;
    return Status::OK();
  }

  std::uint64_t est_cost() const override {
    return inner_ != nullptr ? inner_->est_cost() : 1;
  }
  Bounds est_bounds() const override {
    // Without a live inner object there is no basis for predicting
    // progress; operators' zero-progress fallbacks handle this.
    return inner_ != nullptr ? Intersect(best_, inner_->est_bounds())
                             : best_;
  }
  int iterations() const override { return iterations_; }
  std::uint64_t traditional_cost() const override {
    return inner_ != nullptr ? inner_->traditional_cost() : 0;
  }
  int calibration_kind() const override {
    return inner_ != nullptr ? inner_->calibration_kind() : -1;
  }
  std::string correlation_key() const override {
    return inner_ != nullptr ? inner_->correlation_key() : std::string();
  }

 private:
  const VariableAccuracyFunction* function_;
  std::vector<double> args_;
  WorkMeter* meter_;
  ResultObjectPtr inner_;
  Bounds best_;
  double min_width_;
  std::shared_ptr<BoundsCache> cache_;
  int iterations_ = 0;
};

}  // namespace

BoundsCache::BoundsCache(std::size_t capacity, std::size_t shard_count) {
  shard_count = std::max<std::size_t>(shard_count, 1);
  // Every shard must hold at least one entry or small caches stop caching.
  shard_count = std::min(shard_count, std::max<std::size_t>(capacity, 1));
  per_shard_capacity_ =
      std::max<std::size_t>((capacity + shard_count - 1) / shard_count, 1);
  shards_.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

BoundsCache::Shard& BoundsCache::ShardFor(const std::vector<double>& args) {
  // FNV-1a over the raw double bytes. Lookup and Update must agree on the
  // shard for bit-identical arg vectors, which hashing the representation
  // guarantees (the engine never mixes 0.0 and -0.0 spellings of a key).
  std::uint64_t h = 1469598103934665603ull;
  for (const double d : args) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (bits >> (8 * byte)) & 0xffull;
      h *= 1099511628211ull;
    }
  }
  return *shards_[h % shards_.size()];
}

std::optional<BoundsCache::Entry> BoundsCache::Lookup(
    const std::vector<double>& args) {
  // Lookups are far too hot to span individually, so full-mode traces get
  // every 16th one per thread -- enough to see convoying without paying a
  // ring push per probe.
  static thread_local std::uint32_t lookup_tick = 0;
  struct SampledSpan {
    bool active;
    std::uint64_t start;
    ~SampledSpan() {
      if (active) {
        obs::RecordSpan("cache", "lookup", start, obs::TraceNowNs(),
                        obs::TraceDetail::kFine);
      }
    }
  };
  const bool sampled = obs::TraceActive(obs::TraceDetail::kFine) &&
                       (lookup_tick++ % 16 == 0);
  const SampledSpan span{sampled, sampled ? obs::TraceNowNs() : 0};
  Shard& shard = ShardFor(args);
  {
    // Miss fast path: probe under the shared lock so concurrent misses --
    // every pool worker during a cold InvokeAll -- proceed in parallel
    // instead of convoying on the exclusive lock.
    std::shared_lock<std::shared_mutex> read(shard.mutex);
    if (shard.entries.find(args) == shard.entries.end()) {
      shard.misses.fetch_add(1, std::memory_order_relaxed);
      CountCacheMiss();
      return std::nullopt;
    }
  }
  // Probable hit: the LRU splice mutates the shard, so upgrade to the
  // exclusive lock and re-find (the entry may have been evicted between
  // the two locks -- then it is a miss after all).
  std::unique_lock<std::shared_mutex> write(shard.mutex);
  const auto it = shard.entries.find(args);
  if (it == shard.entries.end()) {
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    CountCacheMiss();
    return std::nullopt;
  }
  shard.hits.fetch_add(1, std::memory_order_relaxed);
  CountCacheHit();
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_position);
  return it->second.entry;
}

void BoundsCache::Update(const std::vector<double>& args,
                         const Bounds& bounds, double min_width) {
  Shard& shard = ShardFor(args);
  std::unique_lock<std::shared_mutex> lock(shard.mutex);
  const auto it = shard.entries.find(args);
  if (it != shard.entries.end()) {
    it->second.entry.bounds = Intersect(it->second.entry.bounds, bounds);
    it->second.entry.min_width = min_width;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_position);
    return;
  }
  shard.lru.push_front(args);
  shard.entries.emplace(args, Slot{Entry{bounds, min_width},
                                   shard.lru.begin()});
  if (shard.entries.size() > per_shard_capacity_) {
    shard.entries.erase(shard.lru.back());
    shard.lru.pop_back();
    shard.evictions.fetch_add(1, std::memory_order_relaxed);
    CountCacheEviction();
  }
}

std::size_t BoundsCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    total += shard->entries.size();
  }
  return total;
}

std::uint64_t BoundsCache::hits() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->hits.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t BoundsCache::misses() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->misses.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t BoundsCache::evictions() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->evictions.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<BoundsCache::ShardStats> BoundsCache::PerShardStats() const {
  std::vector<ShardStats> stats;
  stats.reserve(shards_.size());
  for (const auto& shard : shards_) {
    stats.push_back(
        ShardStats{shard->hits.load(std::memory_order_relaxed),
                   shard->misses.load(std::memory_order_relaxed),
                   shard->evictions.load(std::memory_order_relaxed)});
  }
  return stats;
}

CachingFunction::CachingFunction(const VariableAccuracyFunction* inner,
                                 std::size_t capacity)
    : inner_(inner),
      name_(inner->name() + "+cache"),
      cache_(std::make_shared<BoundsCache>(capacity)) {}

Result<ResultObjectPtr> CachingFunction::Invoke(
    const std::vector<double>& args, WorkMeter* meter) const {
  const auto cached = cache_->Lookup(args);
  if (cached.has_value()) {
    if (cached->bounds.Width() < cached->min_width) {
      // Fully converged on an earlier tick: answer for free.
      return ResultObjectPtr(
          new ConvergedResultObject(cached->bounds, cached->min_width));
    }
    // Partial knowledge: serve it immediately and defer the solver until a
    // refinement is actually requested.
    return ResultObjectPtr(
        new LazyWriteBackResultObject(inner_, args, meter, *cached, cache_));
  }
  VAOLIB_ASSIGN_OR_RETURN(ResultObjectPtr inner, inner_->Invoke(args, meter));
  const Bounds prior = inner->bounds();
  return ResultObjectPtr(new WriteBackResultObject(std::move(inner), prior,
                                                   cache_, args));
}

}  // namespace vaolib::vao
