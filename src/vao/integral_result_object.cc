#include "vao/integral_result_object.h"

#include <utility>

#include "common/macros.h"
#include "vao/calibration_probe.h"

namespace vaolib::vao {

IntegralResultObject::IntegralResultObject(numeric::RefinableIntegral integral,
                                           const IntegralResultOptions& options,
                                           WorkMeter* meter)
    : ResultObjectBase(meter),
      integral_(std::make_unique<numeric::RefinableIntegral>(
          std::move(integral))),
      options_(options) {}

Result<ResultObjectPtr> IntegralResultObject::Create(
    IntegralProblem problem, const IntegralResultOptions& options,
    WorkMeter* meter) {
  if (options.min_width <= 0.0) {
    return Status::InvalidArgument("min_width must be > 0");
  }
  VAOLIB_ASSIGN_OR_RETURN(
      numeric::RefinableIntegral integral,
      numeric::RefinableIntegral::Create(std::move(problem.integrand),
                                         problem.a, problem.b,
                                         options.integral, meter));
  return ResultObjectPtr(
      new IntegralResultObject(std::move(integral), options, meter));
}

Status IntegralResultObject::Iterate() {
  if (iterations() >= options_.max_iterations) {
    return Status::ResourceExhausted(
        "integral result object at max_iterations");
  }
  const CalibrationProbe probe(obs::SolverKind::kIntegral, *this, meter());
  ChargeStateOverhead();
  VAOLIB_RETURN_IF_ERROR(integral_->Refine(meter()));
  BumpIterations();
  probe.Commit();
  return Status::OK();
}

std::string IntegralResultObject::batch_key() const {
  if (iterations() >= options_.max_iterations) return {};
  if (integral_->level() >= options_.integral.max_level) return {};
  return "intg:" + std::to_string(static_cast<int>(options_.integral.rule)) +
         ":" + std::to_string(integral_->level());
}

std::vector<Status> IntegralResultObject::IterateGroup(
    const std::vector<IntegralResultObject*>& objects,
    std::vector<std::uint64_t>* spent) {
  const std::size_t k = objects.size();
  std::vector<Status> statuses(k, Status::OK());
  spent->assign(k, 0);
  if (k == 0) return statuses;

  const std::string key = objects[0]->batch_key();
  WorkMeter* meter = objects[0]->meter();
  for (const IntegralResultObject* object : objects) {
    if (key.empty() || object->batch_key() != key ||
        object->meter() != meter) {
      statuses.assign(k, Status::InvalidArgument(
                             "integral iterate group needs one shared "
                             "batch_key and meter"));
      return statuses;
    }
  }

  const bool calibrate = obs::Enabled() && meter != nullptr;
  std::vector<numeric::RefinableIntegral*> integrals(k);
  std::vector<std::uint64_t> refine_cost(k);
  std::vector<Bounds> est_before(k, Bounds(0.0, 0.0));
  std::vector<double> est_cost_before(k, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    IntegralResultObject* object = objects[i];
    if (calibrate) {
      est_before[i] = object->est_bounds();
      est_cost_before[i] = static_cast<double>(object->est_cost());
    }
    object->ChargeStateOverhead();
    integrals[i] = object->integral_.get();
    refine_cost[i] = object->integral_->CostOfNextRefine();
  }

  const Status refine_status =
      numeric::RefinableIntegral::RefineBatch(integrals, meter);
  if (!refine_status.ok()) {
    for (std::size_t i = 0; i < k; ++i) {
      statuses[i] = refine_status;
      (*spent)[i] = 2;  // the state overhead already charged
    }
    return statuses;
  }

  for (std::size_t i = 0; i < k; ++i) {
    IntegralResultObject* object = objects[i];
    (*spent)[i] = 2 + refine_cost[i];
    object->BumpIterations();
    if (calibrate) {
      const Bounds after = object->bounds();
      obs::RecordEstimatorSample(obs::SolverKind::kIntegral,
                                 est_cost_before[i], est_before[i].lo,
                                 est_before[i].hi,
                                 static_cast<double>((*spent)[i]), after.lo,
                                 after.hi);
    }
  }
  return statuses;
}

Result<ResultObjectPtr> IntegralFunction::Invoke(
    const std::vector<double>& args, WorkMeter* meter) const {
  if (static_cast<int>(args.size()) != arity_) {
    return Status::InvalidArgument(
        name_ + " expects " + std::to_string(arity_) + " args, got " +
        std::to_string(args.size()));
  }
  VAOLIB_ASSIGN_OR_RETURN(IntegralProblem problem, builder_(args));
  return IntegralResultObject::Create(std::move(problem), options_, meter);
}

}  // namespace vaolib::vao
