#include "vao/integral_result_object.h"

#include <utility>

#include "common/macros.h"
#include "vao/calibration_probe.h"

namespace vaolib::vao {

IntegralResultObject::IntegralResultObject(numeric::RefinableIntegral integral,
                                           const IntegralResultOptions& options,
                                           WorkMeter* meter)
    : ResultObjectBase(meter),
      integral_(std::make_unique<numeric::RefinableIntegral>(
          std::move(integral))),
      options_(options) {}

Result<ResultObjectPtr> IntegralResultObject::Create(
    IntegralProblem problem, const IntegralResultOptions& options,
    WorkMeter* meter) {
  if (options.min_width <= 0.0) {
    return Status::InvalidArgument("min_width must be > 0");
  }
  VAOLIB_ASSIGN_OR_RETURN(
      numeric::RefinableIntegral integral,
      numeric::RefinableIntegral::Create(std::move(problem.integrand),
                                         problem.a, problem.b,
                                         options.integral, meter));
  return ResultObjectPtr(
      new IntegralResultObject(std::move(integral), options, meter));
}

Status IntegralResultObject::Iterate() {
  if (iterations() >= options_.max_iterations) {
    return Status::ResourceExhausted(
        "integral result object at max_iterations");
  }
  const CalibrationProbe probe(obs::SolverKind::kIntegral, *this, meter());
  ChargeStateOverhead();
  VAOLIB_RETURN_IF_ERROR(integral_->Refine(meter()));
  BumpIterations();
  probe.Commit();
  return Status::OK();
}

Result<ResultObjectPtr> IntegralFunction::Invoke(
    const std::vector<double>& args, WorkMeter* meter) const {
  if (static_cast<int>(args.size()) != arity_) {
    return Status::InvalidArgument(
        name_ + " expects " + std::to_string(arity_) + " args, got " +
        std::to_string(args.size()));
  }
  VAOLIB_ASSIGN_OR_RETURN(IntegralProblem problem, builder_(args));
  return IntegralResultObject::Create(std::move(problem), options_, meter);
}

}  // namespace vaolib::vao
