#include "vao/black_box.h"

#include "common/macros.h"
#include "common/stall_guard.h"

namespace vaolib::vao {

Result<int> ConvergeToMinWidth(ResultObject* object,
                               std::uint64_t max_iterations) {
  if (object == nullptr) {
    return Status::InvalidArgument("null result object");
  }
  int steps = 0;
  StallGuard guard;
  while (!object->AtStoppingCondition()) {
    if (static_cast<std::uint64_t>(steps) >= max_iterations) {
      return Status::ResourceExhausted(
          "ConvergeToMinWidth exceeded its iteration budget");
    }
    VAOLIB_RETURN_IF_ERROR(object->Iterate());
    ++steps;
    if (guard.Observe(object->bounds().Width())) {
      return Status::ResourceExhausted(
          "ConvergeToMinWidth stalled: bounds stopped tightening above "
          "minWidth");
    }
  }
  return steps;
}

CalibratedBlackBox::CalibratedBlackBox(
    const VariableAccuracyFunction* function)
    : function_(function) {}

Result<CalibratedBlackBox::Calibration> CalibratedBlackBox::Calibrate(
    const std::vector<double>& args) const {
  if (const auto it = cache_.find(args); it != cache_.end()) {
    return it->second;
  }
  // Calibration pass: converge with a scratch meter so the caller never pays
  // for it (the paper's baseline knows the needed step sizes a priori).
  WorkMeter scratch;
  VAOLIB_ASSIGN_OR_RETURN(ResultObjectPtr object,
                          function_->Invoke(args, &scratch));
  VAOLIB_ASSIGN_OR_RETURN(const int steps, ConvergeToMinWidth(object.get()));

  Calibration record;
  record.value = object->bounds().Mid();
  record.cost = object->traditional_cost();
  record.final_width = object->bounds().Width();
  record.iterations = steps;
  cache_.emplace(args, record);
  return record;
}

Result<double> CalibratedBlackBox::Call(const std::vector<double>& args,
                                        WorkMeter* meter) const {
  VAOLIB_ASSIGN_OR_RETURN(const Calibration record, Calibrate(args));
  if (meter != nullptr) {
    meter->Charge(WorkKind::kExec, record.cost);
  }
  return record.value;
}

}  // namespace vaolib::vao
