// Copyright 2026 The vaolib Authors.
// The traditional "black box" UDF baseline of Sections 3.1 and 6.
//
// A BlackBoxFunction returns a single value at full accuracy -- the
// all-or-nothing interface VAOs replace. CalibratedBlackBox reproduces the
// paper's experimental baseline exactly: for each argument vector it first
// converges a VAO result object offline (the calibration pass, not charged
// to the caller), records the converged value and the step sizes/work a
// one-shot traditional solver would need for that accuracy, and then charges
// precisely that work on every Call(). As the paper notes, this
// *underestimates* a production black box, which would not know the needed
// step sizes a priori.

#ifndef VAOLIB_VAO_BLACK_BOX_H_
#define VAOLIB_VAO_BLACK_BOX_H_

#include <map>
#include <string>
#include <vector>

#include "vao/result_object.h"

namespace vaolib::vao {

/// \brief Traditional single-value UDF interface (the paper's Figure 2).
class BlackBoxFunction {
 public:
  virtual ~BlackBoxFunction() = default;

  /// Human-readable function name.
  virtual const std::string& name() const = 0;

  /// Number of arguments Call() expects.
  virtual int arity() const = 0;

  /// Runs the function to full accuracy, charging the traditional cost to
  /// \p meter, and returns the value.
  virtual Result<double> Call(const std::vector<double>& args,
                              WorkMeter* meter) const = 0;
};

/// \brief Black box built by calibrating a VariableAccuracyFunction, per the
/// Section 6 methodology. Calibrations are cached per argument vector.
class CalibratedBlackBox : public BlackBoxFunction {
 public:
  /// Wraps \p function (not owned; must outlive this object).
  explicit CalibratedBlackBox(const VariableAccuracyFunction* function);

  const std::string& name() const override { return function_->name(); }
  int arity() const override { return function_->arity(); }

  Result<double> Call(const std::vector<double>& args,
                      WorkMeter* meter) const override;

  /// Calibration record for one argument vector.
  struct Calibration {
    double value = 0.0;           ///< converged midpoint (error < minWidth/2)
    std::uint64_t cost = 0;       ///< one-shot traditional work units
    double final_width = 0.0;     ///< converged bounds width
    int iterations = 0;           ///< VAO iterations used during calibration
  };

  /// Converges a result object for \p args and returns the record, caching
  /// it. Calibration work is NOT charged to any caller meter.
  Result<Calibration> Calibrate(const std::vector<double>& args) const;

  /// Number of distinct argument vectors calibrated so far.
  std::size_t cache_size() const { return cache_.size(); }

 private:
  const VariableAccuracyFunction* function_;
  mutable std::map<std::vector<double>, Calibration> cache_;
};

/// \brief Drives \p object until AtStoppingCondition() (or error), the
/// "run every model to full accuracy" loop traditional systems are stuck
/// with. Returns the total number of Iterate() calls made.
///
/// The loop is budgeted: ResourceExhausted after \p max_iterations Iterate()
/// calls, or as soon as the bounds stop tightening while still above
/// minWidth (StallGuard) -- a stalled object would otherwise hang the loop.
Result<int> ConvergeToMinWidth(ResultObject* object,
                               std::uint64_t max_iterations = 50'000'000);

}  // namespace vaolib::vao

#endif  // VAOLIB_VAO_BLACK_BOX_H_
