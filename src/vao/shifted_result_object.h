// Copyright 2026 The vaolib Authors.
// ShiftedResultObject: the synthetic-data mechanism of Section 6.
//
// The paper's stress experiments keep real per-bond convergence behaviour
// but impose a chosen distribution of final results: each synthetic bond is
// mapped 1:1 to a real bond, iterations run against the real bond's result
// object, and the resulting bounds are shifted by the (target - real) delta.
// ShiftedResultObject implements exactly that wrapper.

#ifndef VAOLIB_VAO_SHIFTED_RESULT_OBJECT_H_
#define VAOLIB_VAO_SHIFTED_RESULT_OBJECT_H_

#include <utility>

#include "vao/result_object.h"

namespace vaolib::vao {

/// \brief Decorator adding a constant offset to an inner result object's
/// bounds (and bound predictions); cost behaviour is untouched.
class ShiftedResultObject : public ResultObject {
 public:
  ShiftedResultObject(ResultObjectPtr inner, double shift)
      : inner_(std::move(inner)), shift_(shift) {}

  Bounds bounds() const override {
    const Bounds b = inner_->bounds();
    return Bounds(b.lo + shift_, b.hi + shift_);
  }
  double min_width() const override { return inner_->min_width(); }
  Status Iterate() override { return inner_->Iterate(); }
  std::uint64_t est_cost() const override { return inner_->est_cost(); }
  Bounds est_bounds() const override {
    const Bounds b = inner_->est_bounds();
    return Bounds(b.lo + shift_, b.hi + shift_);
  }
  int iterations() const override { return inner_->iterations(); }
  std::uint64_t traditional_cost() const override {
    return inner_->traditional_cost();
  }

  /// The inner object's key: a shifted object batches whenever its backing
  /// object does (shifting only relabels bounds, never the solve).
  std::string batch_key() const override { return inner_->batch_key(); }
  int calibration_kind() const override {
    return inner_->calibration_kind();
  }
  std::string correlation_key() const override {
    return inner_->correlation_key();
  }

  double shift() const { return shift_; }
  const ResultObject& inner() const { return *inner_; }

  /// Mutable inner object, for the batch dispatcher to unwrap.
  ResultObject* mutable_inner() { return inner_.get(); }

 private:
  ResultObjectPtr inner_;
  double shift_;
};

}  // namespace vaolib::vao

#endif  // VAOLIB_VAO_SHIFTED_RESULT_OBJECT_H_
