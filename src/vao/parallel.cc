#include "vao/parallel.h"

#include "common/stall_guard.h"
#include "common/thread_pool.h"

namespace vaolib::vao {

Result<std::vector<ResultObjectPtr>> InvokeAll(
    const VariableAccuracyFunction& function,
    const std::vector<std::vector<double>>& rows, int threads,
    WorkMeter* meter) {
  const std::size_t n = rows.size();
  std::vector<ResultObjectPtr> objects(n);
  if (n == 0) return objects;

  // Every row is attempted; the body reports the first (lowest-indexed)
  // error in its contiguous chunk, and the pool returns the lowest-indexed
  // failing chunk's error -- together: the lowest-indexed failing row.
  auto invoke_range = [&](std::size_t begin, std::size_t end,
                          WorkMeter* /*chunk_meter*/) {
    Status first_error;
    for (std::size_t i = begin; i < end; ++i) {
      auto object = function.Invoke(rows[i], meter);
      if (!object.ok()) {
        if (first_error.ok()) first_error = object.status();
        continue;
      }
      objects[i] = std::move(object).value();
    }
    return first_error;
  };

  Status status;
  if (threads < 2 || n < 2) {
    status = invoke_range(0, n, nullptr);
  } else {
    ThreadPool::ForOptions options;
    options.max_parallelism = threads;
    // Objects stay bound to the caller's meter for later Iterate() calls,
    // so charge it directly (atomic) instead of per-chunk scratch meters;
    // totals are deterministic because per-row work is.
    status = ThreadPool::Shared().ParallelFor(n, options, /*meter=*/nullptr,
                                              invoke_range);
  }
  if (!status.ok()) return status;
  return objects;
}

Status ConvergeAllToMinWidth(const std::vector<ResultObject*>& objects,
                             int threads,
                             std::uint64_t max_iterations_per_object) {
  const std::size_t n = objects.size();
  for (const auto* object : objects) {
    if (object == nullptr) {
      return Status::InvalidArgument("null result object");
    }
  }
  if (n == 0) return Status::OK();

  auto converge_range = [&](std::size_t begin, std::size_t end,
                            WorkMeter* /*chunk_meter*/) {
    Status first_error;
    for (std::size_t i = begin; i < end; ++i) {
      std::uint64_t steps = 0;
      StallGuard guard;
      while (!objects[i]->AtStoppingCondition()) {
        if (steps >= max_iterations_per_object) {
          if (first_error.ok()) {
            first_error = Status::ResourceExhausted(
                "ConvergeAllToMinWidth exceeded the per-object iteration "
                "budget");
          }
          break;
        }
        const Status status = objects[i]->Iterate();
        if (!status.ok()) {
          if (first_error.ok()) first_error = status;
          break;  // this object cannot progress; move to the next one
        }
        ++steps;
        if (guard.Observe(objects[i]->bounds().Width())) {
          if (first_error.ok()) {
            first_error = Status::ResourceExhausted(
                "ConvergeAllToMinWidth stalled: bounds stopped tightening "
                "above minWidth");
          }
          break;
        }
      }
    }
    return first_error;
  };

  if (threads < 2 || n < 2) {
    return converge_range(0, n, nullptr);
  }
  ThreadPool::ForOptions options;
  options.max_parallelism = threads;
  return ThreadPool::Shared().ParallelFor(n, options, /*meter=*/nullptr,
                                          converge_range);
}

Status StepAll(const std::vector<ResultObject*>& objects, int threads) {
  const std::size_t n = objects.size();
  for (const auto* object : objects) {
    if (object == nullptr) {
      return Status::InvalidArgument("null result object");
    }
  }
  if (n == 0) return Status::OK();

  auto step_range = [&](std::size_t begin, std::size_t end,
                        WorkMeter* /*chunk_meter*/) {
    Status first_error;
    for (std::size_t i = begin; i < end; ++i) {
      const Status status = objects[i]->Iterate();
      if (!status.ok() && first_error.ok()) first_error = status;
    }
    return first_error;
  };

  if (threads < 2 || n < 2) {
    return step_range(0, n, nullptr);
  }
  ThreadPool::ForOptions options;
  options.max_parallelism = threads;
  return ThreadPool::Shared().ParallelFor(n, options, /*meter=*/nullptr,
                                          step_range);
}

}  // namespace vaolib::vao
