#include "vao/parallel.h"

#include "common/macros.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

namespace vaolib::vao {

Result<std::vector<ResultObjectPtr>> InvokeAll(
    const VariableAccuracyFunction& function,
    const std::vector<std::vector<double>>& rows, int threads,
    WorkMeter* meter) {
  const std::size_t n = rows.size();
  std::vector<ResultObjectPtr> objects(n);
  if (n == 0) return objects;

  if (threads < 2 || n < 2) {
    for (std::size_t i = 0; i < n; ++i) {
      auto object = function.Invoke(rows[i], meter);
      if (!object.ok()) return object.status();
      objects[i] = std::move(object).value();
    }
    return objects;
  }

  const auto worker_count = static_cast<std::size_t>(std::min<std::size_t>(
      static_cast<std::size_t>(threads), n));
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  Status first_error;

  auto worker = [&]() {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error.ok()) return;  // stop early after a failure
      }
      // WorkMeter charging is thread-safe, so all objects share the
      // caller's meter directly (and stay bound to it for later Iterates).
      auto object = function.Invoke(rows[i], meter);
      if (!object.ok()) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error.ok()) first_error = object.status();
        return;
      }
      objects[i] = std::move(object).value();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(worker_count);
  for (std::size_t t = 0; t < worker_count; ++t) pool.emplace_back(worker);
  for (auto& thread : pool) thread.join();

  if (!first_error.ok()) return first_error;
  return objects;
}

Status ConvergeAllToMinWidth(const std::vector<ResultObject*>& objects,
                             int threads) {
  const std::size_t n = objects.size();
  for (const auto* object : objects) {
    if (object == nullptr) {
      return Status::InvalidArgument("null result object");
    }
  }
  if (threads < 2 || n < 2) {
    for (auto* object : objects) {
      while (!object->AtStoppingCondition()) {
        VAOLIB_RETURN_IF_ERROR(object->Iterate());
      }
    }
    return Status::OK();
  }

  const auto worker_count = static_cast<std::size_t>(std::min<std::size_t>(
      static_cast<std::size_t>(threads), n));
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  Status first_error;

  auto worker = [&]() {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error.ok()) return;
      }
      while (!objects[i]->AtStoppingCondition()) {
        const Status status = objects[i]->Iterate();
        if (!status.ok()) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (first_error.ok()) first_error = status;
          return;
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(worker_count);
  for (std::size_t t = 0; t < worker_count; ++t) pool.emplace_back(worker);
  for (auto& thread : pool) thread.join();
  return first_error;
}

}  // namespace vaolib::vao
