// Copyright 2026 The vaolib Authors.
// CalibrationProbe: captures a result object's estCPU/estL/estH immediately
// before an Iterate() and, on Commit(), records them against the measured
// cost and the refined bounds into the estimator-calibration histograms
// (obs::RecordEstimatorSample). Reads only the free accessors -- bounds(),
// est_cost(), est_bounds(), WorkMeter::Total() -- so arming the probe never
// changes work totals or answers.

#ifndef VAOLIB_VAO_CALIBRATION_PROBE_H_
#define VAOLIB_VAO_CALIBRATION_PROBE_H_

#include <cstdint>

#include "common/bounds.h"
#include "common/work_meter.h"
#include "obs/trace.h"
#include "vao/result_object.h"

namespace vaolib::vao {

/// \brief Arms at the top of a result object's Iterate(); Commit() on the
/// success path records one calibration sample. A probe without a meter is
/// inert (the audit needs the measured cost to compare against estCPU).
class CalibrationProbe {
 public:
  CalibrationProbe(obs::SolverKind kind, const ResultObject& object,
                   const WorkMeter* meter)
      : active_(obs::Enabled() && meter != nullptr),
        kind_(kind),
        object_(object),
        meter_(meter) {
    if (active_) {
      est_bounds_ = object_.est_bounds();
      est_cost_ = static_cast<double>(object_.est_cost());
      work_before_ = meter_->Total();
    }
  }
  CalibrationProbe(const CalibrationProbe&) = delete;
  CalibrationProbe& operator=(const CalibrationProbe&) = delete;

  /// Records the sample against the object's current (post-Iterate) state.
  void Commit() const {
    if (!active_) return;
    const Bounds after = object_.bounds();
    obs::RecordEstimatorSample(
        kind_, est_cost_, est_bounds_.lo, est_bounds_.hi,
        static_cast<double>(meter_->Total() - work_before_), after.lo,
        after.hi);
  }

 private:
  const bool active_;
  const obs::SolverKind kind_;
  const ResultObject& object_;
  const WorkMeter* meter_;
  Bounds est_bounds_{0.0, 0.0};
  double est_cost_ = 0.0;
  std::uint64_t work_before_ = 0;
};

}  // namespace vaolib::vao

#endif  // VAOLIB_VAO_CALIBRATION_PROBE_H_
