// Copyright 2026 The vaolib Authors.
// CachingFunction: function-result caching layered over the VAO interface.
//
// Sections 2 and 3.1 of the paper note that function caches (Hellerstein &
// Naughton [20]) are orthogonal to VAOs and can be combined with them. This
// module is that combination for continuous queries: in a CQ, the same
// (args) pair recurs across stream ticks whenever an input revisits a value,
// and the *bounds already paid for* on a previous tick are still sound. A
// CachingFunction remembers, per argument vector, the tightest bounds any
// result object reached, and
//   * serves a zero-cost converged object when the cached bounds are already
//     below the function's minWidth, and
//   * otherwise starts a fresh object whose visible bounds are the running
//     intersection of its own bounds with the cached ones, writing the final
//     bounds back when the object is destroyed.
//
// Concurrency: the store is sharded by argument-vector hash; each shard has
// its own reader-writer lock, LRU list, and atomic hit/miss counters
// (aggregated on read, so the totals stay exact). A Lookup MISS -- the hot
// case for cold working sets, hit concurrently by every pool worker during
// InvokeAll -- takes only the shard's shared lock and bumps an atomic, so
// misses never serialize behind each other; only hits (which must splice
// the LRU list) and Updates take the exclusive lock. Lookup/Update -- and
// therefore CachingFunction::Invoke() and result-object destruction, which
// writes bounds back -- are safe from any thread, including pool workers
// (common/thread_pool.h).

#ifndef VAOLIB_VAO_FUNCTION_CACHE_H_
#define VAOLIB_VAO_FUNCTION_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "vao/result_object.h"

namespace vaolib::vao {

/// \brief Sharded LRU store of the best bounds seen per argument vector.
/// Shared (via shared_ptr) between the function and its live result objects
/// so write-back on object destruction is always safe -- even when the
/// destruction happens on a worker thread while other threads look up.
class BoundsCache {
 public:
  struct Entry {
    Bounds bounds;
    double min_width = 0.0;
  };

  /// \p capacity is the total entry budget, split evenly across
  /// \p shard_count mutex-guarded shards (clamped so each shard holds at
  /// least one entry). Eviction is LRU *per shard*: an adversarial hash
  /// skew can evict earlier than a global LRU would, which is an accepted
  /// approximation -- soundness never depends on what the cache retains.
  explicit BoundsCache(std::size_t capacity, std::size_t shard_count = 16);

  /// Returns the cached entry for \p args, refreshing its LRU position.
  /// Misses probe under the shard's shared lock only (concurrent misses do
  /// not serialize); hits upgrade to the exclusive lock for the LRU splice,
  /// re-checking the entry in between (it may have been evicted, in which
  /// case the lookup is a miss after all).
  std::optional<Entry> Lookup(const std::vector<double>& args);

  /// Records \p bounds for \p args, intersecting with any existing entry
  /// (both are sound, so the intersection is sound and at least as tight).
  /// Evicts the least-recently-used entry of the shard beyond its capacity.
  void Update(const std::vector<double>& args, const Bounds& bounds,
              double min_width);

  /// \brief Per-shard activity counters, as exposed by PerShardStats().
  struct ShardStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  /// \name Aggregated over shards under their locks: exact, not approximate,
  /// once concurrent writers have quiesced.
  /// @{
  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;
  /// @}

  /// Snapshot of every shard's counters, in shard order (observability
  /// support: exposes the skew the sharded design trades for concurrency).
  std::vector<ShardStats> PerShardStats() const;

  std::size_t shard_count() const { return shards_.size(); }

 private:
  using LruList = std::list<std::vector<double>>;
  struct Slot {
    Entry entry;
    LruList::iterator lru_position;
  };
  struct Shard {
    /// Shared for miss probes, exclusive for hits (LRU splice) and Updates.
    mutable std::shared_mutex mutex;
    std::map<std::vector<double>, Slot> entries;
    LruList lru;  // front = most recent
    /// Atomic so the miss path (shared lock) and stat readers (no lock at
    /// all) never contend on the exclusive lock.
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> evictions{0};
  };

  Shard& ShardFor(const std::vector<double>& args);

  std::size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// \brief Caching decorator over a VariableAccuracyFunction.
///
/// The inner function is borrowed and must outlive this object; result
/// objects returned by Invoke() may outlive the CachingFunction itself (the
/// cache is shared-owned). Invoke() is safe to call concurrently as long as
/// the inner function's Invoke() is (true for all solver-backed functions in
/// this library), so cached functions work under InvokeAll and the batch
/// operator paths.
class CachingFunction : public VariableAccuracyFunction {
 public:
  CachingFunction(const VariableAccuracyFunction* inner,
                  std::size_t capacity = 4096);

  const std::string& name() const override { return name_; }
  int arity() const override { return inner_->arity(); }
  Result<ResultObjectPtr> Invoke(const std::vector<double>& args,
                                 WorkMeter* meter) const override;

  const BoundsCache& cache() const { return *cache_; }

 private:
  const VariableAccuracyFunction* inner_;
  std::string name_;
  std::shared_ptr<BoundsCache> cache_;
};

}  // namespace vaolib::vao

#endif  // VAOLIB_VAO_FUNCTION_CACHE_H_
