// Copyright 2026 The vaolib Authors.
// CachingFunction: function-result caching layered over the VAO interface.
//
// Sections 2 and 3.1 of the paper note that function caches (Hellerstein &
// Naughton [20]) are orthogonal to VAOs and can be combined with them. This
// module is that combination for continuous queries: in a CQ, the same
// (args) pair recurs across stream ticks whenever an input revisits a value,
// and the *bounds already paid for* on a previous tick are still sound. A
// CachingFunction remembers, per argument vector, the tightest bounds any
// result object reached, and
//   * serves a zero-cost converged object when the cached bounds are already
//     below the function's minWidth, and
//   * otherwise starts a fresh object whose visible bounds are the running
//     intersection of its own bounds with the cached ones, writing the final
//     bounds back when the object is destroyed.

#ifndef VAOLIB_VAO_FUNCTION_CACHE_H_
#define VAOLIB_VAO_FUNCTION_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "vao/result_object.h"

namespace vaolib::vao {

/// \brief LRU store of the best bounds seen per argument vector.
/// Shared (via shared_ptr) between the function and its live result objects
/// so write-back on object destruction is always safe.
class BoundsCache {
 public:
  struct Entry {
    Bounds bounds;
    double min_width = 0.0;
  };

  explicit BoundsCache(std::size_t capacity) : capacity_(capacity) {}

  /// Returns the cached entry for \p args, refreshing its LRU position.
  std::optional<Entry> Lookup(const std::vector<double>& args);

  /// Records \p bounds for \p args, intersecting with any existing entry
  /// (both are sound, so the intersection is sound and at least as tight).
  /// Evicts the least-recently-used entry beyond capacity.
  void Update(const std::vector<double>& args, const Bounds& bounds,
              double min_width);

  std::size_t size() const { return entries_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  using LruList = std::list<std::vector<double>>;
  struct Slot {
    Entry entry;
    LruList::iterator lru_position;
  };

  std::size_t capacity_;
  std::map<std::vector<double>, Slot> entries_;
  LruList lru_;  // front = most recent
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// \brief Caching decorator over a VariableAccuracyFunction.
///
/// The inner function is borrowed and must outlive this object; result
/// objects returned by Invoke() may outlive the CachingFunction itself (the
/// cache is shared-owned).
class CachingFunction : public VariableAccuracyFunction {
 public:
  CachingFunction(const VariableAccuracyFunction* inner,
                  std::size_t capacity = 4096);

  const std::string& name() const override { return name_; }
  int arity() const override { return inner_->arity(); }
  Result<ResultObjectPtr> Invoke(const std::vector<double>& args,
                                 WorkMeter* meter) const override;

  const BoundsCache& cache() const { return *cache_; }

 private:
  const VariableAccuracyFunction* inner_;
  std::string name_;
  std::shared_ptr<BoundsCache> cache_;
};

}  // namespace vaolib::vao

#endif  // VAOLIB_VAO_FUNCTION_CACHE_H_
