#include "workload/shift_scheme.h"

#include <cmath>

#include "common/macros.h"
#include "vao/black_box.h"
#include "vao/shifted_result_object.h"

namespace vaolib::workload {

Result<std::vector<double>> ConvergedValues(
    const vao::VariableAccuracyFunction& function,
    const std::vector<std::vector<double>>& rows) {
  std::vector<double> values;
  values.reserve(rows.size());
  for (const auto& row : rows) {
    WorkMeter scratch;
    VAOLIB_ASSIGN_OR_RETURN(vao::ResultObjectPtr object,
                            function.Invoke(row, &scratch));
    VAOLIB_RETURN_IF_ERROR(vao::ConvergeToMinWidth(object.get()).status());
    values.push_back(object->bounds().Mid());
  }
  return values;
}

double DrawTarget(const TargetDistribution& target, Rng* rng) {
  switch (target.shape) {
    case TargetShape::kGaussian:
      return rng->Gaussian(target.mean, target.stddev);
    case TargetShape::kHalfGaussianBelow:
      return target.mean - std::abs(rng->Gaussian(0.0, target.stddev));
  }
  return target.mean;
}

Result<std::vector<double>> ComputeShiftDeltas(
    const std::vector<double>& real_values, const TargetDistribution& target,
    Rng* rng) {
  if (rng == nullptr) {
    return Status::InvalidArgument("shift scheme requires an Rng");
  }
  if (!(target.stddev >= 0.0)) {
    return Status::InvalidArgument("target stddev must be >= 0");
  }
  const std::size_t n = real_values.size();
  std::vector<double> generated(n);
  for (auto& g : generated) g = DrawTarget(target, rng);

  // Random one-to-one mapping between generated results and real bonds.
  const std::vector<std::size_t> perm = rng->Permutation(n);
  std::vector<double> deltas(n);
  for (std::size_t i = 0; i < n; ++i) {
    deltas[i] = generated[perm[i]] - real_values[i];
  }
  return deltas;
}

Result<vao::ResultObjectPtr> InvokeShifted(
    const vao::VariableAccuracyFunction& function,
    const std::vector<double>& row, double delta, WorkMeter* meter) {
  VAOLIB_ASSIGN_OR_RETURN(vao::ResultObjectPtr inner,
                          function.Invoke(row, meter));
  return vao::ResultObjectPtr(
      new vao::ShiftedResultObject(std::move(inner), delta));
}

}  // namespace vaolib::workload
