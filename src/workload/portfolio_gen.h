// Copyright 2026 The vaolib Authors.
// PortfolioGenerator: synthesizes the 500-bond MBS-like portfolio standing
// in for the paper's proprietary Freddie Mac Gold PC data set (see
// DESIGN.md, "Data substitutions"). Heterogeneous cash flows, maturities,
// and model parameters are drawn deterministically from a seed; defaults
// are tuned so converged prices cluster near par with a spread comparable
// to the paper's reported $7.78 standard deviation.

#ifndef VAOLIB_WORKLOAD_PORTFOLIO_GEN_H_
#define VAOLIB_WORKLOAD_PORTFOLIO_GEN_H_

#include <cstdint>
#include <vector>

#include "finance/bond.h"

namespace vaolib::workload {

/// \brief Parameter ranges for the synthetic portfolio; each bond draws
/// every field uniformly from its range.
struct PortfolioSpec {
  int count = 500;
  double cashflow_min = 20.0;   ///< $/year per $100 face
  double cashflow_max = 27.0;
  double maturity_min = 4.0;    ///< remaining years (seasoned pools)
  double maturity_max = 6.0;
  double sigma_min = 0.03;
  double sigma_max = 0.05;
  double kappa_min = 0.10;
  double kappa_max = 0.30;
  double mu_min = 0.045;
  double mu_max = 0.075;
  double q_min = 0.0;
  double q_max = 0.05;
  double spread_min = 0.0;
  double spread_max = 0.02;
};

/// \brief Generates \p spec.count bonds from \p seed. Deterministic.
std::vector<finance::Bond> GeneratePortfolio(std::uint64_t seed,
                                             const PortfolioSpec& spec = {});

}  // namespace vaolib::workload

#endif  // VAOLIB_WORKLOAD_PORTFOLIO_GEN_H_
