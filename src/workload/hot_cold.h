// Copyright 2026 The vaolib Authors.
// Hot-cold weight generation for the SUM experiments (Section 6.3): a fixed
// total weight is split between a randomly chosen hot set (10% of bonds in
// the paper) and the remaining cold set, with the hot set's share swept.

#ifndef VAOLIB_WORKLOAD_HOT_COLD_H_
#define VAOLIB_WORKLOAD_HOT_COLD_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace vaolib::workload {

/// \brief Hot-cold weighting parameters.
struct HotColdSpec {
  std::size_t count = 500;      ///< number of weights
  double hot_fraction = 0.10;   ///< fraction of items in the hot set
  double hot_weight_share = 0.5;///< fraction of total weight on the hot set
  double total_weight = 500.0;  ///< the paper uses total == cardinality
};

/// \brief Generates weights per \p spec; hot members are chosen uniformly at
/// random by \p rng and each set's weight is spread evenly inside the set.
///
/// \return InvalidArgument for empty specs or shares outside [0, 1].
Result<std::vector<double>> HotColdWeights(const HotColdSpec& spec, Rng* rng);

}  // namespace vaolib::workload

#endif  // VAOLIB_WORKLOAD_HOT_COLD_H_
