#include "workload/selectivity.h"

#include <algorithm>
#include <cmath>

namespace vaolib::workload {

Result<double> ConstantForGreaterSelectivity(const std::vector<double>& values,
                                             double selectivity) {
  if (values.empty()) {
    return Status::InvalidArgument("selectivity over empty values");
  }
  if (selectivity < 0.0 || selectivity > 1.0) {
    return Status::InvalidArgument("selectivity must lie in [0, 1]");
  }
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());

  const auto n = sorted.size();
  const auto pass = static_cast<std::size_t>(
      std::llround(selectivity * static_cast<double>(n)));
  if (pass == 0) {
    return sorted.front() + 1.0;  // nothing passes
  }
  if (pass >= n) {
    return sorted.back() - 1.0;  // everything passes
  }
  // Halfway between the last passing and first failing value.
  return 0.5 * (sorted[pass - 1] + sorted[pass]);
}

double MeasuredGreaterSelectivity(const std::vector<double>& values,
                                  double constant) {
  if (values.empty()) return 0.0;
  std::size_t pass = 0;
  for (const double v : values) {
    if (v > constant) ++pass;
  }
  return static_cast<double>(pass) / static_cast<double>(values.size());
}

}  // namespace vaolib::workload
