// Copyright 2026 The vaolib Authors.
// Selectivity-targeted predicate constants for the Figure 8/9 sweeps: given
// the converged function results, pick the constant that makes a ">"
// predicate pass a requested fraction of rows.

#ifndef VAOLIB_WORKLOAD_SELECTIVITY_H_
#define VAOLIB_WORKLOAD_SELECTIVITY_H_

#include <vector>

#include "common/result.h"

namespace vaolib::workload {

/// \brief Returns a constant c such that  value > c  holds for (approximately)
/// \p selectivity * values.size() of the inputs: the midpoint between the
/// k-th and (k+1)-th largest values, clamping at the extremes.
///
/// \return InvalidArgument for empty inputs or selectivity outside [0, 1].
Result<double> ConstantForGreaterSelectivity(const std::vector<double>& values,
                                             double selectivity);

/// \brief Fraction of \p values strictly greater than \p constant.
double MeasuredGreaterSelectivity(const std::vector<double>& values,
                                  double constant);

}  // namespace vaolib::workload

#endif  // VAOLIB_WORKLOAD_SELECTIVITY_H_
