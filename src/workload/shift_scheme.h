// Copyright 2026 The vaolib Authors.
// The Section 6 synthetic-data scheme: impose a chosen distribution of
// function results while keeping each function's real convergence behaviour.
//
// Procedure (verbatim from the paper): converge every real bond to $.01 to
// learn its true result; draw the same number of results from the target
// distribution; randomly map generated results 1:1 onto real bonds; compute
// each delta = generated - real; and run every synthetic iteration against
// the real bond's result object, shifting the bounds by the delta.

#ifndef VAOLIB_WORKLOAD_SHIFT_SCHEME_H_
#define VAOLIB_WORKLOAD_SHIFT_SCHEME_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "vao/result_object.h"

namespace vaolib::workload {

/// \brief Target distribution shapes used by the stress experiments.
enum class TargetShape {
  /// Gaussian(mean, stddev): the Figure 10 selection stressor, with the
  /// mean placed on the predicate constant.
  kGaussian,
  /// mean - |N(0, stddev)|: the lower half-Gaussian of Figure 11, clustering
  /// results immediately below a common maximum at `mean`.
  kHalfGaussianBelow,
};

/// \brief Target distribution parameters.
struct TargetDistribution {
  TargetShape shape = TargetShape::kGaussian;
  double mean = 100.0;
  double stddev = 1.0;  ///< >= 0; 0 makes every result exactly `mean`
};

/// \brief Converges a fresh result object per argument row (scratch meter;
/// work not charged anywhere) and returns the converged midpoints -- the
/// "real results known within $.01" step of the scheme.
Result<std::vector<double>> ConvergedValues(
    const vao::VariableAccuracyFunction& function,
    const std::vector<std::vector<double>>& rows);

/// \brief Draws one value from \p target.
double DrawTarget(const TargetDistribution& target, Rng* rng);

/// \brief Computes per-row shift deltas: draws rows.size() target values,
/// randomly permutes the mapping, and returns generated[perm[i]] - real[i].
Result<std::vector<double>> ComputeShiftDeltas(
    const std::vector<double>& real_values, const TargetDistribution& target,
    Rng* rng);

/// \brief Wraps a fresh invocation of \p function on \p row in a
/// ShiftedResultObject carrying \p delta.
Result<vao::ResultObjectPtr> InvokeShifted(
    const vao::VariableAccuracyFunction& function,
    const std::vector<double>& row, double delta, WorkMeter* meter);

}  // namespace vaolib::workload

#endif  // VAOLIB_WORKLOAD_SHIFT_SCHEME_H_
