#include "workload/hot_cold.h"

#include <algorithm>

namespace vaolib::workload {

Result<std::vector<double>> HotColdWeights(const HotColdSpec& spec, Rng* rng) {
  if (rng == nullptr) {
    return Status::InvalidArgument("hot-cold weights require an Rng");
  }
  if (spec.count == 0) {
    return Status::InvalidArgument("hot-cold weight count must be > 0");
  }
  if (spec.hot_fraction < 0.0 || spec.hot_fraction > 1.0 ||
      spec.hot_weight_share < 0.0 || spec.hot_weight_share > 1.0) {
    return Status::InvalidArgument("hot-cold shares must lie in [0, 1]");
  }
  if (!(spec.total_weight > 0.0)) {
    return Status::InvalidArgument("total weight must be > 0");
  }

  const auto hot_count = std::min<std::size_t>(
      spec.count,
      std::max<std::size_t>(
          1, static_cast<std::size_t>(spec.hot_fraction *
                                      static_cast<double>(spec.count))));
  const std::size_t cold_count = spec.count - hot_count;

  const std::vector<std::size_t> perm = rng->Permutation(spec.count);
  const double hot_total = spec.total_weight * spec.hot_weight_share;
  const double cold_total = spec.total_weight - hot_total;

  std::vector<double> weights(spec.count, 0.0);
  for (std::size_t i = 0; i < hot_count; ++i) {
    weights[perm[i]] = hot_total / static_cast<double>(hot_count);
  }
  if (cold_count > 0) {
    for (std::size_t i = hot_count; i < spec.count; ++i) {
      weights[perm[i]] = cold_total / static_cast<double>(cold_count);
    }
  }
  return weights;
}

}  // namespace vaolib::workload
