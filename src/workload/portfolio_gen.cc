#include "workload/portfolio_gen.h"

#include "common/rng.h"

namespace vaolib::workload {

std::vector<finance::Bond> GeneratePortfolio(std::uint64_t seed,
                                             const PortfolioSpec& spec) {
  Rng rng(seed);
  std::vector<finance::Bond> bonds;
  bonds.reserve(static_cast<std::size_t>(spec.count));
  for (int i = 0; i < spec.count; ++i) {
    finance::Bond bond;
    bond.id = i;
    bond.name = "MBS-1993-" + std::to_string(1000 + i);
    bond.annual_cashflow = rng.Uniform(spec.cashflow_min, spec.cashflow_max);
    bond.maturity_years = rng.Uniform(spec.maturity_min, spec.maturity_max);
    bond.sigma = rng.Uniform(spec.sigma_min, spec.sigma_max);
    bond.kappa = rng.Uniform(spec.kappa_min, spec.kappa_max);
    bond.mu = rng.Uniform(spec.mu_min, spec.mu_max);
    bond.q = rng.Uniform(spec.q_min, spec.q_max);
    bond.spread = rng.Uniform(spec.spread_min, spec.spread_max);
    bonds.push_back(bond);
  }
  return bonds;
}

}  // namespace vaolib::workload
