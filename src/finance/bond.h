// Copyright 2026 The vaolib Authors.
// Bond: static description of a mortgage-backed-security-like bond, the BD
// relation of the paper's running example. The paper evaluated on 500
// Freddie Mac Gold PC 30-year MBS issued in 1993 (proprietary data); the
// workload module synthesizes a portfolio with comparable heterogeneity.

#ifndef VAOLIB_FINANCE_BOND_H_
#define VAOLIB_FINANCE_BOND_H_

#include <cstdint>
#include <string>
#include <vector>

namespace vaolib::finance {

/// \brief One bond issue, parameterizing the Stanton-style valuation PDE.
struct Bond {
  std::int64_t id = 0;
  std::string name;

  /// Total passthrough cash-flow rate in dollars per year per $100 face
  /// (coupon plus scheduled amortization for an MBS pool).
  double annual_cashflow = 23.0;

  /// Remaining time to maturity, in years (t_mat of the paper).
  double maturity_years = 5.0;

  /// Short-rate volatility sigma of the valuation PDE.
  double sigma = 0.04;

  /// Mean-reversion speed kappa of the short-rate drift kappa*mu-(kappa+q)x.
  double kappa = 0.2;

  /// Long-run mean rate mu.
  double mu = 0.06;

  /// Risk-adjustment q in the drift term.
  double q = 0.02;

  /// Credit/prepayment spread added to the discount rate: discounting uses
  /// r(x) = x + spread.
  double spread = 0.005;
};

/// \brief A timestamped interest-rate observation (the IR stream tuple).
struct RateTick {
  double time_seconds = 0.0;  ///< arrival time from stream start
  double rate = 0.0575;       ///< decimal yield, e.g. 0.0575 = 5.75%
};

/// \brief Synthesizes a 10-year-CMT-like yield path: a mean-reverting daily
/// random walk around \p anchor starting at \p start, one tick per
/// \p mean_interarrival_seconds on average (the paper observed 1-4 minute
/// Treasury-driven updates). Deterministic per \p seed.
std::vector<RateTick> SynthesizeRateSeries(std::uint64_t seed, int num_ticks,
                                           double start = 0.0575,
                                           double anchor = 0.0575,
                                           double tick_volatility = 0.0004,
                                           double mean_reversion = 0.05,
                                           double mean_interarrival_seconds =
                                               150.0);

}  // namespace vaolib::finance

#endif  // VAOLIB_FINANCE_BOND_H_
