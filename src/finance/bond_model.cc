#include "finance/bond_model.h"

#include <cmath>
#include <utility>

#include "common/macros.h"

namespace vaolib::finance {

numeric::Pde1dProblem MakeBondPdeProblem(const Bond& bond,
                                         const BondModelConfig& config) {
  numeric::Pde1dProblem problem;
  const double half_var = 0.5 * bond.sigma * bond.sigma;
  const double drift_const = bond.kappa * bond.mu;
  const double drift_slope = bond.kappa + bond.q;
  const double cashflow = bond.annual_cashflow;
  const double spread = bond.spread;

  problem.diffusion = [half_var](double) { return half_var; };
  problem.convection = [drift_const, drift_slope](double x) {
    return drift_const - drift_slope * x;
  };
  problem.reaction = [spread](double x) { return x + spread; };
  problem.source = [cashflow](double) { return cashflow; };
  problem.terminal = [](double) { return 0.0; };

  problem.x_min = config.x_min;
  problem.x_max = config.x_max;
  problem.t_end = bond.maturity_years;
  // The financial "linearity" boundary condition F_xx = 0 at both rate
  // extremes, standard for one-factor bond PDE lattices.
  problem.left_boundary = numeric::BoundaryKind::kLinear;
  problem.right_boundary = numeric::BoundaryKind::kLinear;
  return problem;
}

BondPricingFunction::BondPricingFunction(std::vector<Bond> bonds,
                                         BondModelConfig config)
    : bonds_(std::move(bonds)), config_(std::move(config)) {}

Result<vao::ResultObjectPtr> BondPricingFunction::Invoke(
    const std::vector<double>& args, WorkMeter* meter) const {
  if (args.size() != 2) {
    return Status::InvalidArgument("bond_model expects (rate, bond_index)");
  }
  const double rate = args[0];
  if (rate < config_.x_min || rate > config_.x_max) {
    return Status::OutOfRange("interest rate outside model domain");
  }
  const double index_arg = args[1];
  if (!(index_arg >= 0.0) || index_arg != std::floor(index_arg) ||
      index_arg >= static_cast<double>(bonds_.size())) {
    return Status::InvalidArgument("bond index out of range");
  }
  const auto& bond = bonds_[static_cast<std::size_t>(index_arg)];
  return vao::PdeResultObject::Create(MakeBondPdeProblem(bond, config_), rate,
                                      config_.pde, meter);
}

}  // namespace vaolib::finance
