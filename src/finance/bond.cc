#include "finance/bond.h"

#include <algorithm>

#include "common/rng.h"

namespace vaolib::finance {

std::vector<RateTick> SynthesizeRateSeries(std::uint64_t seed, int num_ticks,
                                           double start, double anchor,
                                           double tick_volatility,
                                           double mean_reversion,
                                           double mean_interarrival_seconds) {
  Rng rng(seed);
  std::vector<RateTick> ticks;
  ticks.reserve(static_cast<std::size_t>(std::max(num_ticks, 0)));
  double t = 0.0;
  double rate = start;
  for (int i = 0; i < num_ticks; ++i) {
    ticks.push_back(RateTick{t, rate});
    t += rng.Exponential(1.0 / mean_interarrival_seconds);
    rate += mean_reversion * (anchor - rate) +
            rng.Gaussian(0.0, tick_volatility);
    rate = std::clamp(rate, 0.005, 0.18);
  }
  return ticks;
}

}  // namespace vaolib::finance
