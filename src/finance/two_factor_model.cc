#include "finance/two_factor_model.h"

#include <cmath>
#include <utility>

#include "common/macros.h"

namespace vaolib::finance {

numeric::Pde2dProblem MakeTwoFactorPdeProblem(
    const Bond& bond, const TwoFactorModelConfig& config) {
  numeric::Pde2dProblem problem;
  const double half_var_x = 0.5 * bond.sigma * bond.sigma;
  const double half_var_y =
      0.5 * config.factor.sigma_y * config.factor.sigma_y;
  const double drift_const = bond.kappa * bond.mu;
  const double drift_slope = bond.kappa + bond.q;
  const double ky = config.factor.kappa_y;
  const double my = config.factor.mu_y;
  const double cashflow = bond.annual_cashflow;
  const double slope = config.factor.cashflow_slope;
  const double curve = config.factor.cashflow_curve;
  const double spread = bond.spread;

  problem.diffusion_x = [half_var_x](double, double) { return half_var_x; };
  problem.diffusion_y = [half_var_y](double, double) { return half_var_y; };
  problem.convection_x = [drift_const, drift_slope](double x, double) {
    return drift_const - drift_slope * x;
  };
  problem.convection_y = [ky, my](double, double y) {
    return ky * (my - y);
  };
  problem.reaction = [spread](double x, double) { return x + spread; };
  problem.source = [cashflow, slope, curve, my](double, double y) {
    // Prepayment-sensitive passthrough: higher index, faster cashflow,
    // with convexity in the response.
    const double d = y - my;
    return cashflow * (1.0 + slope * d + curve * d * d);
  };
  problem.terminal = [](double, double) { return 0.0; };

  problem.x_min = config.x_min;
  problem.x_max = config.x_max;
  problem.y_min = config.factor.y_min;
  problem.y_max = config.factor.y_max;
  problem.t_end = bond.maturity_years;
  return problem;
}

TwoFactorBondPricingFunction::TwoFactorBondPricingFunction(
    std::vector<Bond> bonds, TwoFactorModelConfig config)
    : bonds_(std::move(bonds)), config_(std::move(config)) {}

Result<vao::ResultObjectPtr> TwoFactorBondPricingFunction::Invoke(
    const std::vector<double>& args, WorkMeter* meter) const {
  if (args.size() != 3) {
    return Status::InvalidArgument(
        "bond_model_2f expects (rate, index_level, bond_index)");
  }
  const double rate = args[0];
  if (rate < config_.x_min || rate > config_.x_max) {
    return Status::OutOfRange("interest rate outside model domain");
  }
  const double level = args[1];
  if (level < config_.factor.y_min || level > config_.factor.y_max) {
    return Status::OutOfRange("index level outside model domain");
  }
  const double index_arg = args[2];
  if (!(index_arg >= 0.0) || index_arg != std::floor(index_arg) ||
      index_arg >= static_cast<double>(bonds_.size())) {
    return Status::InvalidArgument("bond index out of range");
  }
  const auto& bond = bonds_[static_cast<std::size_t>(index_arg)];
  return vao::Pde2dResultObject::Create(
      MakeTwoFactorPdeProblem(bond, config_), rate, level, config_.pde,
      meter);
}

}  // namespace vaolib::finance
