// Copyright 2026 The vaolib Authors.
// Two-factor bond valuation: a synthetic analogue of the Downing-Stanton-
// Wallace two-factor mortgage model the paper cites as [11], where the
// second state variable (a log house-price-style index) drives prepayment
// and therefore the passthrough cash-flow rate:
//
//   (1/2)sx^2 F_xx + (1/2)sy^2 F_yy
//     + [kx*mx - (kx+q) x] F_x + ky(my - y) F_y
//     + F_t - (x + spread) F + C(y) = 0,     F(x, y, t_mat) = 0,
//
//   C(y) = annual_cashflow * (1 + slope*(y - my) + curve*(y - my)^2)
//   (prepayment response with convexity).
//
// The correlation between the factors is dropped (no F_xy term; see
// numeric/pde2d_solver.h), a substitution documented in DESIGN.md.

#ifndef VAOLIB_FINANCE_TWO_FACTOR_MODEL_H_
#define VAOLIB_FINANCE_TWO_FACTOR_MODEL_H_

#include <string>
#include <vector>

#include "finance/bond.h"
#include "numeric/pde2d_solver.h"
#include "vao/pde2d_result_object.h"

namespace vaolib::finance {

/// \brief Second-factor parameters layered on a Bond.
struct TwoFactorParams {
  double sigma_y = 0.10;        ///< volatility of the index factor
  double kappa_y = 0.15;        ///< mean-reversion speed of the index
  double mu_y = 0.0;            ///< long-run index level (log scale)
  double cashflow_slope = 0.5;  ///< dC/dy sensitivity of prepayment cashflow
  double cashflow_curve = 0.2;  ///< convexity of the prepayment response
  double y_min = -0.5;
  double y_max = 0.5;
};

/// \brief Model-wide configuration for the two-factor pricing function.
struct TwoFactorModelConfig {
  double x_min = 0.0;
  double x_max = 0.12;
  TwoFactorParams factor;
  vao::Pde2dResultOptions pde;
};

/// \brief Builds the two-factor valuation problem for \p bond.
numeric::Pde2dProblem MakeTwoFactorPdeProblem(
    const Bond& bond, const TwoFactorModelConfig& config);

/// \brief Two-factor model() UDF: args = {rate, index_level, bond_index}.
class TwoFactorBondPricingFunction : public vao::VariableAccuracyFunction {
 public:
  TwoFactorBondPricingFunction(std::vector<Bond> bonds,
                               TwoFactorModelConfig config);

  const std::string& name() const override { return name_; }
  int arity() const override { return 3; }
  Result<vao::ResultObjectPtr> Invoke(const std::vector<double>& args,
                                      WorkMeter* meter) const override;

  const std::vector<Bond>& bonds() const { return bonds_; }
  const TwoFactorModelConfig& config() const { return config_; }

  std::vector<double> ArgsFor(double rate, double index_level,
                              std::size_t bond_index) const {
    return {rate, index_level, static_cast<double>(bond_index)};
  }

 private:
  std::string name_ = "bond_model_2f";
  std::vector<Bond> bonds_;
  TwoFactorModelConfig config_;
};

}  // namespace vaolib::finance

#endif  // VAOLIB_FINANCE_TWO_FACTOR_MODEL_H_
