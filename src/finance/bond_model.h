// Copyright 2026 The vaolib Authors.
// BondModel: the Stanton-style [28] one-factor bond valuation model of the
// paper's experiments, expressed as the Section 4.1 PDE
//
//   (1/2) sigma^2 F_xx + [kappa*mu - (kappa+q) x] F_x + F_t - r(x) F + C = 0
//
// with terminal condition F(x, t_mat) = 0 (all value is in the passthrough
// cash-flow stream C, per the paper's "value of a bond is 0 at maturity").
// Discounting uses r(x) = x + spread so the price genuinely depends on the
// queried interest rate. The model is exposed both as a
// VariableAccuracyFunction over (rate, bond_index) -- the VAO path -- and,
// via CalibratedBlackBox, as the traditional baseline.

#ifndef VAOLIB_FINANCE_BOND_MODEL_H_
#define VAOLIB_FINANCE_BOND_MODEL_H_

#include <string>
#include <vector>

#include "finance/bond.h"
#include "numeric/pde_solver.h"
#include "vao/pde_result_object.h"
#include "vao/result_object.h"

namespace vaolib::finance {

/// \brief Model-wide configuration shared by all bonds.
struct BondModelConfig {
  /// Short-rate PDE domain; queries outside are rejected.
  double x_min = 0.0;
  double x_max = 0.12;
  /// Result-object tuning: initial grid, minWidth ($.01 for prices),
  /// extrapolation safety factor.
  vao::PdeResultOptions pde;
};

/// \brief Builds the valuation PDE problem for \p bond under \p config.
numeric::Pde1dProblem MakeBondPdeProblem(const Bond& bond,
                                         const BondModelConfig& config);

/// \brief The model() UDF of the paper's queries: a VariableAccuracyFunction
/// over a fixed portfolio, invoked with args = {interest_rate, bond_index}.
class BondPricingFunction : public vao::VariableAccuracyFunction {
 public:
  BondPricingFunction(std::vector<Bond> bonds, BondModelConfig config);

  const std::string& name() const override { return name_; }
  int arity() const override { return 2; }

  /// args[0] = decimal interest rate in [x_min, x_max]; args[1] = bond index
  /// (integral value in [0, bonds().size())).
  Result<vao::ResultObjectPtr> Invoke(const std::vector<double>& args,
                                      WorkMeter* meter) const override;

  const std::vector<Bond>& bonds() const { return bonds_; }
  const BondModelConfig& config() const { return config_; }

  /// Convenience: argument vector for (rate, bond i).
  std::vector<double> ArgsFor(double rate, std::size_t bond_index) const {
    return {rate, static_cast<double>(bond_index)};
  }

 private:
  std::string name_ = "bond_model";
  std::vector<Bond> bonds_;
  BondModelConfig config_;
};

}  // namespace vaolib::finance

#endif  // VAOLIB_FINANCE_BOND_MODEL_H_
