#include "obs/execution_report.h"

#include <cmath>
#include <cstdio>
#include <memory>

#include "common/macros.h"
#include "common/status.h"
#include "obs/json_util.h"

namespace vaolib::obs {

namespace {

// max_digits10 rendering so FromJson (strtod) round-trips bit-exactly.
// Non-finite values would print "nan"/"inf" -- invalid JSON that breaks the
// round-trip -- so they render as 0 (they can only arise from a poisoned
// accumulator; the calibration sums drop non-finite samples upstream).
void AppendExactDouble(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << 0;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

}  // namespace

WorkByKind WorkByKind::Capture(const WorkMeter& meter) {
  WorkByKind w;
  w.exec = meter.Count(WorkKind::kExec);
  w.get_state = meter.Count(WorkKind::kGetState);
  w.store_state = meter.Count(WorkKind::kStoreState);
  w.choose_iter = meter.Count(WorkKind::kChooseIter);
  return w;
}

WorkByKind WorkByKind::DeltaSince(const WorkByKind& before) const {
  WorkByKind d;
  d.exec = exec - before.exec;
  d.get_state = get_state - before.get_state;
  d.store_state = store_state - before.store_state;
  d.choose_iter = choose_iter - before.choose_iter;
  return d;
}

void ExecutionReport::RenderJson(std::ostream& os) const {
  os << "{";
  os << "\"query_kind\": \"" << query_kind << "\", ";
  os << "\"work_units\": {\"exec\": " << work.exec
     << ", \"get_state\": " << work.get_state
     << ", \"store_state\": " << work.store_state
     << ", \"choose_iter\": " << work.choose_iter
     << ", \"total\": " << work.Total() << "}, ";
  os << "\"solver_work_units\": {";
  for (int k = 0; k < kNumSolverKinds; ++k) {
    if (k > 0) os << ", ";
    os << "\"" << SolverKindName(static_cast<SolverKind>(k))
       << "\": " << solver_work[k];
  }
  os << "}, ";
  os << "\"operator\": {\"iterations\": " << iterations
     << ", \"coarse_iterations\": " << coarse_iterations
     << ", \"greedy_iterations\": " << greedy_iterations
     << ", \"finalize_iterations\": " << finalize_iterations
     << ", \"choose_steps\": " << choose_steps
     << ", \"objects_touched\": " << objects_touched
     << ", \"stalled_objects\": " << stalled_objects << "}, ";
  os << "\"rows\": {\"scanned\": " << rows_scanned
     << ", \"short_circuited\": " << rows_short_circuited
     << ", \"quarantined\": " << rows_quarantined << "}, ";
  os << "\"cache\": {\"present\": " << (has_cache ? "true" : "false")
     << ", \"hits\": " << cache_hits << ", \"misses\": " << cache_misses
     << ", \"evictions\": " << cache_evictions << ", \"shards\": [";
  for (std::size_t s = 0; s < cache_shards.size(); ++s) {
    if (s > 0) os << ", ";
    os << "{\"hits\": " << cache_shards[s].hits
       << ", \"misses\": " << cache_shards[s].misses
       << ", \"evictions\": " << cache_shards[s].evictions << "}";
  }
  os << "]}, ";
  os << "\"thread_pool\": {\"parallel_fors\": " << pool_parallel_fors
     << ", \"tasks_enqueued\": " << pool_tasks_enqueued
     << ", \"chunks_executed\": " << pool_chunks_executed
     << ", \"queue_wait_nanos\": " << pool_queue_wait_nanos << "}, ";
  os << "\"scheduler\": {\"scheduled\": " << (scheduled ? "true" : "false")
     << ", \"policy\": \"" << scheduler_policy << "\""
     << ", \"budget\": " << scheduler_budget
     << ", \"spent\": " << scheduler_spent
     << ", \"steps\": " << scheduler_steps
     << ", \"finished_at\": " << scheduler_finished_at
     << ", \"converged\": " << (converged ? "true" : "false")
     << ", \"starved\": " << (starved ? "true" : "false")
     << ", \"missed_deadline\": " << (missed_deadline ? "true" : "false")
     << ", \"tenant\": \"" << tenant << "\""
     << "}, ";
  os << "\"answer\": {\"mode\": \"" << answer_mode << "\""
     << ", \"confidence\": ";
  AppendExactDouble(os, answer_confidence);
  os << ", \"sample_size\": " << sample_size
     << ", \"population\": " << sample_population
     << ", \"deterministic_width\": ";
  AppendExactDouble(os, deterministic_width);
  os << ", \"sampling_width\": ";
  AppendExactDouble(os, sampling_width);
  os << "}, ";
  os << "\"progress\": {\"width\": ";
  AppendExactDouble(os, answer_width);
  os << ", \"rel_width\": ";
  AppendExactDouble(os, answer_rel_width);
  os << ", \"limited_by_min_width\": "
     << (limited_by_min_width ? "true" : "false") << "}, ";
  os << "\"calibration\": {";
  for (int k = 0; k < kNumSolverKinds; ++k) {
    const CalibrationKindStats& c = calibration[k];
    if (k > 0) os << ", ";
    os << "\"" << SolverKindName(static_cast<SolverKind>(k))
       << "\": {\"samples\": " << c.samples << ", \"cost_err_sum\": ";
    AppendExactDouble(os, c.cost_err_sum);
    os << ", \"cost_abs_err_sum\": ";
    AppendExactDouble(os, c.cost_abs_err_sum);
    os << ", \"lo_err_sum\": ";
    AppendExactDouble(os, c.lo_err_sum);
    os << ", \"lo_abs_err_sum\": ";
    AppendExactDouble(os, c.lo_abs_err_sum);
    os << ", \"hi_err_sum\": ";
    AppendExactDouble(os, c.hi_err_sum);
    os << ", \"hi_abs_err_sum\": ";
    AppendExactDouble(os, c.hi_abs_err_sum);
    os << "}";
  }
  os << "}";
  os << "}";
}

void ExecutionReport::RenderPrometheus(std::ostream& os) const {
  const std::string kind_label = "{kind=\"" + query_kind + "\"}";
  os << "# TYPE vaolib_query_work_units gauge\n";
  os << "vaolib_query_work_units{kind=\"" << query_kind
     << "\",work=\"exec\"} " << work.exec << "\n";
  os << "vaolib_query_work_units{kind=\"" << query_kind
     << "\",work=\"get_state\"} " << work.get_state << "\n";
  os << "vaolib_query_work_units{kind=\"" << query_kind
     << "\",work=\"store_state\"} " << work.store_state << "\n";
  os << "vaolib_query_work_units{kind=\"" << query_kind
     << "\",work=\"choose_iter\"} " << work.choose_iter << "\n";
  os << "# TYPE vaolib_query_solver_work_units gauge\n";
  for (int k = 0; k < kNumSolverKinds; ++k) {
    os << "vaolib_query_solver_work_units{kind=\"" << query_kind
       << "\",solver=\"" << SolverKindName(static_cast<SolverKind>(k))
       << "\"} " << solver_work[k] << "\n";
  }
  os << "# TYPE vaolib_query_iterations gauge\n";
  os << "vaolib_query_iterations{kind=\"" << query_kind
     << "\",phase=\"coarse\"} " << coarse_iterations << "\n";
  os << "vaolib_query_iterations{kind=\"" << query_kind
     << "\",phase=\"greedy\"} " << greedy_iterations << "\n";
  os << "vaolib_query_iterations{kind=\"" << query_kind
     << "\",phase=\"finalize\"} " << finalize_iterations << "\n";
  os << "# TYPE vaolib_query_choose_steps gauge\n";
  os << "vaolib_query_choose_steps" << kind_label << " " << choose_steps
     << "\n";
  os << "# TYPE vaolib_query_objects_touched gauge\n";
  os << "vaolib_query_objects_touched" << kind_label << " " << objects_touched
     << "\n";
  os << "# TYPE vaolib_query_stalled_objects gauge\n";
  os << "vaolib_query_stalled_objects" << kind_label << " " << stalled_objects
     << "\n";
  os << "# TYPE vaolib_query_rows gauge\n";
  os << "vaolib_query_rows{kind=\"" << query_kind
     << "\",outcome=\"scanned\"} " << rows_scanned << "\n";
  os << "vaolib_query_rows{kind=\"" << query_kind
     << "\",outcome=\"short_circuited\"} " << rows_short_circuited << "\n";
  os << "vaolib_query_rows{kind=\"" << query_kind
     << "\",outcome=\"quarantined\"} " << rows_quarantined << "\n";
  if (has_cache) {
    os << "# TYPE vaolib_query_cache_events gauge\n";
    os << "vaolib_query_cache_events{kind=\"" << query_kind
       << "\",event=\"hit\"} " << cache_hits << "\n";
    os << "vaolib_query_cache_events{kind=\"" << query_kind
       << "\",event=\"miss\"} " << cache_misses << "\n";
    os << "vaolib_query_cache_events{kind=\"" << query_kind
       << "\",event=\"eviction\"} " << cache_evictions << "\n";
  }
  os << "# TYPE vaolib_query_pool_parallel_fors gauge\n";
  os << "vaolib_query_pool_parallel_fors" << kind_label << " "
     << pool_parallel_fors << "\n";
  os << "# TYPE vaolib_query_pool_tasks_enqueued gauge\n";
  os << "vaolib_query_pool_tasks_enqueued" << kind_label << " "
     << pool_tasks_enqueued << "\n";
  os << "# TYPE vaolib_query_pool_chunks_executed gauge\n";
  os << "vaolib_query_pool_chunks_executed" << kind_label << " "
     << pool_chunks_executed << "\n";
  os << "# TYPE vaolib_query_pool_queue_wait_nanos gauge\n";
  os << "vaolib_query_pool_queue_wait_nanos" << kind_label << " "
     << pool_queue_wait_nanos << "\n";
  if (scheduled) {
    const std::string sched_label = "{kind=\"" + query_kind + "\",policy=\"" +
                                    scheduler_policy + "\"}";
    os << "# TYPE vaolib_query_scheduler_budget gauge\n";
    os << "vaolib_query_scheduler_budget" << sched_label << " "
       << scheduler_budget << "\n";
    os << "# TYPE vaolib_query_scheduler_spent gauge\n";
    os << "vaolib_query_scheduler_spent" << sched_label << " "
       << scheduler_spent << "\n";
    os << "# TYPE vaolib_query_scheduler_steps gauge\n";
    os << "vaolib_query_scheduler_steps" << sched_label << " "
       << scheduler_steps << "\n";
    os << "# TYPE vaolib_query_scheduler_converged gauge\n";
    os << "vaolib_query_scheduler_converged" << sched_label << " "
       << (converged ? 1 : 0) << "\n";
    os << "# TYPE vaolib_query_scheduler_starved gauge\n";
    os << "vaolib_query_scheduler_starved" << sched_label << " "
       << (starved ? 1 : 0) << "\n";
    os << "# TYPE vaolib_query_scheduler_missed_deadline gauge\n";
    os << "vaolib_query_scheduler_missed_deadline" << sched_label << " "
       << (missed_deadline ? 1 : 0) << "\n";
  }
  if (answer_mode == "approximate") {
    os << "# TYPE vaolib_query_answer_confidence gauge\n";
    os << "vaolib_query_answer_confidence" << kind_label << " ";
    AppendExactDouble(os, answer_confidence);
    os << "\n";
    os << "# TYPE vaolib_query_sample_size gauge\n";
    os << "vaolib_query_sample_size" << kind_label << " " << sample_size
       << "\n";
    os << "# TYPE vaolib_query_sample_population gauge\n";
    os << "vaolib_query_sample_population" << kind_label << " "
       << sample_population << "\n";
    os << "# TYPE vaolib_query_answer_width gauge\n";
    os << "vaolib_query_answer_width{kind=\"" << query_kind
       << "\",component=\"deterministic\"} ";
    AppendExactDouble(os, deterministic_width);
    os << "\n";
    os << "vaolib_query_answer_width{kind=\"" << query_kind
       << "\",component=\"sampling\"} ";
    AppendExactDouble(os, sampling_width);
    os << "\n";
  }
  bool any_calibration = false;
  for (int k = 0; k < kNumSolverKinds; ++k) {
    any_calibration = any_calibration || calibration[k].samples > 0;
  }
  if (any_calibration) {
    os << "# TYPE vaolib_query_estimator_samples gauge\n";
    for (int k = 0; k < kNumSolverKinds; ++k) {
      if (calibration[k].samples == 0) continue;
      os << "vaolib_query_estimator_samples{kind=\"" << query_kind
         << "\",solver=\"" << SolverKindName(static_cast<SolverKind>(k))
         << "\"} " << calibration[k].samples << "\n";
    }
    os << "# TYPE vaolib_query_estimator_bias gauge\n";
    for (int k = 0; k < kNumSolverKinds; ++k) {
      const CalibrationKindStats& c = calibration[k];
      if (c.samples == 0) continue;
      const char* solver = SolverKindName(static_cast<SolverKind>(k));
      const double bias[3] = {c.CostBias(), c.LoBias(), c.HiBias()};
      const char* estimate[3] = {"cost", "lo", "hi"};
      for (int e = 0; e < 3; ++e) {
        os << "vaolib_query_estimator_bias{kind=\"" << query_kind
           << "\",solver=\"" << solver << "\",estimate=\"" << estimate[e]
           << "\"} ";
        AppendExactDouble(os, bias[e]);
        os << "\n";
      }
    }
    os << "# TYPE vaolib_query_estimator_mae gauge\n";
    for (int k = 0; k < kNumSolverKinds; ++k) {
      const CalibrationKindStats& c = calibration[k];
      if (c.samples == 0) continue;
      const char* solver = SolverKindName(static_cast<SolverKind>(k));
      const double mae[3] = {c.CostMae(), c.LoMae(), c.HiMae()};
      const char* estimate[3] = {"cost", "lo", "hi"};
      for (int e = 0; e < 3; ++e) {
        os << "vaolib_query_estimator_mae{kind=\"" << query_kind
           << "\",solver=\"" << solver << "\",estimate=\"" << estimate[e]
           << "\"} ";
        AppendExactDouble(os, mae[e]);
        os << "\n";
      }
    }
  }
}

Result<ExecutionReport> ExecutionReport::FromJson(const std::string& text) {
  // The shared obs/json_util.h reader (also used by the flight-recorder
  // replay path and trace_inspect) covers everything RenderJson emits.
  using json::Child;
  using json::GetBool;
  using json::GetDouble;
  using json::GetNumber;
  using json::JsonValue;
  VAOLIB_ASSIGN_OR_RETURN(const auto root, json::Parse(text));

  ExecutionReport report;
  VAOLIB_ASSIGN_OR_RETURN(const JsonValue* kind, Child(*root, "query_kind"));
  if (kind->type != JsonValue::Type::kString) {
    return Status::InvalidArgument("query_kind is not a string");
  }
  report.query_kind = kind->string;

  VAOLIB_ASSIGN_OR_RETURN(const JsonValue* work, Child(*root, "work_units"));
  VAOLIB_ASSIGN_OR_RETURN(report.work.exec, GetNumber(*work, "exec"));
  VAOLIB_ASSIGN_OR_RETURN(report.work.get_state,
                          GetNumber(*work, "get_state"));
  VAOLIB_ASSIGN_OR_RETURN(report.work.store_state,
                          GetNumber(*work, "store_state"));
  VAOLIB_ASSIGN_OR_RETURN(report.work.choose_iter,
                          GetNumber(*work, "choose_iter"));

  VAOLIB_ASSIGN_OR_RETURN(const JsonValue* solver,
                          Child(*root, "solver_work_units"));
  for (int k = 0; k < kNumSolverKinds; ++k) {
    VAOLIB_ASSIGN_OR_RETURN(
        report.solver_work[k],
        GetNumber(*solver, SolverKindName(static_cast<SolverKind>(k))));
  }

  VAOLIB_ASSIGN_OR_RETURN(const JsonValue* op, Child(*root, "operator"));
  VAOLIB_ASSIGN_OR_RETURN(report.iterations, GetNumber(*op, "iterations"));
  VAOLIB_ASSIGN_OR_RETURN(report.coarse_iterations,
                          GetNumber(*op, "coarse_iterations"));
  VAOLIB_ASSIGN_OR_RETURN(report.greedy_iterations,
                          GetNumber(*op, "greedy_iterations"));
  VAOLIB_ASSIGN_OR_RETURN(report.finalize_iterations,
                          GetNumber(*op, "finalize_iterations"));
  VAOLIB_ASSIGN_OR_RETURN(report.choose_steps,
                          GetNumber(*op, "choose_steps"));
  VAOLIB_ASSIGN_OR_RETURN(report.objects_touched,
                          GetNumber(*op, "objects_touched"));
  VAOLIB_ASSIGN_OR_RETURN(report.stalled_objects,
                          GetNumber(*op, "stalled_objects"));

  VAOLIB_ASSIGN_OR_RETURN(const JsonValue* rows, Child(*root, "rows"));
  VAOLIB_ASSIGN_OR_RETURN(report.rows_scanned, GetNumber(*rows, "scanned"));
  VAOLIB_ASSIGN_OR_RETURN(report.rows_short_circuited,
                          GetNumber(*rows, "short_circuited"));
  VAOLIB_ASSIGN_OR_RETURN(report.rows_quarantined,
                          GetNumber(*rows, "quarantined"));

  VAOLIB_ASSIGN_OR_RETURN(const JsonValue* cache, Child(*root, "cache"));
  VAOLIB_ASSIGN_OR_RETURN(const JsonValue* present,
                          Child(*cache, "present"));
  if (present->type != JsonValue::Type::kBool) {
    return Status::InvalidArgument("cache.present is not a bool");
  }
  report.has_cache = present->boolean;
  VAOLIB_ASSIGN_OR_RETURN(report.cache_hits, GetNumber(*cache, "hits"));
  VAOLIB_ASSIGN_OR_RETURN(report.cache_misses, GetNumber(*cache, "misses"));
  VAOLIB_ASSIGN_OR_RETURN(report.cache_evictions,
                          GetNumber(*cache, "evictions"));
  VAOLIB_ASSIGN_OR_RETURN(const JsonValue* shards, Child(*cache, "shards"));
  if (shards->type != JsonValue::Type::kArray) {
    return Status::InvalidArgument("cache.shards is not an array");
  }
  for (const auto& shard : shards->array) {
    CacheShardStats stats;
    VAOLIB_ASSIGN_OR_RETURN(stats.hits, GetNumber(*shard, "hits"));
    VAOLIB_ASSIGN_OR_RETURN(stats.misses, GetNumber(*shard, "misses"));
    VAOLIB_ASSIGN_OR_RETURN(stats.evictions, GetNumber(*shard, "evictions"));
    report.cache_shards.push_back(stats);
  }

  VAOLIB_ASSIGN_OR_RETURN(const JsonValue* pool, Child(*root, "thread_pool"));
  VAOLIB_ASSIGN_OR_RETURN(report.pool_parallel_fors,
                          GetNumber(*pool, "parallel_fors"));
  VAOLIB_ASSIGN_OR_RETURN(report.pool_tasks_enqueued,
                          GetNumber(*pool, "tasks_enqueued"));
  VAOLIB_ASSIGN_OR_RETURN(report.pool_chunks_executed,
                          GetNumber(*pool, "chunks_executed"));
  VAOLIB_ASSIGN_OR_RETURN(report.pool_queue_wait_nanos,
                          GetNumber(*pool, "queue_wait_nanos"));

  VAOLIB_ASSIGN_OR_RETURN(const JsonValue* sched, Child(*root, "scheduler"));
  VAOLIB_ASSIGN_OR_RETURN(report.scheduled, GetBool(*sched, "scheduled"));
  VAOLIB_ASSIGN_OR_RETURN(const JsonValue* policy, Child(*sched, "policy"));
  if (policy->type != JsonValue::Type::kString) {
    return Status::InvalidArgument("scheduler.policy is not a string");
  }
  report.scheduler_policy = policy->string;
  VAOLIB_ASSIGN_OR_RETURN(report.scheduler_budget,
                          GetNumber(*sched, "budget"));
  VAOLIB_ASSIGN_OR_RETURN(report.scheduler_spent, GetNumber(*sched, "spent"));
  VAOLIB_ASSIGN_OR_RETURN(report.scheduler_steps, GetNumber(*sched, "steps"));
  VAOLIB_ASSIGN_OR_RETURN(report.scheduler_finished_at,
                          GetNumber(*sched, "finished_at"));
  VAOLIB_ASSIGN_OR_RETURN(report.converged, GetBool(*sched, "converged"));
  VAOLIB_ASSIGN_OR_RETURN(report.starved, GetBool(*sched, "starved"));
  VAOLIB_ASSIGN_OR_RETURN(report.missed_deadline,
                          GetBool(*sched, "missed_deadline"));
  // Tolerated as absent: reports serialized before the tenant field existed.
  if (const auto tenant_field = Child(*sched, "tenant"); tenant_field.ok()) {
    if ((*tenant_field)->type != JsonValue::Type::kString) {
      return Status::InvalidArgument("scheduler.tenant is not a string");
    }
    report.tenant = (*tenant_field)->string;
  }

  // Tolerated as absent: reports serialized before the approximate tier.
  if (const auto answer = Child(*root, "answer"); answer.ok()) {
    VAOLIB_ASSIGN_OR_RETURN(const JsonValue* mode, Child(**answer, "mode"));
    if (mode->type != JsonValue::Type::kString) {
      return Status::InvalidArgument("answer.mode is not a string");
    }
    report.answer_mode = mode->string;
    VAOLIB_ASSIGN_OR_RETURN(report.answer_confidence,
                            GetDouble(**answer, "confidence"));
    VAOLIB_ASSIGN_OR_RETURN(report.sample_size,
                            GetNumber(**answer, "sample_size"));
    VAOLIB_ASSIGN_OR_RETURN(report.sample_population,
                            GetNumber(**answer, "population"));
    VAOLIB_ASSIGN_OR_RETURN(report.deterministic_width,
                            GetDouble(**answer, "deterministic_width"));
    VAOLIB_ASSIGN_OR_RETURN(report.sampling_width,
                            GetDouble(**answer, "sampling_width"));
  }

  // Tolerated as absent: reports serialized before the health plane.
  if (const auto progress = Child(*root, "progress"); progress.ok()) {
    VAOLIB_ASSIGN_OR_RETURN(report.answer_width,
                            GetDouble(**progress, "width"));
    VAOLIB_ASSIGN_OR_RETURN(report.answer_rel_width,
                            GetDouble(**progress, "rel_width"));
    VAOLIB_ASSIGN_OR_RETURN(report.limited_by_min_width,
                            GetBool(**progress, "limited_by_min_width"));
  }

  VAOLIB_ASSIGN_OR_RETURN(const JsonValue* calibration,
                          Child(*root, "calibration"));
  for (int k = 0; k < kNumSolverKinds; ++k) {
    VAOLIB_ASSIGN_OR_RETURN(
        const JsonValue* kind_stats,
        Child(*calibration, SolverKindName(static_cast<SolverKind>(k))));
    CalibrationKindStats& c = report.calibration[k];
    VAOLIB_ASSIGN_OR_RETURN(c.samples, GetNumber(*kind_stats, "samples"));
    VAOLIB_ASSIGN_OR_RETURN(c.cost_err_sum,
                            GetDouble(*kind_stats, "cost_err_sum"));
    VAOLIB_ASSIGN_OR_RETURN(c.cost_abs_err_sum,
                            GetDouble(*kind_stats, "cost_abs_err_sum"));
    VAOLIB_ASSIGN_OR_RETURN(c.lo_err_sum,
                            GetDouble(*kind_stats, "lo_err_sum"));
    VAOLIB_ASSIGN_OR_RETURN(c.lo_abs_err_sum,
                            GetDouble(*kind_stats, "lo_abs_err_sum"));
    VAOLIB_ASSIGN_OR_RETURN(c.hi_err_sum,
                            GetDouble(*kind_stats, "hi_err_sum"));
    VAOLIB_ASSIGN_OR_RETURN(c.hi_abs_err_sum,
                            GetDouble(*kind_stats, "hi_abs_err_sum"));
  }
  return report;
}

void RecordTickMetrics(const ExecutionReport& report) {
  static Counter* ticks =
      MetricsRegistry::Global().GetCounter("vaolib_ticks_total");
  static Counter* work_by_kind[] = {
      MetricsRegistry::Global().GetCounter("vaolib_work_units_total",
                                           {{"kind", "exec"}}),
      MetricsRegistry::Global().GetCounter("vaolib_work_units_total",
                                           {{"kind", "get_state"}}),
      MetricsRegistry::Global().GetCounter("vaolib_work_units_total",
                                           {{"kind", "store_state"}}),
      MetricsRegistry::Global().GetCounter("vaolib_work_units_total",
                                           {{"kind", "choose_iter"}}),
  };
  static Histogram* tick_work = MetricsRegistry::Global().GetHistogram(
      "vaolib_tick_work_units", {},
      {1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8});
  static Counter* short_circuited = MetricsRegistry::Global().GetCounter(
      "vaolib_rows_short_circuited_total");
  static Counter* scanned =
      MetricsRegistry::Global().GetCounter("vaolib_rows_scanned_total");

  ticks->Increment();
  work_by_kind[0]->Add(report.work.exec);
  work_by_kind[1]->Add(report.work.get_state);
  work_by_kind[2]->Add(report.work.store_state);
  work_by_kind[3]->Add(report.work.choose_iter);
  tick_work->Observe(static_cast<double>(report.work.Total()));
  scanned->Add(report.rows_scanned);
  short_circuited->Add(report.rows_short_circuited);
}

}  // namespace vaolib::obs
