// Copyright 2026 The vaolib Authors.
// ExecutionReport: the structured per-query execution account of the
// observability layer. Every CqExecutor tick (and every MultiQueryExecutor
// query phase) attaches one to its result, making the paper's quantitative
// claims -- work units per tuple, cache effectiveness, parallel utilization,
// adaptive short-circuiting -- observable on any individual query instead of
// only as bench-level WorkMeter totals.
//
// The work-by-kind section is an exact delta of the executor's WorkMeter, so
// report.Work().Total() always equals the legacy TickResult::work_units.
// Solver-kind, cache, and thread-pool sections are deltas of process-wide
// instrumentation; they are exact when one query runs at a time and
// best-effort attributions under concurrency.

#ifndef VAOLIB_OBS_EXECUTION_REPORT_H_
#define VAOLIB_OBS_EXECUTION_REPORT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/work_meter.h"
#include "obs/metrics.h"

namespace vaolib::obs {

/// \brief Work units split by the cost-model kinds of Section 3.2.
struct WorkByKind {
  std::uint64_t exec = 0;
  std::uint64_t get_state = 0;
  std::uint64_t store_state = 0;
  std::uint64_t choose_iter = 0;

  std::uint64_t Total() const {
    return exec + get_state + store_state + choose_iter;
  }

  /// Snapshot of \p meter's current per-kind counts.
  static WorkByKind Capture(const WorkMeter& meter);
  WorkByKind DeltaSince(const WorkByKind& before) const;

  bool operator==(const WorkByKind&) const = default;
};

/// \brief Per-shard bounds-cache activity (deltas over a query).
struct CacheShardStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  bool operator==(const CacheShardStats&) const = default;
};

/// \brief Estimator-calibration account for one solver kind: signed and
/// absolute error sums of the UDF's estCPU/estL/estH predictions against
/// the actuals each Iterate() produced (obs::RecordEstimatorSample deltas
/// over a query). Stored as sums so the JSON round-trip is exact; bias and
/// MAE are derived views.
struct CalibrationKindStats {
  std::uint64_t samples = 0;
  double cost_err_sum = 0.0;
  double cost_abs_err_sum = 0.0;
  double lo_err_sum = 0.0;
  double lo_abs_err_sum = 0.0;
  double hi_err_sum = 0.0;
  double hi_abs_err_sum = 0.0;

  double CostBias() const { return Mean(cost_err_sum); }
  double CostMae() const { return Mean(cost_abs_err_sum); }
  double LoBias() const { return Mean(lo_err_sum); }
  double LoMae() const { return Mean(lo_abs_err_sum); }
  double HiBias() const { return Mean(hi_err_sum); }
  double HiMae() const { return Mean(hi_abs_err_sum); }

  bool operator==(const CalibrationKindStats&) const = default;

 private:
  double Mean(double sum) const {
    return samples == 0 ? 0.0 : sum / static_cast<double>(samples);
  }
};

/// \brief Structured account of one query evaluation.
struct ExecutionReport {
  /// Source-level query kind ("select", "select_range", "min", "max",
  /// "sum", "ave", "top_k") or a caller-chosen label.
  std::string query_kind;

  /// Exact WorkMeter delta for this query; Total() matches the legacy
  /// TickResult::work_units.
  WorkByKind work;

  /// Global solver-counter deltas, indexed by SolverKind.
  std::uint64_t solver_work[kNumSolverKinds] = {};

  /// \name Operator phases: Iterate() calls split into the parallel coarse
  /// pre-phase, the serial greedy/adaptive loop, and winner finalization.
  /// @{
  std::uint64_t iterations = 0;
  std::uint64_t coarse_iterations = 0;
  std::uint64_t greedy_iterations = 0;
  std::uint64_t finalize_iterations = 0;
  std::uint64_t choose_steps = 0;
  std::uint64_t objects_touched = 0;
  /// Objects quarantined after a refinement stall (bounds stopped
  /// tightening above minWidth); see OperatorStats::stalled_objects.
  std::uint64_t stalled_objects = 0;
  /// @}

  /// \name Adaptive row accounting: rows whose answer was decided from
  /// bounds alone, without converging the underlying solver.
  /// @{
  std::uint64_t rows_scanned = 0;
  std::uint64_t rows_short_circuited = 0;
  /// Rows excluded from the answer because their evaluation failed and the
  /// executor ran with ResiliencePolicy::kDegrade (0 in strict mode, where
  /// any failing row fails the whole tick).
  std::uint64_t rows_quarantined = 0;
  /// @}

  /// \name Bounds-cache activity (only when the query's function is a
  /// CachingFunction; has_cache is false otherwise).
  /// @{
  bool has_cache = false;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::vector<CacheShardStats> cache_shards;
  /// @}

  /// \name Shared thread-pool activity during the query.
  /// @{
  std::uint64_t pool_parallel_fors = 0;
  std::uint64_t pool_tasks_enqueued = 0;
  std::uint64_t pool_chunks_executed = 0;
  std::uint64_t pool_queue_wait_nanos = 0;
  /// @}

  /// \name Cross-query scheduling account (engine/scheduler.h). Only
  /// meaningful when `scheduled` is true -- the query ran under a
  /// WorkScheduler with a global work budget; `converged` is then false
  /// whenever the budget ran out before this query finished. The spent
  /// numbers of all queries in one scheduled tick sum exactly to the
  /// scheduler run's WorkMeter delta.
  /// @{
  bool scheduled = false;
  std::string scheduler_policy;
  std::uint64_t scheduler_budget = 0;
  std::uint64_t scheduler_spent = 0;
  std::uint64_t scheduler_steps = 0;
  /// Work-clock time at which this query finished (0 while unfinished).
  std::uint64_t scheduler_finished_at = 0;
  bool converged = true;
  bool starved = false;
  bool missed_deadline = false;
  /// Owning tenant in multi-tenant serving (server/dispatcher.h); empty
  /// outside the server.
  std::string tenant;
  /// @}

  /// \name Answer provenance (the approximate tier). Exact queries keep the
  /// defaults ("exact", confidence 1, zero sample/width fields); sampled
  /// aggregates record their combined-interval decomposition here.
  /// @{
  std::string answer_mode = "exact";
  double answer_confidence = 1.0;
  std::uint64_t sample_size = 0;
  std::uint64_t sample_population = 0;
  double deterministic_width = 0.0;
  double sampling_width = 0.0;
  /// @}

  /// \name Convergence progress (the health plane's per-tick sample;
  /// obs/health.h ProgressRing stores the trajectory). Width fields are 0
  /// for row-valued kinds whose answer carries no interval.
  /// @{
  /// H - L of the tick's answer interval.
  double answer_width = 0.0;
  /// answer_width / max(|L|, |H|); 0 when both endpoints are 0.
  double answer_rel_width = 0.0;
  /// The query finished without reaching its requested epsilon: every
  /// object is at minimum width, so more budget cannot tighten the answer.
  bool limited_by_min_width = false;
  /// @}

  /// Estimator-calibration deltas for this query, indexed by SolverKind
  /// (all zero when obs is disabled or the function never iterated).
  CalibrationKindStats calibration[kNumSolverKinds] = {};

  /// Writes the report as one JSON object (TableWriter-style renderer).
  void RenderJson(std::ostream& os) const;

  /// Writes the report as Prometheus text (vaolib_query_* gauges), suitable
  /// for scraping the most recent query's profile.
  void RenderPrometheus(std::ostream& os) const;

  /// Parses a report previously written by RenderJson (round-trip inverse).
  static Result<ExecutionReport> FromJson(const std::string& json);

  bool operator==(const ExecutionReport&) const = default;
};

/// \brief Bumps the global registry's per-tick metrics (ticks served, work
/// units by kind, a tick-work histogram) from a finished report.
void RecordTickMetrics(const ExecutionReport& report);

}  // namespace vaolib::obs

#endif  // VAOLIB_OBS_EXECUTION_REPORT_H_
