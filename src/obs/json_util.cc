#include "obs/json_util.h"

#include <cctype>
#include <cstdlib>

#include "common/macros.h"
#include "common/status.h"

namespace vaolib::obs::json {

namespace {

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  Result<std::unique_ptr<JsonValue>> Parse() {
    auto value = ParseValue();
    if (!value.ok()) return value;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters after JSON value");
    }
    return value;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<std::unique_ptr<JsonValue>> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unexpected end of JSON");
    }
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
      return ParseNumber();
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      auto v = std::make_unique<JsonValue>();
      v->type = JsonValue::Type::kBool;
      v->boolean = true;
      return v;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      auto v = std::make_unique<JsonValue>();
      v->type = JsonValue::Type::kBool;
      v->boolean = false;
      return v;
    }
    return Status::InvalidArgument("unsupported JSON token");
  }

  Result<std::unique_ptr<JsonValue>> ParseObject() {
    if (!Consume('{')) return Status::InvalidArgument("expected '{'");
    auto v = std::make_unique<JsonValue>();
    v->type = JsonValue::Type::kObject;
    SkipSpace();
    if (Consume('}')) return v;
    while (true) {
      VAOLIB_ASSIGN_OR_RETURN(auto key, ParseString());
      if (!Consume(':')) return Status::InvalidArgument("expected ':'");
      VAOLIB_ASSIGN_OR_RETURN(auto value, ParseValue());
      v->object[key->string] = std::move(value);
      if (Consume(',')) continue;
      if (Consume('}')) return v;
      return Status::InvalidArgument("expected ',' or '}'");
    }
  }

  Result<std::unique_ptr<JsonValue>> ParseArray() {
    if (!Consume('[')) return Status::InvalidArgument("expected '['");
    auto v = std::make_unique<JsonValue>();
    v->type = JsonValue::Type::kArray;
    SkipSpace();
    if (Consume(']')) return v;
    while (true) {
      VAOLIB_ASSIGN_OR_RETURN(auto value, ParseValue());
      v->array.push_back(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return v;
      return Status::InvalidArgument("expected ',' or ']'");
    }
  }

  Result<std::unique_ptr<JsonValue>> ParseString() {
    if (!Consume('"')) return Status::InvalidArgument("expected '\"'");
    auto v = std::make_unique<JsonValue>();
    v->type = JsonValue::Type::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_];
      if (c == '\\' && pos_ + 1 < text_.size()) {
        ++pos_;
        const char escaped = text_[pos_];
        c = escaped == 'n' ? '\n' : escaped == 't' ? '\t' : escaped;
      }
      v->string.push_back(c);
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unterminated JSON string");
    }
    ++pos_;  // closing quote
    return v;
  }

  Result<std::unique_ptr<JsonValue>> ParseNumber() {
    const std::size_t start = pos_;
    bool integer = true;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      integer = false;
      ++pos_;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integer = false;
        ++pos_;
        continue;
      }
      break;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    auto v = std::make_unique<JsonValue>();
    v->type = JsonValue::Type::kNumber;
    v->real = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      return Status::InvalidArgument("malformed JSON number '" + token + "'");
    }
    v->is_integer = integer;
    if (integer) {
      v->number = std::strtoull(token.c_str(), nullptr, 10);
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<JsonValue>> Parse(const std::string& text) {
  JsonReader reader(text);
  return reader.Parse();
}

Result<const JsonValue*> Child(const JsonValue& parent,
                               const std::string& key) {
  if (parent.type != JsonValue::Type::kObject) {
    return Status::InvalidArgument("expected JSON object for '" + key + "'");
  }
  const auto it = parent.object.find(key);
  if (it == parent.object.end()) {
    return Status::InvalidArgument("missing JSON field '" + key + "'");
  }
  return it->second.get();
}

Result<std::uint64_t> GetNumber(const JsonValue& parent,
                                const std::string& key) {
  VAOLIB_ASSIGN_OR_RETURN(const JsonValue* v, Child(parent, key));
  if (v->type != JsonValue::Type::kNumber || !v->is_integer) {
    return Status::InvalidArgument("field '" + key +
                                   "' is not an unsigned integer");
  }
  return v->number;
}

Result<double> GetDouble(const JsonValue& parent, const std::string& key) {
  VAOLIB_ASSIGN_OR_RETURN(const JsonValue* v, Child(parent, key));
  if (v->type != JsonValue::Type::kNumber) {
    return Status::InvalidArgument("field '" + key + "' is not a number");
  }
  return v->real;
}

Result<bool> GetBool(const JsonValue& parent, const std::string& key) {
  VAOLIB_ASSIGN_OR_RETURN(const JsonValue* v, Child(parent, key));
  if (v->type != JsonValue::Type::kBool) {
    return Status::InvalidArgument("field '" + key + "' is not a bool");
  }
  return v->boolean;
}

Result<std::string> GetString(const JsonValue& parent,
                              const std::string& key) {
  VAOLIB_ASSIGN_OR_RETURN(const JsonValue* v, Child(parent, key));
  if (v->type != JsonValue::Type::kString) {
    return Status::InvalidArgument("field '" + key + "' is not a string");
  }
  return v->string;
}

}  // namespace vaolib::obs::json
