// Copyright 2026 The vaolib Authors.
// Minimal JSON reader shared by the observability artifacts that must parse
// their own output: ExecutionReport::FromJson round-trips, flight-recorder
// dump replay (trace_test), and the trace_inspect CLI. Covers objects,
// arrays, strings (escapes \" \\ \n \t), booleans, and numbers -- unsigned
// integers keep their exact uint64 value, and all numbers (signed,
// decimal, exponent) are retained as doubles parsed with strtod so a value
// rendered at max_digits10 round-trips bit-exactly.

#ifndef VAOLIB_OBS_JSON_UTIL_H_
#define VAOLIB_OBS_JSON_UTIL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace vaolib::obs::json {

struct JsonValue {
  enum class Type { kObject, kArray, kString, kNumber, kBool } type;
  std::map<std::string, std::unique_ptr<JsonValue>> object;
  std::vector<std::unique_ptr<JsonValue>> array;
  std::string string;
  /// Exact value when the token was a plain unsigned integer.
  std::uint64_t number = 0;
  /// Always set for kNumber (strtod of the full token).
  double real = 0.0;
  /// True when the token was digits only (number is then exact).
  bool is_integer = false;
  bool boolean = false;
};

/// \brief Parses \p text into a value tree; trailing non-space characters
/// are an error.
Result<std::unique_ptr<JsonValue>> Parse(const std::string& text);

/// \name Typed field accessors; every miss is an InvalidArgument so a
/// malformed document fails loudly instead of round-tripping zeros.
/// @{
Result<const JsonValue*> Child(const JsonValue& parent,
                               const std::string& key);
Result<std::uint64_t> GetNumber(const JsonValue& parent,
                                const std::string& key);
Result<double> GetDouble(const JsonValue& parent, const std::string& key);
Result<bool> GetBool(const JsonValue& parent, const std::string& key);
Result<std::string> GetString(const JsonValue& parent,
                              const std::string& key);
/// @}

}  // namespace vaolib::obs::json

#endif  // VAOLIB_OBS_JSON_UTIL_H_
