#include "obs/metrics.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <sstream>

namespace vaolib::obs {

namespace internal {

std::atomic<int> g_enabled{-1};

bool InitEnabledFromEnv() {
  bool enabled = true;
  if (const char* env = std::getenv("VAOLIB_OBS")) {
    enabled = !(std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
                std::strcmp(env, "false") == 0);
  }
  // Another thread may race the init; both compute the same value.
  g_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
  return enabled;
}

std::size_t AssignStripe() {
  static std::atomic<std::size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace internal

namespace {

// Lock-free add for pre-C++20-fetch_add atomic<double> portability.
void AtomicAddDouble(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
  }
}

// Serializes labels into the registry's index key (label order is already
// canonical because Labels is an ordered map).
std::string IndexKey(const std::string& name,
                     const MetricsRegistry::Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key.push_back('\x01');
    key += k;
    key.push_back('\x02');
    key += v;
  }
  return key;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

// # HELP text escapes only backslash and newline (exposition format).
std::string EscapePrometheusHelp(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string EscapePrometheusLabel(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

// {key="value",...} or "" when there are no labels.
std::string PrometheusLabels(const MetricsRegistry::Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + EscapePrometheusLabel(v) + "\"";
  }
  out += "}";
  return out;
}

// Same, but with extra label appended (for histogram le buckets).
std::string PrometheusLabelsWith(const MetricsRegistry::Labels& labels,
                                 const std::string& key,
                                 const std::string& value) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + EscapePrometheusLabel(v) + "\"";
  }
  if (!first) out += ",";
  out += key + "=\"" + EscapePrometheusLabel(value) + "\"";
  out += "}";
  return out;
}

std::string JsonLabels(const MetricsRegistry::Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + EscapeJson(k) + "\": \"" + EscapeJson(v) + "\"";
  }
  out += "}";
  return out;
}

// Finite doubles without trailing-zero noise (bucket bounds, sums).
std::string FormatDouble(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      counts_(new std::atomic<std::uint64_t>[upper_bounds_.size() + 1]) {
  for (std::size_t i = 0; i <= upper_bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double value) {
#ifndef VAOLIB_OBS_DISABLED
  if (!Enabled()) return;
  const auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), value);
  const std::size_t bucket =
      static_cast<std::size_t>(it - upper_bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(sum_, value);
#else
  (void)value;
#endif
}

double Histogram::Quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t total = TotalCount();
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < upper_bounds_.size(); ++i) {
    const std::uint64_t count = BucketCount(i);
    if (count == 0) continue;
    cumulative += count;
    if (static_cast<double>(cumulative) >= rank) {
      const double upper = upper_bounds_[i];
      const double lower =
          i == 0 ? (upper > 0.0 ? 0.0 : upper) : upper_bounds_[i - 1];
      const double into_bucket =
          rank - static_cast<double>(cumulative - count);
      return lower +
             (upper - lower) * (into_bucket / static_cast<double>(count));
    }
  }
  // The q-th observation sits in the +Inf bucket: the last finite bound is
  // the tightest sound answer a fixed-bucket histogram can give.
  return upper_bounds_.empty() ? 0.0 : upper_bounds_.back();
}

std::uint64_t Histogram::TotalCount() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= upper_bounds_.size(); ++i) {
    total += counts_[i].load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::Reset() {
  for (std::size_t i = 0; i <= upper_bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  sum_.store(0.0, std::memory_order_relaxed);
}

void SetEnabled(bool enabled) {
  internal::g_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(const std::string& name,
                                                      const Labels& labels,
                                                      Type type) {
  const std::string key = IndexKey(name, labels);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Same identity registered as a different type is a programming error;
    // return the existing entry and let the caller's Get* surface nullptr.
    return it->second;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->labels = labels;
  entry->type = type;
  Entry* raw = entry.get();
  entries_.push_back(std::move(entry));
  index_[key] = raw;
  return raw;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels) {
  Entry* entry = FindOrCreate(name, labels, Type::kCounter);
  if (entry->type != Type::kCounter) return nullptr;
  std::lock_guard<std::mutex> lock(mutex_);
  if (entry->counter == nullptr) entry->counter = std::make_unique<Counter>();
  return entry->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const Labels& labels) {
  Entry* entry = FindOrCreate(name, labels, Type::kGauge);
  if (entry->type != Type::kGauge) return nullptr;
  std::lock_guard<std::mutex> lock(mutex_);
  if (entry->gauge == nullptr) entry->gauge = std::make_unique<Gauge>();
  return entry->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const Labels& labels,
                                         std::vector<double> upper_bounds) {
  Entry* entry = FindOrCreate(name, labels, Type::kHistogram);
  if (entry->type != Type::kHistogram) return nullptr;
  std::lock_guard<std::mutex> lock(mutex_);
  if (entry->histogram == nullptr) {
    entry->histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return entry->histogram.get();
}

void MetricsRegistry::SetHelp(const std::string& name,
                              const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  help_[name] = help;
}

void MetricsRegistry::RenderPrometheus(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Group by family: every sample of a name must sit under a single
  // # HELP + # TYPE line pair (exposition-format requirement), even when
  // label variants of the family were registered with other metrics in
  // between.
  std::vector<const Entry*> ordered;
  ordered.reserve(entries_.size());
  std::map<std::string, bool> emitted;
  for (const auto& first : entries_) {
    if (emitted[first->name]) continue;
    emitted[first->name] = true;
    for (const auto& entry : entries_) {
      if (entry->name == first->name) ordered.push_back(entry.get());
    }
  }
  std::string last_typed_name;
  for (const Entry* entry : ordered) {
    if (entry->name != last_typed_name) {
      const char* type = entry->type == Type::kCounter    ? "counter"
                         : entry->type == Type::kGauge    ? "gauge"
                                                          : "histogram";
      const auto help_it = help_.find(entry->name);
      os << "# HELP " << entry->name << " "
         << EscapePrometheusHelp(help_it != help_.end()
                                     ? help_it->second
                                     : std::string("vaolib metric"))
         << "\n";
      os << "# TYPE " << entry->name << " " << type << "\n";
      last_typed_name = entry->name;
    }
    switch (entry->type) {
      case Type::kCounter:
        os << entry->name << PrometheusLabels(entry->labels) << " "
           << entry->counter->Value() << "\n";
        break;
      case Type::kGauge:
        os << entry->name << PrometheusLabels(entry->labels) << " "
           << entry->gauge->Value() << "\n";
        break;
      case Type::kHistogram: {
        const Histogram& h = *entry->histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.upper_bounds().size(); ++i) {
          cumulative += h.BucketCount(i);
          os << entry->name << "_bucket"
             << PrometheusLabelsWith(entry->labels, "le",
                                     FormatDouble(h.upper_bounds()[i]))
             << " " << cumulative << "\n";
        }
        cumulative += h.BucketCount(h.upper_bounds().size());
        os << entry->name << "_bucket"
           << PrometheusLabelsWith(entry->labels, "le", "+Inf") << " "
           << cumulative << "\n";
        os << entry->name << "_sum" << PrometheusLabels(entry->labels) << " "
           << FormatDouble(h.Sum()) << "\n";
        os << entry->name << "_count" << PrometheusLabels(entry->labels)
           << " " << cumulative << "\n";
        break;
      }
    }
  }
}

void MetricsRegistry::RenderJson(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto render_family = [&](Type type, const char* family) {
    os << "\"" << family << "\": [";
    bool first = true;
    for (const auto& entry : entries_) {
      if (entry->type != type) continue;
      if (!first) os << ", ";
      first = false;
      os << "{\"name\": \"" << EscapeJson(entry->name)
         << "\", \"labels\": " << JsonLabels(entry->labels);
      switch (type) {
        case Type::kCounter:
          os << ", \"value\": " << entry->counter->Value();
          break;
        case Type::kGauge:
          os << ", \"value\": " << entry->gauge->Value();
          break;
        case Type::kHistogram: {
          const Histogram& h = *entry->histogram;
          os << ", \"buckets\": [";
          for (std::size_t i = 0; i < h.upper_bounds().size(); ++i) {
            if (i > 0) os << ", ";
            os << "{\"le\": " << FormatDouble(h.upper_bounds()[i])
               << ", \"count\": " << h.BucketCount(i) << "}";
          }
          os << "], \"inf_count\": "
             << h.BucketCount(h.upper_bounds().size())
             << ", \"sum\": " << FormatDouble(h.Sum())
             << ", \"count\": " << h.TotalCount();
          break;
        }
      }
      os << "}";
    }
    os << "]";
  };
  os << "{";
  render_family(Type::kCounter, "counters");
  os << ", ";
  render_family(Type::kGauge, "gauges");
  os << ", ";
  render_family(Type::kHistogram, "histograms");
  os << "}";
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : entries_) {
    switch (entry->type) {
      case Type::kCounter:
        if (entry->counter) entry->counter->Reset();
        break;
      case Type::kGauge:
        if (entry->gauge) entry->gauge->Reset();
        break;
      case Type::kHistogram:
        if (entry->histogram) entry->histogram->Reset();
        break;
    }
  }
}

std::size_t MetricsRegistry::metric_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  for (const auto& entry : entries_) {
    switch (entry->type) {
      case Type::kCounter:
        if (entry->counter) {
          snapshot.counters.push_back(
              {entry->name, entry->labels, entry->counter->Value()});
        }
        break;
      case Type::kGauge:
        if (entry->gauge) {
          snapshot.gauges.push_back(
              {entry->name, entry->labels, entry->gauge->Value()});
        }
        break;
      case Type::kHistogram:
        if (entry->histogram) {
          const Histogram& h = *entry->histogram;
          MetricsSnapshot::HistogramSample sample;
          sample.name = entry->name;
          sample.labels = entry->labels;
          sample.upper_bounds = h.upper_bounds();
          sample.counts.resize(h.upper_bounds().size() + 1);
          for (std::size_t i = 0; i <= h.upper_bounds().size(); ++i) {
            sample.counts[i] = h.BucketCount(i);
          }
          sample.sum = h.Sum();
          snapshot.histograms.push_back(std::move(sample));
        }
        break;
    }
  }
  return snapshot;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked intentionally: instrumentation sites cache Counter* in static
  // storage, so the registry must outlive every static destructor.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

const char* SolverKindName(SolverKind kind) {
  switch (kind) {
    case SolverKind::kPde:
      return "pde";
    case SolverKind::kPde2d:
      return "pde2d";
    case SolverKind::kOde:
      return "ode";
    case SolverKind::kIvp:
      return "ivp";
    case SolverKind::kIntegral:
      return "integral";
    case SolverKind::kRoot:
      return "root";
  }
  return "unknown";
}

Counter* SolverWorkCounter(SolverKind kind) {
  static Counter* counters[kNumSolverKinds] = {};
  static std::once_flag once;
  std::call_once(once, []() {
    for (int k = 0; k < kNumSolverKinds; ++k) {
      counters[k] = MetricsRegistry::Global().GetCounter(
          "vaolib_solver_work_units_total",
          {{"solver", SolverKindName(static_cast<SolverKind>(k))}});
    }
  });
  return counters[static_cast<int>(kind)];
}

SolverWorkSnapshot SolverWorkSnapshot::Capture() {
  SolverWorkSnapshot snapshot;
  for (int k = 0; k < kNumSolverKinds; ++k) {
    snapshot.units[k] = SolverWorkCounter(static_cast<SolverKind>(k))->Value();
  }
  return snapshot;
}

SolverWorkSnapshot SolverWorkSnapshot::DeltaSince(
    const SolverWorkSnapshot& before) const {
  SolverWorkSnapshot delta;
  for (int k = 0; k < kNumSolverKinds; ++k) {
    delta.units[k] = units[k] - before.units[k];
  }
  return delta;
}

}  // namespace vaolib::obs
