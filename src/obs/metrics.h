// Copyright 2026 The vaolib Authors.
// Low-overhead metrics for the observability layer: counters, gauges, and
// fixed-bucket histograms collected in a process-wide registry, exported as
// JSON or Prometheus text.
//
// Design goals, in order:
//   1. Near-zero hot-path cost. Counter::Add is one relaxed flag load plus
//      one relaxed fetch_add to a thread-striped cell; instrumentation sites
//      cache the Counter* so no name lookup ever happens on a hot path.
//   2. Zero cost when disabled. Compile with VAOLIB_OBS_DISABLED (the CMake
//      option VAOLIB_ENABLE_OBSERVABILITY=OFF) and every mutation inlines to
//      nothing; at runtime, SetEnabled(false) (or env VAOLIB_OBS=0) reduces
//      mutations to a single relaxed load.
//   3. Shard friendliness. Counters stripe their cells across cache lines by
//      thread, so pool workers (common/thread_pool.h) charging the same
//      counter do not bounce one cache line around.
//
// Reads (Value(), renderers) are racy-but-atomic snapshots, exact once
// concurrent writers have quiesced -- the same contract as WorkMeter.

#ifndef VAOLIB_OBS_METRICS_H_
#define VAOLIB_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace vaolib::obs {

namespace internal {

// Tri-state runtime flag: -1 = uninitialized (read env VAOLIB_OBS on first
// use), 0 = disabled, 1 = enabled.
extern std::atomic<int> g_enabled;

/// Slow path: initializes g_enabled from the environment.
bool InitEnabledFromEnv();

/// Round-robin stripe assignment for new threads (defined in metrics.cc).
std::size_t AssignStripe();

/// This thread's counter stripe, assigned once per thread.
inline std::size_t ThreadStripe() {
  static thread_local const std::size_t stripe = AssignStripe();
  return stripe;
}

}  // namespace internal

/// \brief Whether metric mutations record anything at runtime.
inline bool Enabled() {
#ifdef VAOLIB_OBS_DISABLED
  return false;
#else
  const int v = internal::g_enabled.load(std::memory_order_relaxed);
  if (v >= 0) return v != 0;
  return internal::InitEnabledFromEnv();
#endif
}

/// \brief Turns runtime metric collection on or off (process-wide).
void SetEnabled(bool enabled);

/// \brief Monotonic counter, thread-striped to avoid cache-line contention.
class Counter {
 public:
  static constexpr std::size_t kStripes = 8;

  /// Adds \p n. Safe from any thread; no-op when observability is disabled.
  void Add(std::uint64_t n) {
#ifndef VAOLIB_OBS_DISABLED
    if (!Enabled()) return;
    cells_[internal::ThreadStripe() % kStripes].value.fetch_add(
        n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  void Increment() { Add(1); }

  /// Sum over all stripes (approximate while writers are active).
  std::uint64_t Value() const {
    std::uint64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (auto& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> value{0};
  };
  Cell cells_[kStripes];
};

/// \brief Last-write-wins signed gauge.
class Gauge {
 public:
  void Set(std::int64_t v) {
#ifndef VAOLIB_OBS_DISABLED
    if (Enabled()) value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void Add(std::int64_t n) {
#ifndef VAOLIB_OBS_DISABLED
    if (Enabled()) value_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  std::int64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// \brief Fixed-bucket histogram (Prometheus semantics: buckets are counts
/// of observations <= each upper bound, plus an implicit +Inf bucket).
class Histogram {
 public:
  /// \p upper_bounds must be strictly increasing; values above the last
  /// bound land in the +Inf bucket.
  explicit Histogram(std::vector<double> upper_bounds);

  /// Records one observation. Safe from any thread.
  void Observe(double value);

  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  /// Non-cumulative count of observations in bucket \p i (the +Inf bucket
  /// is index upper_bounds().size()).
  std::uint64_t BucketCount(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t TotalCount() const;
  double Sum() const {
    return sum_.load(std::memory_order_relaxed);
  }

  /// Prometheus-style quantile estimate (q in [0,1], clamped): finds the
  /// bucket holding the q-th observation and interpolates linearly inside
  /// it. The first bucket's lower edge is 0 when its upper bound is
  /// positive (the Prometheus convention), otherwise the bound itself; a
  /// quantile landing in the +Inf bucket returns the last finite bound.
  /// Returns 0 for an empty histogram.
  double Quantile(double q) const;

  void Reset();

 private:
  std::vector<double> upper_bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // bounds + inf
  std::atomic<double> sum_{0.0};
};

/// \brief Point-in-time copy of every registered metric's cumulative state.
/// `WindowedView` (obs/health.h) diffs successive snapshots into per-epoch
/// deltas; counters/histograms are monotone so deltas are non-negative once
/// writers have quiesced. Samples appear in registration order.
struct MetricsSnapshot {
  using Labels = std::map<std::string, std::string>;
  struct CounterSample {
    std::string name;
    Labels labels;
    std::uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    Labels labels;
    std::int64_t value = 0;
  };
  struct HistogramSample {
    std::string name;
    Labels labels;
    std::vector<double> upper_bounds;
    /// Non-cumulative per-bucket counts; the last slot is the +Inf bucket,
    /// so counts.size() == upper_bounds.size() + 1.
    std::vector<std::uint64_t> counts;
    double sum = 0.0;
  };
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

/// \brief Process-wide registry of named metrics. Get* registers on first
/// use and returns a stable pointer; instrumentation sites should cache it
/// (e.g. in a function-local static) so the map lookup happens once.
class MetricsRegistry {
 public:
  using Labels = std::map<std::string, std::string>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter registered under (\p name, \p labels), creating it
  /// if needed. The pointer stays valid for the registry's lifetime.
  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  /// \p upper_bounds is used only on first registration; later calls with
  /// the same identity return the existing histogram unchanged.
  Histogram* GetHistogram(const std::string& name, const Labels& labels,
                          std::vector<double> upper_bounds);

  /// Registers the # HELP text for a metric family. Applies to every label
  /// variant of \p name; families without registered help render a generic
  /// placeholder so the exposition stays promtool-clean.
  void SetHelp(const std::string& name, const std::string& help);

  /// Prometheus text exposition format (one # HELP + # TYPE line pair per
  /// family, preceding that family's samples).
  void RenderPrometheus(std::ostream& os) const;
  /// {"counters": [...], "gauges": [...], "histograms": [...]}.
  void RenderJson(std::ostream& os) const;

  /// Zeroes every registered metric (metrics stay registered). Test support
  /// and tick-delta capture; not intended for concurrent use with writers.
  void ResetAll();

  std::size_t metric_count() const;

  /// Racy-but-atomic copy of every registered metric (same read contract as
  /// Value()): exact once concurrent writers have quiesced. O(metrics).
  MetricsSnapshot Snapshot() const;

  /// The process-wide registry used by all built-in instrumentation.
  static MetricsRegistry& Global();

 private:
  enum class Type { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    Labels labels;
    Type type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(const std::string& name, const Labels& labels,
                      Type type);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;  // registration order
  std::map<std::string, Entry*> index_;
  std::map<std::string, std::string> help_;  // family name -> # HELP text
};

/// \brief The solver families whose work the observability layer breaks
/// down (one counter per kind: vaolib_solver_work_units_total{solver=...}).
enum class SolverKind : int {
  kPde = 0,
  kPde2d = 1,
  kOde = 2,
  kIvp = 3,
  kIntegral = 4,
  kRoot = 5,
};
inline constexpr int kNumSolverKinds = 6;

/// \brief Label value for \p kind ("pde", "pde2d", "ode", "ivp",
/// "integral", "root").
const char* SolverKindName(SolverKind kind);

/// \brief Global per-kind work counter (cached; cheap after first call).
Counter* SolverWorkCounter(SolverKind kind);

/// \brief Charges \p units of solver work to the global per-kind counter.
/// Called from the numeric solvers next to their WorkMeter charges.
inline void CountSolverWork(SolverKind kind, std::uint64_t units) {
#ifndef VAOLIB_OBS_DISABLED
  SolverWorkCounter(kind)->Add(units);
#else
  (void)kind;
  (void)units;
#endif
}

/// \brief Snapshot of the six solver-kind counters; Delta() gives per-query
/// attribution (exact when no other query runs concurrently).
struct SolverWorkSnapshot {
  std::uint64_t units[kNumSolverKinds] = {};

  static SolverWorkSnapshot Capture();
  SolverWorkSnapshot DeltaSince(const SolverWorkSnapshot& before) const;
};

}  // namespace vaolib::obs

#endif  // VAOLIB_OBS_METRICS_H_
