#include "obs/health.h"

#include <algorithm>
#include <cmath>

#include "obs/flight_recorder.h"

namespace vaolib::obs {

namespace {

const MetricsSnapshot::CounterSample* FindCounter(
    const MetricsSnapshot& snapshot, const std::string& name,
    const MetricsRegistry::Labels& labels) {
  for (const auto& sample : snapshot.counters) {
    if (sample.name == name && sample.labels == labels) return &sample;
  }
  return nullptr;
}

const MetricsSnapshot::HistogramSample* FindHistogram(
    const MetricsSnapshot& snapshot, const std::string& name,
    const MetricsRegistry::Labels& labels) {
  for (const auto& sample : snapshot.histograms) {
    if (sample.name == name && sample.labels == labels) return &sample;
  }
  return nullptr;
}

}  // namespace

WindowedView::WindowedView(MetricsRegistry* registry)
    : WindowedView(registry, Options()) {}

WindowedView::WindowedView(MetricsRegistry* registry, Options options)
    : registry_(registry), options_(options) {
  if (options_.window_count == 0) options_.window_count = 1;
  Push(0.0, /*has_clock=*/false);  // baseline
}

void WindowedView::Push(double now_seconds, bool has_clock) {
  Epoch epoch;
  epoch.snapshot = registry_->Snapshot();
  epoch.at_seconds = now_seconds;
  epoch.has_clock = has_clock;
  ring_.push_back(std::move(epoch));
  while (ring_.size() > options_.window_count + 1) ring_.pop_front();
}

void WindowedView::Advance() {
  Push(0.0, /*has_clock=*/false);
  ++total_advances_;
}

void WindowedView::Advance(double now_seconds) {
  Push(now_seconds, /*has_clock=*/true);
  ++total_advances_;
}

std::pair<std::size_t, std::size_t> WindowedView::Span(std::size_t k) const {
  const std::size_t newest = ring_.size() - 1;
  if (k == 0 || k > newest) k = newest;
  return {newest - k, newest};
}

std::uint64_t WindowedView::CounterDelta(const std::string& name,
                                         const MetricsRegistry::Labels& labels,
                                         std::size_t k) const {
  if (epochs() == 0) return 0;
  const auto [older, newest] = Span(k);
  const auto* now = FindCounter(ring_[newest].snapshot, name, labels);
  if (now == nullptr) return 0;
  const auto* then = FindCounter(ring_[older].snapshot, name, labels);
  // A counter registered mid-span reads as starting from zero.
  const std::uint64_t base = then != nullptr ? then->value : 0;
  return now->value >= base ? now->value - base : 0;
}

double WindowedView::CounterRate(const std::string& name,
                                 const MetricsRegistry::Labels& labels,
                                 std::size_t k) const {
  if (epochs() == 0) return 0.0;
  const auto [older, newest] = Span(k);
  const double delta =
      static_cast<double>(CounterDelta(name, labels, newest - older));
  if (ring_[older].has_clock && ring_[newest].has_clock) {
    const double elapsed = ring_[newest].at_seconds - ring_[older].at_seconds;
    if (elapsed > 0.0) return delta / elapsed;
  }
  return delta / static_cast<double>(newest - older);
}

std::uint64_t WindowedView::HistogramCountDelta(
    const std::string& name, const MetricsRegistry::Labels& labels,
    std::size_t k) const {
  if (epochs() == 0) return 0;
  const auto [older, newest] = Span(k);
  const auto* now = FindHistogram(ring_[newest].snapshot, name, labels);
  if (now == nullptr) return 0;
  const auto* then = FindHistogram(ring_[older].snapshot, name, labels);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < now->counts.size(); ++i) {
    const std::uint64_t base =
        (then != nullptr && i < then->counts.size()) ? then->counts[i] : 0;
    if (now->counts[i] > base) total += now->counts[i] - base;
  }
  return total;
}

double WindowedView::HistogramSumDelta(const std::string& name,
                                       const MetricsRegistry::Labels& labels,
                                       std::size_t k) const {
  if (epochs() == 0) return 0.0;
  const auto [older, newest] = Span(k);
  const auto* now = FindHistogram(ring_[newest].snapshot, name, labels);
  if (now == nullptr) return 0.0;
  const auto* then = FindHistogram(ring_[older].snapshot, name, labels);
  return now->sum - (then != nullptr ? then->sum : 0.0);
}

double WindowedView::HistogramQuantile(const std::string& name,
                                       const MetricsRegistry::Labels& labels,
                                       double q, std::size_t k) const {
  if (epochs() == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto [older, newest] = Span(k);
  const auto* now = FindHistogram(ring_[newest].snapshot, name, labels);
  if (now == nullptr) return 0.0;
  const auto* then = FindHistogram(ring_[older].snapshot, name, labels);

  std::vector<std::uint64_t> delta(now->counts.size(), 0);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < now->counts.size(); ++i) {
    const std::uint64_t base =
        (then != nullptr && i < then->counts.size()) ? then->counts[i] : 0;
    if (now->counts[i] > base) delta[i] = now->counts[i] - base;
    total += delta[i];
  }
  if (total == 0) return 0.0;

  // Same interpolation contract as Histogram::Quantile, over the deltas.
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  const auto& bounds = now->upper_bounds;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (delta[i] == 0) continue;
    cumulative += delta[i];
    if (static_cast<double>(cumulative) >= rank) {
      const double upper = bounds[i];
      const double lower = i == 0 ? (upper > 0.0 ? 0.0 : upper)
                                  : bounds[i - 1];
      const double into_bucket =
          rank - static_cast<double>(cumulative - delta[i]);
      return lower +
             (upper - lower) * (into_bucket / static_cast<double>(delta[i]));
    }
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

ProgressRing::ProgressRing(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void ProgressRing::Record(const ProgressSample& sample) {
  samples_.push_back(sample);
  while (samples_.size() > capacity_) samples_.pop_front();
  ++total_recorded_;
}

EtaEstimate ProgressRing::EstimateEta(double target_width,
                                      double shrink_hint) const {
  EtaEstimate eta;
  if (samples_.empty() || !(target_width > 0.0)) return eta;
  const ProgressSample& last = samples_.back();
  if (!std::isfinite(last.width)) return eta;
  if (last.converged || last.width <= target_width) {
    eta.known = true;
    return eta;
  }
  // At minimum object width more budget cannot tighten the interval, so
  // there is no honest ETA to the target.
  if (last.limited_by_min_width) return eta;

  // Fit the per-tick log-width shrink over the most recent samples.
  constexpr std::size_t kFitWindow = 8;
  const std::size_t n = std::min(samples_.size(), kFitWindow);
  if (n < 2) return eta;
  const ProgressSample& first = samples_[samples_.size() - n];
  if (!std::isfinite(first.width) || first.width <= 0.0 || last.width <= 0.0) {
    return eta;
  }
  double per_tick =
      (std::log(first.width) - std::log(last.width)) /
      static_cast<double>(n - 1);
  per_tick *= std::clamp(shrink_hint, 0.25, 4.0);
  if (!(per_tick > 1e-12)) return eta;  // flat or widening trajectory

  eta.known = true;
  eta.ticks = std::log(last.width / target_width) / per_tick;
  double work = 0.0;
  for (std::size_t i = samples_.size() - n; i < samples_.size(); ++i) {
    work += static_cast<double>(samples_[i].work_spent);
  }
  eta.work_units = eta.ticks * (work / static_cast<double>(n));
  return eta;
}

const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kCritical:
      return "critical";
  }
  return "unknown";
}

SloMonitor::SloMonitor(const WindowedView* view, std::vector<SloSpec> specs)
    : view_(view), specs_(std::move(specs)) {
  statuses_.resize(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    statuses_[i].name = specs_[i].name;
  }
  MetricsRegistry* registry = view_->registry();
  registry->SetHelp("vaolib_health_state",
                    "Worst SLO state: 0 healthy, 1 degraded, 2 critical.");
  registry->SetHelp("vaolib_slo_state",
                    "Per-SLO state: 0 healthy, 1 degraded, 2 critical.");
  registry->SetHelp("vaolib_slo_burn_milli",
                    "Per-SLO burn rate x1000 over the fast/slow window.");
  registry->SetHelp("vaolib_slo_critical_transitions_total",
                    "SLO transitions into the critical state.");
}

HealthState SloMonitor::Evaluate() {
  MetricsRegistry* registry = view_->registry();
  HealthState worst = HealthState::kHealthy;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const SloSpec& spec = specs_[i];
    SloStatus& status = statuses_[i];
    const HealthState previous = status.state;

    auto observe = [&](std::size_t window_epochs) -> double {
      if (!spec.bad_metric.empty()) {
        const std::uint64_t bad =
            view_->CounterDelta(spec.bad_metric, spec.bad_labels,
                                window_epochs);
        const std::uint64_t total = view_->CounterDelta(
            spec.total_metric, spec.total_labels, window_epochs);
        return total > 0 ? static_cast<double>(bad) /
                               static_cast<double>(total)
                         : 0.0;
      }
      return view_->HistogramQuantile(spec.histogram_metric,
                                      spec.histogram_labels, spec.quantile,
                                      window_epochs);
    };
    const double denom =
        !spec.bad_metric.empty() ? spec.budget : spec.limit;
    status.fast_value = observe(spec.fast_epochs);
    status.slow_value = observe(spec.slow_epochs);
    status.fast_burn = denom > 0.0 ? status.fast_value / denom : 0.0;
    status.slow_burn = denom > 0.0 ? status.slow_value / denom : 0.0;

    if (status.fast_burn >= spec.critical_burn &&
        status.slow_burn >= spec.critical_burn) {
      status.state = HealthState::kCritical;
    } else if (status.fast_burn >= spec.degraded_burn ||
               status.slow_burn >= spec.degraded_burn) {
      status.state = HealthState::kDegraded;
    } else {
      status.state = HealthState::kHealthy;
    }
    worst = std::max(worst, status.state);

    if (status.state == HealthState::kCritical &&
        previous != HealthState::kCritical) {
      ++critical_transitions_;
      registry->GetCounter("vaolib_slo_critical_transitions_total")
          ->Increment();
      FlightRecorder::Global().DumpIfArmed("slo-critical-" + spec.name);
    }
    registry->GetGauge("vaolib_slo_state", {{"slo", spec.name}})
        ->Set(static_cast<std::int64_t>(status.state));
    const auto milli = [](double burn) {
      // Saturate: gauges are int64 and a cold denominator can burn huge.
      return static_cast<std::int64_t>(
          std::min(burn * 1000.0, 1.0e12));
    };
    registry
        ->GetGauge("vaolib_slo_burn_milli",
                   {{"slo", spec.name}, {"window", "fast"}})
        ->Set(milli(status.fast_burn));
    registry
        ->GetGauge("vaolib_slo_burn_milli",
                   {{"slo", spec.name}, {"window", "slow"}})
        ->Set(milli(status.slow_burn));
  }
  state_ = worst;
  registry->GetGauge("vaolib_health_state")
      ->Set(static_cast<std::int64_t>(state_));
  return state_;
}

}  // namespace vaolib::obs
