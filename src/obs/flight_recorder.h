// Copyright 2026 The vaolib Authors.
// FlightRecorder: turns the trace rings into post-mortem artifacts. When a
// dump directory is configured (env VAOLIB_TRACE_DUMP or SetDumpDir()) and
// tracing is on, Dump() writes the current ring contents -- the last N
// events per thread -- as a Chrome trace-event JSON file named
// <dir>/flight-<seq>-<reason>.json (sequence-numbered, never timestamped,
// so repeated deterministic runs produce identical file sets).
//
// Wired triggers:
//   * InvariantChecker violations (testing/invariant_checker.cc),
//   * refinement-stall degradations (SingleObjectDecisionTask's stall
//     error and CqExecutor's stall quarantine path),
//   * DifferentialRunner failing seeds, which clear the rings and re-run
//     the failing combo first so the dump contains exactly that combo's
//     decision sequence (the replayable artifact trace_test asserts on).

#ifndef VAOLIB_OBS_FLIGHT_RECORDER_H_
#define VAOLIB_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

namespace vaolib::obs {

class FlightRecorder {
 public:
  /// Process-wide dump cap; Dump() refuses past it so stall-happy chaos
  /// runs cannot flood the dump directory.
  static constexpr std::uint64_t kMaxDumps = 256;

  /// The process-wide recorder (dump dir from env VAOLIB_TRACE_DUMP on
  /// first use).
  static FlightRecorder& Global();

  /// Overrides the dump directory; empty disables dumping.
  void SetDumpDir(std::string dir);

  /// True when a dump directory is configured AND tracing is recording
  /// (mode != off); Dump() is a no-op otherwise.
  bool Armed() const;

  /// Writes the current trace snapshot to <dir>/flight-<seq>-<reason>.json
  /// and returns the path, or nullopt when not Armed() or the file cannot
  /// be written. \p reason is sanitized to [A-Za-z0-9_-]; never throws --
  /// dump triggers sit on failure paths that must not fail harder.
  std::optional<std::string> Dump(const std::string& reason);

  /// Dump() gated on Armed(): the one-liner failure paths call.
  void DumpIfArmed(const std::string& reason) {
    if (Armed()) Dump(reason);
  }

  /// Dumps written since process start (including failed attempts' slots).
  std::uint64_t dump_count() const;

 private:
  FlightRecorder();

  mutable std::mutex mutex_;
  std::string dir_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace vaolib::obs

#endif  // VAOLIB_OBS_FLIGHT_RECORDER_H_
