// Copyright 2026 The vaolib Authors.
// Execution tracing: thread-striped, bounded-memory ring buffers recording
// spans (executor ticks, scheduler dispatches, solver invocations, cache
// lookups, pool chunks) and per-iteration decision events (which result
// object the strategy picked, bounds before/after, predicted vs. actual
// cost, and the greedy score that won), exportable as Chrome trace-event
// JSON (load a dump in Perfetto / chrome://tracing).
//
// Modes (env VAOLIB_TRACE, or SetTraceMode()):
//   off     nothing is recorded (the default; one relaxed load per site).
//   flight  decision events + coarse spans into per-thread rings that keep
//           only the last N events (flight recorder; see flight_recorder.h
//           for the dump triggers).
//   full    everything, including fine-grained spans (solver invocations,
//           sampled cache lookups, pool chunks). Still ring-bounded.
//
// Memory bound: ring capacity (env VAOLIB_TRACE_RING, default 4096) x
// sizeof(TraceEvent) (~128 B) per thread that ever records. Rings never
// allocate on the hot path after their first event.
//
// Determinism contract: recording reads object state (bounds(), est_cost())
// through their free accessors and never charges a WorkMeter, so enabling
// tracing cannot change work totals, iterate sequences, or answers. Event
// order is a global atomic sequence number; on a single driving thread the
// decision sequence is exactly the iterate sequence.
//
// The estimator-calibration audit (RecordEstimatorSample) is independent of
// the trace mode: like the solver work counters it is active whenever
// obs::Enabled(), feeding per-solver-kind bias/MAE histograms in the global
// registry and the calibration section of ExecutionReport.

#ifndef VAOLIB_OBS_TRACE_H_
#define VAOLIB_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <ostream>
#include <vector>

#include "obs/metrics.h"

namespace vaolib::obs {

/// \brief How much the tracer records; see the file comment.
enum class TraceMode : int { kOff = 0, kFlight = 1, kFull = 2 };

/// \brief Parses a VAOLIB_TRACE value. nullptr/""/"off"/"0"/"false" give
/// kOff, "flight"/"recorder" give kFlight, "full"/"on"/"1"/"true" give
/// kFull; anything unrecognized falls back to the safe default kOff.
TraceMode ParseTraceMode(const char* text);

/// \brief Parses a VAOLIB_TRACE_RING value: a positive integer clamped to
/// [64, 1048576]. nullptr, junk, or non-positive values fall back to the
/// default capacity (4096).
std::size_t ParseRingCapacity(const char* text);

/// \brief Per-thread ring capacity for rings created after the call.
std::size_t TraceRingCapacity();
void SetTraceRingCapacity(std::size_t capacity);

/// \brief The current mode (initialized from env VAOLIB_TRACE on first use).
TraceMode CurrentTraceMode();
void SetTraceMode(TraceMode mode);

/// \brief Span granularity: kCoarse spans record in flight and full modes,
/// kFine (hot-path) spans only in full mode.
enum class TraceDetail : int { kCoarse = 0, kFine = 1 };

namespace internal {
// Tri-state mirror of metrics.h's g_enabled: -1 = read env on first use.
extern std::atomic<int> g_trace_mode;
TraceMode InitTraceModeFromEnv();
}  // namespace internal

/// \brief Whether spans of \p detail are being recorded right now.
inline bool TraceActive(TraceDetail detail) {
#ifdef VAOLIB_OBS_DISABLED
  (void)detail;
  return false;
#else
  int mode = internal::g_trace_mode.load(std::memory_order_relaxed);
  if (mode < 0) mode = static_cast<int>(internal::InitTraceModeFromEnv());
  if (mode == static_cast<int>(TraceMode::kOff)) return false;
  return detail == TraceDetail::kCoarse ||
         mode == static_cast<int>(TraceMode::kFull);
#endif
}

/// \brief Whether decision events are being recorded (flight or full mode).
inline bool DecisionTraceActive() { return TraceActive(TraceDetail::kCoarse); }

/// \brief One recorded event. `cat`/`name`/`phase` must be string literals
/// (or otherwise immortal): rings store the pointers, never copies.
struct TraceEvent {
  enum class Kind : std::uint8_t { kSpan, kInstant, kDecision };

  Kind kind = Kind::kSpan;
  const char* cat = "";
  const char* name = "";
  const char* phase = nullptr;  ///< decision events: operator phase label
  std::uint64_t seq = 0;        ///< global total order (atomic counter)
  std::uint64_t ts_ns = 0;      ///< steady-clock ns since tracer epoch
  std::uint64_t dur_ns = 0;     ///< spans only
  std::uint64_t tid = 0;        ///< recording thread's stripe id

  /// \name Decision payload (kDecision only).
  /// @{
  std::uint64_t object_index = 0;  ///< which result object was picked
  double lo_before = 0.0, hi_before = 0.0;
  double lo_after = 0.0, hi_after = 0.0;
  double est_lo = 0.0, est_hi = 0.0;  ///< predicted post-iterate bounds
  double est_cost = 0.0;              ///< predicted work units
  double actual_cost = 0.0;           ///< measured work-unit delta
  double score = 0.0;                 ///< greedy benefit/cost score that won
  /// Score the raw (uncorrected) estimates would have produced. Equal to
  /// `score` under the classic strategies; under kCalibratedGreedy /
  /// kSentinelGreedy the gap between the two is why the pick changed.
  double raw_score = 0.0;
  /// @}
};

/// \brief Nanoseconds since the tracer's process-local epoch.
std::uint64_t TraceNowNs();

/// \brief Records a completed span. No-op unless TraceActive(detail).
void RecordSpan(const char* cat, const char* name, std::uint64_t start_ns,
                std::uint64_t end_ns, TraceDetail detail);

/// \brief Records an instant event at the current time.
void RecordInstant(const char* cat, const char* name, TraceDetail detail);

/// \brief Decision-event payload; see TraceEvent for field meanings.
struct Decision {
  const char* op = "";        ///< operator name ("min_max", "sum_ave", ...)
  const char* phase = "";     ///< operator phase ("search", "finalize", ...)
  std::uint64_t object_index = 0;
  double lo_before = 0.0, hi_before = 0.0;
  double lo_after = 0.0, hi_after = 0.0;
  double est_lo = 0.0, est_hi = 0.0;
  double est_cost = 0.0;
  double actual_cost = 0.0;
  double score = 0.0;
  double raw_score = 0.0;  ///< score from uncorrected estimates
};

/// \brief Records one per-iteration decision event. Callers should gate on
/// DecisionTraceActive() so payload assembly stays off the disabled path.
void RecordDecision(const Decision& decision);

/// \brief RAII span: captures the start time if tracing is active, records
/// on destruction. Cheap no-op otherwise.
class ScopedSpan {
 public:
  ScopedSpan(const char* cat, const char* name,
             TraceDetail detail = TraceDetail::kCoarse)
      : cat_(cat), name_(name), detail_(detail), active_(TraceActive(detail)) {
    if (active_) start_ns_ = TraceNowNs();
  }
  ~ScopedSpan() {
    if (active_) RecordSpan(cat_, name_, start_ns_, TraceNowNs(), detail_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* cat_;
  const char* name_;
  TraceDetail detail_;
  bool active_;
  std::uint64_t start_ns_ = 0;
};

/// \brief Merged, seq-sorted copy of every thread ring.
struct TraceSnapshot {
  std::vector<TraceEvent> events;
  /// Events overwritten by ring wrap-around since the last ClearTrace().
  std::uint64_t dropped = 0;
};

/// \brief Copies all rings (seq-sorted). Safe from any thread.
TraceSnapshot SnapshotTrace();

/// \brief Empties every ring and resets the drop counter (the sequence
/// counter keeps running so ordering stays globally monotonic).
void ClearTrace();

/// \brief Writes \p snapshot in Chrome trace-event JSON ("traceEvents"
/// array of "X"/"i" events; decision payloads under "args").
void ExportChromeTrace(const TraceSnapshot& snapshot, std::ostream& os);

/// \brief SnapshotTrace() + ExportChromeTrace().
void ExportChromeTrace(std::ostream& os);

/// \name Estimator-calibration audit.
/// @{

/// \brief Records one Iterate() outcome against the estimates that preceded
/// it: signed error and absolute error of the predicted cost and predicted
/// [L,H] bounds, accumulated per solver kind into the global registry's
/// vaolib_estimator_error / vaolib_estimator_abs_error histograms (bias =
/// sum/count of the signed family, MAE = sum/count of the absolute family).
/// A sample with any non-finite error is dropped whole, so the per-kind
/// sample count stays valid as the denominator for all six sums. Active
/// whenever obs::Enabled(); gate call sites on it.
void RecordEstimatorSample(SolverKind kind, double est_cost, double est_lo,
                           double est_hi, double actual_cost, double actual_lo,
                           double actual_hi);

/// \brief Snapshot of the per-kind calibration accumulators; DeltaSince()
/// gives per-query attribution exactly like SolverWorkSnapshot.
struct CalibrationSnapshot {
  struct Kind {
    std::uint64_t samples = 0;
    double cost_err_sum = 0.0, cost_abs_err_sum = 0.0;
    double lo_err_sum = 0.0, lo_abs_err_sum = 0.0;
    double hi_err_sum = 0.0, hi_abs_err_sum = 0.0;

    /// \name Guarded bias/MAE accessors (error convention: actual - est).
    /// Zero-sample kinds return 0.0 -- never NaN -- so consumers (the
    /// calibrated scoring path, ExecutionReport JSON) stay finite and
    /// fall back to raw estimates bit-exactly.
    /// @{
    double CostBias() const { return Mean(cost_err_sum); }
    double CostMae() const { return Mean(cost_abs_err_sum); }
    double LoBias() const { return Mean(lo_err_sum); }
    double LoMae() const { return Mean(lo_abs_err_sum); }
    double HiBias() const { return Mean(hi_err_sum); }
    double HiMae() const { return Mean(hi_abs_err_sum); }
    /// @}

   private:
    double Mean(double sum) const {
      return samples == 0 ? 0.0 : sum / static_cast<double>(samples);
    }
  };
  Kind kinds[kNumSolverKinds] = {};

  static CalibrationSnapshot Capture();
  CalibrationSnapshot DeltaSince(const CalibrationSnapshot& before) const;
};

/// @}

}  // namespace vaolib::obs

#endif  // VAOLIB_OBS_TRACE_H_
