#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

#include "common/trace_hook.h"

namespace vaolib::obs {

namespace {
// Installs (or clears) the thread-pool chunk-span hook; defined below, next
// to the tracer epoch it rebases timestamps onto.
void UpdatePoolTraceHook(TraceMode mode);
}  // namespace

namespace internal {

std::atomic<int> g_trace_mode{-1};

TraceMode InitTraceModeFromEnv() {
  const TraceMode mode = ParseTraceMode(std::getenv("VAOLIB_TRACE"));
  // Another thread may race the init; both compute the same value.
  g_trace_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
  UpdatePoolTraceHook(mode);
  return mode;
}

}  // namespace internal

namespace {

constexpr std::size_t kDefaultRingCapacity = 4096;
constexpr std::size_t kMinRingCapacity = 64;
constexpr std::size_t kMaxRingCapacity = 1u << 20;

std::atomic<std::size_t> g_ring_capacity{kDefaultRingCapacity};
std::atomic<std::uint64_t> g_seq{0};

// One bounded event ring per recording thread. Only the owning thread
// writes; the mutex serializes those writes against snapshot/clear readers.
struct Ring {
  explicit Ring(std::size_t cap, std::uint64_t id) : capacity(cap), tid(id) {
    events.reserve(capacity);
  }

  std::mutex mu;
  std::vector<TraceEvent> events;  // ring storage, grown up to `capacity`
  std::size_t next = 0;            // next write slot once wrapped
  bool wrapped = false;
  std::uint64_t dropped = 0;  // events overwritten by wrap-around
  const std::size_t capacity;
  const std::uint64_t tid;
};

struct RingRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<Ring>> rings;  // outlive their threads
  std::uint64_t next_tid = 0;
};

RingRegistry& Registry() {
  // Leaked intentionally, same rationale as MetricsRegistry::Global().
  static RingRegistry* registry = new RingRegistry();
  return *registry;
}

Ring& ThreadRing() {
  static thread_local std::shared_ptr<Ring> ring = [] {
    RingRegistry& registry = Registry();
    std::lock_guard<std::mutex> lock(registry.mu);
    auto created = std::make_shared<Ring>(
        g_ring_capacity.load(std::memory_order_relaxed), registry.next_tid++);
    registry.rings.push_back(created);
    return created;
  }();
  return *ring;
}

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

// The hook the thread pool (vaolib_common, which cannot link obs) calls
// around each chunk it executes. Timestamps arrive as absolute steady ns;
// rebase them onto the tracer epoch. RecordSpan re-checks TraceActive, so a
// stale installed hook after a mode change records nothing.
void PoolChunkSpan(const char* name, std::uint64_t start_ns,
                   std::uint64_t end_ns) {
  const auto epoch_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          TraceEpoch().time_since_epoch())
          .count());
  RecordSpan("pool", name, start_ns >= epoch_ns ? start_ns - epoch_ns : 0,
             end_ns >= epoch_ns ? end_ns - epoch_ns : 0, TraceDetail::kFine);
}

void UpdatePoolTraceHook(TraceMode mode) {
#ifdef VAOLIB_OBS_DISABLED
  (void)mode;
#else
  if (mode != TraceMode::kOff) TraceEpoch();  // pin before rebasing spans
  TraceSpanHook().store(mode == TraceMode::kOff ? nullptr : &PoolChunkSpan,
                        std::memory_order_relaxed);
#endif
}

void Push(TraceEvent event) {
  Ring& ring = ThreadRing();
  event.seq = g_seq.fetch_add(1, std::memory_order_relaxed);
  event.tid = ring.tid;
  std::lock_guard<std::mutex> lock(ring.mu);
  if (ring.events.size() < ring.capacity) {
    ring.events.push_back(event);
    return;
  }
  ring.events[ring.next] = event;
  ring.next = (ring.next + 1) % ring.capacity;
  ring.wrapped = true;
  ++ring.dropped;
}

// JSON-safe double: bare number when finite, quoted token otherwise (the
// chaos harness injects NaN/Inf bounds and trace dumps must stay parseable).
void AppendJsonDouble(std::ostream& os, double v) {
  if (std::isfinite(v)) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
    return;
  }
  if (std::isnan(v)) {
    os << "\"nan\"";
  } else {
    os << (v > 0 ? "\"inf\"" : "\"-inf\"");
  }
}

void AppendMicros(std::ostream& os, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  os << buf;
}

const char* EstimateName(int estimate) {
  switch (estimate) {
    case 0:
      return "cost";
    case 1:
      return "lo";
    default:
      return "hi";
  }
}

// vaolib_estimator_error{solver,estimate} (signed: bias = sum/count) and
// vaolib_estimator_abs_error{solver,estimate} (MAE = sum/count), registered
// once on first sample.
struct CalibrationHistograms {
  Histogram* err[kNumSolverKinds][3];
  Histogram* abs_err[kNumSolverKinds][3];
};

const CalibrationHistograms& CalibrationFamilies() {
  static CalibrationHistograms* families = [] {
    auto* f = new CalibrationHistograms();
    const std::vector<double> signed_buckets = {-1e6, -1e3, -1.0, -1e-3, 0.0,
                                                1e-3, 1.0,  1e3,  1e6};
    const std::vector<double> abs_buckets = {1e-6, 1e-3, 0.1, 1.0,
                                             10.0, 1e3,  1e6};
    for (int k = 0; k < kNumSolverKinds; ++k) {
      const char* solver = SolverKindName(static_cast<SolverKind>(k));
      for (int e = 0; e < 3; ++e) {
        f->err[k][e] = MetricsRegistry::Global().GetHistogram(
            "vaolib_estimator_error",
            {{"solver", solver}, {"estimate", EstimateName(e)}},
            signed_buckets);
        f->abs_err[k][e] = MetricsRegistry::Global().GetHistogram(
            "vaolib_estimator_abs_error",
            {{"solver", solver}, {"estimate", EstimateName(e)}}, abs_buckets);
      }
    }
    return f;
  }();
  return *families;
}

}  // namespace

TraceMode ParseTraceMode(const char* text) {
  if (text == nullptr || *text == '\0') return TraceMode::kOff;
  if (std::strcmp(text, "off") == 0 || std::strcmp(text, "0") == 0 ||
      std::strcmp(text, "false") == 0) {
    return TraceMode::kOff;
  }
  if (std::strcmp(text, "flight") == 0 || std::strcmp(text, "recorder") == 0) {
    return TraceMode::kFlight;
  }
  if (std::strcmp(text, "full") == 0 || std::strcmp(text, "on") == 0 ||
      std::strcmp(text, "1") == 0 || std::strcmp(text, "true") == 0) {
    return TraceMode::kFull;
  }
  return TraceMode::kOff;  // unrecognized values must not enable tracing
}

std::size_t ParseRingCapacity(const char* text) {
  if (text == nullptr || *text == '\0') return kDefaultRingCapacity;
  char* end = nullptr;
  const long long parsed = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || parsed <= 0) {
    return kDefaultRingCapacity;
  }
  const auto capacity = static_cast<std::size_t>(parsed);
  return std::clamp(capacity, kMinRingCapacity, kMaxRingCapacity);
}

std::size_t TraceRingCapacity() {
  static std::once_flag once;
  std::call_once(once, [] {
    if (const char* env = std::getenv("VAOLIB_TRACE_RING")) {
      g_ring_capacity.store(ParseRingCapacity(env),
                            std::memory_order_relaxed);
    }
  });
  return g_ring_capacity.load(std::memory_order_relaxed);
}

void SetTraceRingCapacity(std::size_t capacity) {
  TraceRingCapacity();  // settle the env init so it cannot overwrite us
  g_ring_capacity.store(
      std::clamp(capacity, kMinRingCapacity, kMaxRingCapacity),
      std::memory_order_relaxed);
}

TraceMode CurrentTraceMode() {
#ifdef VAOLIB_OBS_DISABLED
  return TraceMode::kOff;
#else
  const int mode = internal::g_trace_mode.load(std::memory_order_relaxed);
  if (mode >= 0) return static_cast<TraceMode>(mode);
  return internal::InitTraceModeFromEnv();
#endif
}

void SetTraceMode(TraceMode mode) {
  internal::g_trace_mode.store(static_cast<int>(mode),
                               std::memory_order_relaxed);
  UpdatePoolTraceHook(mode);
}

std::uint64_t TraceNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - TraceEpoch())
          .count());
}

void RecordSpan(const char* cat, const char* name, std::uint64_t start_ns,
                std::uint64_t end_ns, TraceDetail detail) {
  if (!TraceActive(detail)) return;
  TraceRingCapacity();  // settle env ring sizing before the first ring
  TraceEvent event;
  event.kind = TraceEvent::Kind::kSpan;
  event.cat = cat;
  event.name = name;
  event.ts_ns = start_ns;
  event.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  Push(event);
}

void RecordInstant(const char* cat, const char* name, TraceDetail detail) {
  if (!TraceActive(detail)) return;
  TraceRingCapacity();
  TraceEvent event;
  event.kind = TraceEvent::Kind::kInstant;
  event.cat = cat;
  event.name = name;
  event.ts_ns = TraceNowNs();
  Push(event);
}

void RecordDecision(const Decision& decision) {
  if (!DecisionTraceActive()) return;
  TraceRingCapacity();
  TraceEvent event;
  event.kind = TraceEvent::Kind::kDecision;
  event.cat = "decision";
  event.name = decision.op;
  event.phase = decision.phase;
  event.ts_ns = TraceNowNs();
  event.object_index = decision.object_index;
  event.lo_before = decision.lo_before;
  event.hi_before = decision.hi_before;
  event.lo_after = decision.lo_after;
  event.hi_after = decision.hi_after;
  event.est_lo = decision.est_lo;
  event.est_hi = decision.est_hi;
  event.est_cost = decision.est_cost;
  event.actual_cost = decision.actual_cost;
  event.score = decision.score;
  event.raw_score = decision.raw_score;
  Push(event);
}

TraceSnapshot SnapshotTrace() {
  TraceSnapshot snapshot;
  std::vector<std::shared_ptr<Ring>> rings;
  {
    RingRegistry& registry = Registry();
    std::lock_guard<std::mutex> lock(registry.mu);
    rings = registry.rings;
  }
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mu);
    snapshot.dropped += ring->dropped;
    if (!ring->wrapped) {
      snapshot.events.insert(snapshot.events.end(), ring->events.begin(),
                             ring->events.end());
      continue;
    }
    // Oldest-first: [next, end) then [0, next).
    snapshot.events.insert(snapshot.events.end(),
                           ring->events.begin() +
                               static_cast<std::ptrdiff_t>(ring->next),
                           ring->events.end());
    snapshot.events.insert(snapshot.events.end(), ring->events.begin(),
                           ring->events.begin() +
                               static_cast<std::ptrdiff_t>(ring->next));
  }
  std::sort(snapshot.events.begin(), snapshot.events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.seq < b.seq;
            });
  return snapshot;
}

void ClearTrace() {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    RingRegistry& registry = Registry();
    std::lock_guard<std::mutex> lock(registry.mu);
    rings = registry.rings;
  }
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mu);
    ring->events.clear();
    ring->next = 0;
    ring->wrapped = false;
    ring->dropped = 0;
  }
}

void ExportChromeTrace(const TraceSnapshot& snapshot, std::ostream& os) {
  os << "{\"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& event : snapshot.events) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\": \"" << event.name << "\", \"cat\": \"" << event.cat
       << "\", \"ph\": \""
       << (event.kind == TraceEvent::Kind::kSpan ? "X" : "i")
       << "\", \"ts\": ";
    AppendMicros(os, event.ts_ns);
    if (event.kind == TraceEvent::Kind::kSpan) {
      os << ", \"dur\": ";
      AppendMicros(os, event.dur_ns);
    } else {
      os << ", \"s\": \"t\"";
    }
    os << ", \"pid\": 1, \"tid\": " << event.tid;
    os << ", \"args\": {\"seq\": " << event.seq;
    if (event.kind == TraceEvent::Kind::kDecision) {
      os << ", \"phase\": \"" << (event.phase != nullptr ? event.phase : "")
         << "\", \"object\": " << event.object_index;
      os << ", \"lo_before\": ";
      AppendJsonDouble(os, event.lo_before);
      os << ", \"hi_before\": ";
      AppendJsonDouble(os, event.hi_before);
      os << ", \"lo_after\": ";
      AppendJsonDouble(os, event.lo_after);
      os << ", \"hi_after\": ";
      AppendJsonDouble(os, event.hi_after);
      os << ", \"est_lo\": ";
      AppendJsonDouble(os, event.est_lo);
      os << ", \"est_hi\": ";
      AppendJsonDouble(os, event.est_hi);
      os << ", \"est_cost\": ";
      AppendJsonDouble(os, event.est_cost);
      os << ", \"actual_cost\": ";
      AppendJsonDouble(os, event.actual_cost);
      os << ", \"score\": ";
      AppendJsonDouble(os, event.score);
      os << ", \"raw_score\": ";
      AppendJsonDouble(os, event.raw_score);
    }
    os << "}}";
  }
  os << "],\n\"otherData\": {\"dropped\": " << snapshot.dropped << "}}\n";
}

void ExportChromeTrace(std::ostream& os) {
  ExportChromeTrace(SnapshotTrace(), os);
}

void RecordEstimatorSample(SolverKind kind, double est_cost, double est_lo,
                           double est_hi, double actual_cost,
                           double actual_lo, double actual_hi) {
#ifdef VAOLIB_OBS_DISABLED
  (void)kind;
  (void)est_cost;
  (void)est_lo;
  (void)est_hi;
  (void)actual_cost;
  (void)actual_lo;
  (void)actual_hi;
#else
  if (!Enabled()) return;
  const double errors[3] = {actual_cost - est_cost, actual_lo - est_lo,
                            actual_hi - est_hi};
  // Chaos-injected NaN/Inf bounds would poison the running sums, and a
  // partially recorded sample would skew the shared per-kind sample count
  // that turns the six sums into means -- so a sample records all three
  // errors or none.
  for (const double error : errors) {
    if (!std::isfinite(error)) return;
  }
  const CalibrationHistograms& families = CalibrationFamilies();
  const int k = static_cast<int>(kind);
  for (int e = 0; e < 3; ++e) {
    families.err[k][e]->Observe(errors[e]);
    families.abs_err[k][e]->Observe(std::abs(errors[e]));
  }
#endif
}

CalibrationSnapshot CalibrationSnapshot::Capture() {
  CalibrationSnapshot snapshot;
#ifndef VAOLIB_OBS_DISABLED
  const CalibrationHistograms& families = CalibrationFamilies();
  for (int k = 0; k < kNumSolverKinds; ++k) {
    Kind& out = snapshot.kinds[k];
    out.samples = families.err[k][0]->TotalCount();
    out.cost_err_sum = families.err[k][0]->Sum();
    out.lo_err_sum = families.err[k][1]->Sum();
    out.hi_err_sum = families.err[k][2]->Sum();
    out.cost_abs_err_sum = families.abs_err[k][0]->Sum();
    out.lo_abs_err_sum = families.abs_err[k][1]->Sum();
    out.hi_abs_err_sum = families.abs_err[k][2]->Sum();
  }
#endif
  return snapshot;
}

CalibrationSnapshot CalibrationSnapshot::DeltaSince(
    const CalibrationSnapshot& before) const {
  CalibrationSnapshot delta;
  for (int k = 0; k < kNumSolverKinds; ++k) {
    delta.kinds[k].samples = kinds[k].samples - before.kinds[k].samples;
    delta.kinds[k].cost_err_sum =
        kinds[k].cost_err_sum - before.kinds[k].cost_err_sum;
    delta.kinds[k].cost_abs_err_sum =
        kinds[k].cost_abs_err_sum - before.kinds[k].cost_abs_err_sum;
    delta.kinds[k].lo_err_sum =
        kinds[k].lo_err_sum - before.kinds[k].lo_err_sum;
    delta.kinds[k].lo_abs_err_sum =
        kinds[k].lo_abs_err_sum - before.kinds[k].lo_abs_err_sum;
    delta.kinds[k].hi_err_sum =
        kinds[k].hi_err_sum - before.kinds[k].hi_err_sum;
    delta.kinds[k].hi_abs_err_sum =
        kinds[k].hi_abs_err_sum - before.kinds[k].hi_abs_err_sum;
  }
  return delta;
}

}  // namespace vaolib::obs
