#include "obs/flight_recorder.h"

#include <cctype>
#include <cstdlib>
#include <fstream>

#include "obs/trace.h"

namespace vaolib::obs {

namespace {

std::string Sanitize(const std::string& reason) {
  std::string out;
  out.reserve(reason.size());
  for (const char c : reason) {
    const auto u = static_cast<unsigned char>(c);
    out.push_back(std::isalnum(u) || c == '-' || c == '_' ? c : '_');
  }
  return out.empty() ? std::string("dump") : out;
}

}  // namespace

FlightRecorder::FlightRecorder() {
  if (const char* env = std::getenv("VAOLIB_TRACE_DUMP")) {
    dir_ = env;
  }
}

FlightRecorder& FlightRecorder::Global() {
  // Leaked intentionally: dump triggers can fire from static teardown-ish
  // paths in tests; same rationale as MetricsRegistry::Global().
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

void FlightRecorder::SetDumpDir(std::string dir) {
  std::lock_guard<std::mutex> lock(mutex_);
  dir_ = std::move(dir);
}

bool FlightRecorder::Armed() const {
  if (CurrentTraceMode() == TraceMode::kOff) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  return !dir_.empty();
}

std::optional<std::string> FlightRecorder::Dump(const std::string& reason) {
  if (!Armed()) return std::nullopt;
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Chaos-heavy runs trip stall triggers constantly; a flight recorder
    // that can fill a disk is broken, so cap dumps per process.
    if (next_seq_ >= kMaxDumps) return std::nullopt;
    path = dir_ + "/flight-" + std::to_string(next_seq_++) + "-" +
           Sanitize(reason) + ".json";
  }
  std::ofstream out(path);
  if (!out) return std::nullopt;
  ExportChromeTrace(out);
  return out ? std::optional<std::string>(path) : std::nullopt;
}

std::uint64_t FlightRecorder::dump_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_;
}

}  // namespace vaolib::obs
