// Copyright 2026 The vaolib Authors.
// Runtime health plane: windowed metric views, per-query convergence
// progress rings, and multi-window burn-rate SLO monitors.
//
// Everything here is pull-driven and clock-free by design:
//   * WindowedView snapshots the (cumulative) MetricsRegistry into a ring
//     of epochs. Epochs advance when the owner calls Advance() -- from the
//     server tick loop or with an injected wall-clock timestamp -- so no
//     now() call ever sits on a hot path, and deterministic runs produce
//     deterministic windows.
//   * ProgressRing records one bound-width sample per standing-query tick
//     and answers "how wide, shrinking how fast, done when?" from the
//     retained trajectory (optionally corrected by the CostHistory shrink
//     ratio the caller passes in as a hint).
//   * SloMonitor evaluates declarative objectives over a fast and a slow
//     window of the view, Google-SRE multi-window burn-rate style:
//         burn = observed_bad_fraction / error_budget
//     degraded when either window burns >= degraded_burn, critical when
//     BOTH windows burn >= critical_burn (the fast window confirms the
//     slow one so a single bad epoch cannot page). A transition into
//     critical arms the flight recorder (obs/flight_recorder.h).
//
// Overhead contract: the hot path pays exactly one MetricsRegistry
// snapshot per epoch advance plus one ProgressRing store per query-tick;
// all rate/quantile/burn queries run on the introspection (INSPECT/
// METRICS) path. bench/obs02_health_overhead gates the total at <2% of
// tick cost.

#ifndef VAOLIB_OBS_HEALTH_H_
#define VAOLIB_OBS_HEALTH_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace vaolib::obs {

/// \brief A metrics view windowed into a ring of epochs. Each Advance()
/// closes one epoch by snapshotting the registry's cumulative state;
/// queries then read counter/histogram *deltas* over the last K closed
/// epochs. Not thread-safe: the owner serializes Advance() and queries
/// (the server dispatcher holds its tick lock across both).
class WindowedView {
 public:
  struct Options {
    /// Closed epochs retained (the ring's depth); K in queries is clamped
    /// to this.
    std::size_t window_count = 64;
  };

  /// Captures the baseline snapshot immediately, so the first closed epoch
  /// covers exactly the activity after construction. \p registry must
  /// outlive the view.
  explicit WindowedView(MetricsRegistry* registry);
  WindowedView(MetricsRegistry* registry, Options options);

  /// Closes the current epoch (tick-driven; no wall clock recorded).
  void Advance();
  /// Closes the current epoch with an injected timestamp; rates over
  /// epochs that all carry timestamps come back per second instead of per
  /// epoch. \p now_seconds must be monotonically non-decreasing.
  void Advance(double now_seconds);

  /// Closed epochs currently retained (<= window_count).
  std::size_t epochs() const { return ring_.size() - 1; }
  /// Epochs closed over the view's lifetime (not capped by the ring).
  std::uint64_t total_advances() const { return total_advances_; }
  const Options& options() const { return options_; }
  MetricsRegistry* registry() const { return registry_; }

  /// Counter increment over the last \p k closed epochs (k clamped to
  /// [1, epochs()]; 0 means "all retained"). Unregistered identities read
  /// as 0.
  std::uint64_t CounterDelta(const std::string& name,
                             const MetricsRegistry::Labels& labels,
                             std::size_t k) const;

  /// CounterDelta per second when every epoch in the span carries an
  /// injected timestamp, otherwise per epoch. 0 when the span is empty.
  double CounterRate(const std::string& name,
                     const MetricsRegistry::Labels& labels,
                     std::size_t k) const;

  /// Histogram observation count / sum over the last \p k closed epochs.
  std::uint64_t HistogramCountDelta(const std::string& name,
                                    const MetricsRegistry::Labels& labels,
                                    std::size_t k) const;
  double HistogramSumDelta(const std::string& name,
                           const MetricsRegistry::Labels& labels,
                           std::size_t k) const;

  /// Quantile estimate over the bucket deltas of the last \p k closed
  /// epochs (same interpolation contract as Histogram::Quantile). Returns
  /// 0 when no observation landed in the span.
  double HistogramQuantile(const std::string& name,
                           const MetricsRegistry::Labels& labels, double q,
                           std::size_t k) const;

 private:
  struct Epoch {
    MetricsSnapshot snapshot;
    double at_seconds = 0.0;
    bool has_clock = false;
  };

  void Push(double now_seconds, bool has_clock);
  /// Indices into ring_ spanning the last k closed epochs: (older, newest).
  std::pair<std::size_t, std::size_t> Span(std::size_t k) const;

  MetricsRegistry* registry_;
  Options options_;
  std::deque<Epoch> ring_;  // oldest first; size() == epochs() + 1
  std::uint64_t total_advances_ = 0;
};

/// \brief One standing query's convergence state after one tick.
struct ProgressSample {
  std::uint64_t tick = 0;        ///< dispatcher tick sequence number
  double width = 0.0;            ///< H - L of the tick's answer interval
  double rel_width = 0.0;        ///< width / max(|L|, |H|), 0 when both 0
  std::uint64_t work_spent = 0;  ///< work units this query spent this tick
  bool converged = false;
  /// The query finished its tick without reaching the requested epsilon:
  /// its objects are at minimum width, so more budget cannot help.
  bool limited_by_min_width = false;
};

/// \brief Ticks/work remaining until a query's interval reaches a target
/// width, extrapolated from its retained trajectory.
struct EtaEstimate {
  bool known = false;
  double ticks = 0.0;
  double work_units = 0.0;
};

/// \brief Bounded ring of per-tick progress samples for one standing
/// query. Not thread-safe (owned and serialized by the dispatcher).
class ProgressRing {
 public:
  explicit ProgressRing(std::size_t capacity = 32);

  void Record(const ProgressSample& sample);

  std::size_t size() const { return samples_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t total_recorded() const { return total_recorded_; }
  /// \p i = 0 is the oldest retained sample.
  const ProgressSample& at(std::size_t i) const { return samples_[i]; }
  const ProgressSample& newest() const { return samples_.back(); }

  /// Extrapolates the per-tick log-width shrink rate of the last few
  /// samples to estimate ticks/work until width <= \p target_width.
  /// \p shrink_hint is a multiplicative correction from the query group's
  /// CostHistory (EWMA actual/estimated shrink ratio; clamped to
  /// [0.25, 4]); pass 1.0 when no history exists. Unknown when the ring is
  /// empty, the trajectory is flat or widening, the newest sample is
  /// limited_by_min_width, or widths are not finite. A query already at or
  /// below the target reports {known, 0, 0}.
  EtaEstimate EstimateEta(double target_width, double shrink_hint = 1.0) const;

 private:
  std::size_t capacity_;
  std::deque<ProgressSample> samples_;  // oldest first
  std::uint64_t total_recorded_ = 0;
};

/// \brief Overall health verdict, ordered by severity.
enum class HealthState : int {
  kHealthy = 0,
  kDegraded = 1,
  kCritical = 2,
};

/// "healthy" / "degraded" / "critical".
const char* HealthStateName(HealthState state);

/// \brief One declarative objective. Two shapes:
///   * ratio (bad_metric non-empty): observed value = bad/total counter
///     deltas over the window, error budget = \p budget (max allowed bad
///     fraction), burn = value / budget.
///   * quantile (bad_metric empty): observed value = \p quantile of
///     histogram_metric's deltas over the window, burn = value / limit.
struct SloSpec {
  std::string name;

  std::string bad_metric;
  MetricsRegistry::Labels bad_labels;
  std::string total_metric;
  MetricsRegistry::Labels total_labels;
  double budget = 0.01;

  std::string histogram_metric;
  MetricsRegistry::Labels histogram_labels;
  double quantile = 0.99;
  double limit = 0.0;

  /// Window sizes in closed epochs (clamped to the view's retained depth).
  std::size_t fast_epochs = 6;
  std::size_t slow_epochs = 36;
  /// Either window burning >= degraded_burn marks the SLO degraded; BOTH
  /// windows burning >= critical_burn mark it critical.
  double degraded_burn = 1.0;
  double critical_burn = 2.0;
};

/// \brief One objective's evaluated state.
struct SloStatus {
  std::string name;
  double fast_value = 0.0;  ///< observed bad fraction or quantile
  double slow_value = 0.0;
  double fast_burn = 0.0;
  double slow_burn = 0.0;
  HealthState state = HealthState::kHealthy;
};

/// \brief Evaluates a set of SloSpecs against a WindowedView and maintains
/// the process health gauges:
///   vaolib_health_state                 0|1|2 (worst SLO)
///   vaolib_slo_state{slo=...}           0|1|2
///   vaolib_slo_burn_milli{slo=,window=} burn rate x1000, saturated
/// A transition into critical bumps vaolib_slo_critical_transitions_total
/// and calls FlightRecorder::Global().DumpIfArmed("slo-critical-<name>").
/// Not thread-safe (serialized by the owner, like the view).
class SloMonitor {
 public:
  /// \p view must outlive the monitor; gauges register in view->registry().
  SloMonitor(const WindowedView* view, std::vector<SloSpec> specs);

  /// Re-evaluates every objective over the view's closed epochs. Cheap
  /// enough for once-per-epoch use.
  HealthState Evaluate();

  HealthState state() const { return state_; }
  const std::vector<SloStatus>& statuses() const { return statuses_; }
  const std::vector<SloSpec>& specs() const { return specs_; }
  /// Count of SLO transitions into critical since construction.
  std::uint64_t critical_transitions() const { return critical_transitions_; }

 private:
  const WindowedView* view_;
  std::vector<SloSpec> specs_;
  std::vector<SloStatus> statuses_;
  HealthState state_ = HealthState::kHealthy;
  std::uint64_t critical_transitions_ = 0;
};

}  // namespace vaolib::obs

#endif  // VAOLIB_OBS_HEALTH_H_
