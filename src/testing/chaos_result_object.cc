#include "testing/chaos_result_object.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <utility>

namespace vaolib::testing {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kLyingEstimates:
      return "lying-estimates";
    case FaultKind::kStalledConvergence:
      return "stalled-convergence";
    case FaultKind::kNanBounds:
      return "nan-bounds";
    case FaultKind::kInfBounds:
      return "inf-bounds";
    case FaultKind::kInvertedBounds:
      return "inverted-bounds";
    case FaultKind::kIterateFailure:
      return "iterate-failure";
  }
  return "unknown";
}

FaultPlan FaultPlan::Draw(FaultKind kind, Rng* rng) {
  FaultPlan plan;
  plan.kind = kind;
  plan.trigger_iteration = static_cast<int>(rng->UniformInt(0, 6));
  // Log-uniform in [1/16, 16]: covers both "cheaper/tighter than promised"
  // and wildly optimistic estimates.
  plan.cost_factor = std::exp2(rng->Uniform(-4.0, 4.0));
  plan.width_factor = std::exp2(rng->Uniform(-4.0, 4.0));
  return plan;
}

std::string FaultPlan::ToString() const {
  return std::string(FaultKindName(kind)) + "@" +
         std::to_string(trigger_iteration);
}

Bounds ChaosResultObject::bounds() const {
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  if (!Armed()) return inner_->bounds();
  switch (plan_.kind) {
    case FaultKind::kNanBounds:
      return Bounds(kNan, kNan);
    case FaultKind::kInfBounds:
      return Bounds(-kInf, kInf);
    case FaultKind::kInvertedBounds: {
      const Bounds b = inner_->bounds();
      // Swap endpoints, nudging apart so a degenerate [v, v] still inverts.
      const double gap = std::max(b.Width(), 1.0);
      return Bounds(b.Mid() + 0.5 * gap, b.Mid() - 0.5 * gap);
    }
    case FaultKind::kStalledConvergence:
      if (!froze_) {
        froze_ = true;
        frozen_bounds_ = inner_->bounds();
      }
      return frozen_bounds_;
    case FaultKind::kNone:
    case FaultKind::kLyingEstimates:
    case FaultKind::kIterateFailure:
      break;
  }
  return inner_->bounds();
}

Status ChaosResultObject::Iterate() {
  if (Armed() && plan_.kind == FaultKind::kIterateFailure) {
    ++iterations_;
    return Status::NumericError("injected Iterate() failure (" +
                                plan_.ToString() + ")");
  }
  if (Armed() && plan_.kind == FaultKind::kStalledConvergence) {
    // Freeze the visible bounds (if not already) and burn the call without
    // driving the inner solver: succeeds, but makes no progress.
    if (!froze_) {
      froze_ = true;
      frozen_bounds_ = inner_->bounds();
    }
    ++iterations_;
    return Status::OK();
  }
  ++iterations_;
  return inner_->Iterate();
}

std::uint64_t ChaosResultObject::est_cost() const {
  if (plan_.kind == FaultKind::kLyingEstimates) {
    const double lied =
        static_cast<double>(inner_->est_cost()) * plan_.cost_factor;
    return lied < 1.0 ? 1 : static_cast<std::uint64_t>(lied);
  }
  return inner_->est_cost();
}

Bounds ChaosResultObject::est_bounds() const {
  if (plan_.kind == FaultKind::kLyingEstimates) {
    const Bounds honest = inner_->est_bounds();
    return Bounds::Centered(honest.Mid(),
                            0.5 * honest.Width() * plan_.width_factor);
  }
  // Bounds faults leak into the estimate too -- estimates derive from the
  // same broken state in a real solver.
  if (Armed() && plan_.kind != FaultKind::kNone) return bounds();
  return inner_->est_bounds();
}

std::uint64_t HashArgs(const std::vector<double>& args) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  for (const double arg : args) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(arg), "double must be 64-bit");
    std::memcpy(&bits, &arg, sizeof(bits));
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (bits >> (8 * byte)) & 0xFF;
      hash *= 0x100000001B3ULL;  // FNV prime
    }
  }
  return hash;
}

ChaosFunction::ChaosFunction(const vao::VariableAccuracyFunction* inner,
                             const ChaosOptions& options)
    : inner_(inner),
      options_(options),
      name_("chaos(" + inner->name() + ")") {}

FaultPlan ChaosFunction::PlanFor(const std::vector<double>& args) const {
  if (options_.kinds.empty()) return FaultPlan{};
  Rng rng(HashArgs(args) ^ options_.seed);
  if (!rng.Bernoulli(options_.fault_probability)) return FaultPlan{};
  const auto pick = static_cast<std::size_t>(rng.UniformInt(
      0, static_cast<std::int64_t>(options_.kinds.size()) - 1));
  return FaultPlan::Draw(options_.kinds[pick], &rng);
}

Result<vao::ResultObjectPtr> ChaosFunction::Invoke(
    const std::vector<double>& args, WorkMeter* meter) const {
  FaultPlan plan = PlanFor(args);
  if (plan.kind != FaultKind::kNone && options_.transient) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (invocations_[args]++ > 0) plan = FaultPlan{};
  }
  auto inner = inner_->Invoke(args, meter);
  if (!inner.ok()) return inner.status();
  return vao::ResultObjectPtr(
      new ChaosResultObject(std::move(inner).value(), plan));
}

}  // namespace vaolib::testing
