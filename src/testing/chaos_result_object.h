// Copyright 2026 The vaolib Authors.
// Deterministic fault injection for the VAO interface.
//
// ChaosResultObject decorates any ResultObject and injects one planned fault:
// lying estimates, stalled convergence, NaN/Inf bounds, inverted bounds
// (L > H), or Iterate() failures. The fault is described by a FaultPlan drawn
// from the common Rng, so an entire chaos run replays bit-for-bit from a
// single seed. ChaosFunction lifts the decorator to a whole
// VariableAccuracyFunction: each argument vector gets a plan derived from
// hash(args) ^ seed -- never from invocation order -- so the set of poisoned
// rows is identical no matter how many threads race through Invoke().

#ifndef VAOLIB_TESTING_CHAOS_RESULT_OBJECT_H_
#define VAOLIB_TESTING_CHAOS_RESULT_OBJECT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "vao/result_object.h"

namespace vaolib::testing {

/// \brief The fault categories a ChaosResultObject can inject.
enum class FaultKind {
  kNone,               ///< transparent pass-through
  kLyingEstimates,     ///< est_cost/est_bounds off by configured factors
  kStalledConvergence, ///< Iterate() succeeds but bounds freeze above minWidth
  kNanBounds,          ///< bounds() returns [NaN, NaN]
  kInfBounds,          ///< bounds() returns [-inf, +inf]
  kInvertedBounds,     ///< bounds() returns [hi, lo] with hi > lo (L > H)
  kIterateFailure,     ///< Iterate() returns NumericError
};

/// \brief Source-level name of \p kind (for repro lines and diagnostics).
const char* FaultKindName(FaultKind kind);

/// \brief One planned fault: what goes wrong, when, and by how much.
///
/// All faults except kLyingEstimates arm after `trigger_iteration` Iterate()
/// calls on the decorator (0 = faulty from birth); lying estimates are
/// always on. The plan is plain data so it can be logged and replayed.
struct FaultPlan {
  FaultKind kind = FaultKind::kNone;
  /// Iterate() calls on the wrapper before the fault arms.
  int trigger_iteration = 0;
  /// kLyingEstimates: est_cost() multiplier (>= 0; result clamped to >= 1).
  double cost_factor = 1.0;
  /// kLyingEstimates: est_bounds() width multiplier.
  double width_factor = 1.0;

  /// Draws a plan of the given \p kind from \p rng: trigger in [0, 6],
  /// estimate factors log-uniform in [1/16, 16].
  static FaultPlan Draw(FaultKind kind, Rng* rng);

  /// Human-readable summary, e.g. "stalled-convergence@3".
  std::string ToString() const;
};

/// \brief Decorator injecting the fault described by a FaultPlan into an
/// otherwise-honest ResultObject.
///
/// Soundness caveat by design: once a bounds fault (NaN/Inf/inverted) or a
/// stall arms, bounds() no longer tracks the inner object -- that is the
/// point. Operators are expected to catch the malformed cases via
/// ValidateObjectBounds and the frozen case via their stall guards.
class ChaosResultObject : public vao::ResultObject {
 public:
  ChaosResultObject(vao::ResultObjectPtr inner, const FaultPlan& plan)
      : inner_(std::move(inner)), plan_(plan) {}

  Bounds bounds() const override;
  double min_width() const override { return inner_->min_width(); }
  Status Iterate() override;
  std::uint64_t est_cost() const override;
  Bounds est_bounds() const override;
  int iterations() const override { return iterations_; }
  std::uint64_t traditional_cost() const override {
    return inner_->traditional_cost();
  }
  // Identity passes through untouched: a chaos object lies about estimates
  // and bounds, never about which solver family / correlation group it
  // belongs to (that is exactly the situation the calibrated strategies
  // must correct).
  int calibration_kind() const override {
    return inner_->calibration_kind();
  }
  std::string correlation_key() const override {
    return inner_->correlation_key();
  }

  const FaultPlan& plan() const { return plan_; }
  const vao::ResultObject& inner() const { return *inner_; }

 private:
  /// True once iterations_ has reached the plan's trigger.
  bool Armed() const { return iterations_ >= plan_.trigger_iteration; }

  vao::ResultObjectPtr inner_;
  FaultPlan plan_;
  int iterations_ = 0;
  /// kStalledConvergence: bounds at the moment the stall armed.
  mutable bool froze_ = false;
  mutable Bounds frozen_bounds_;
};

/// \brief Configuration of a ChaosFunction.
struct ChaosOptions {
  /// Root seed; combined with hash(args) to derive each plan.
  std::uint64_t seed = 1;
  /// Probability that a given argument vector is poisoned at all.
  double fault_probability = 0.25;
  /// Kinds to draw from (uniformly) for poisoned vectors; empty disables
  /// injection entirely.
  std::vector<FaultKind> kinds = {
      FaultKind::kLyingEstimates,  FaultKind::kStalledConvergence,
      FaultKind::kNanBounds,       FaultKind::kInfBounds,
      FaultKind::kInvertedBounds,  FaultKind::kIterateFailure,
  };
  /// When true, each poisoned argument vector faults only on its FIRST
  /// Invoke() and behaves honestly afterwards -- a transient solver
  /// breakdown. Lets tests exercise the engine's black-box fallback, whose
  /// calibration pass re-invokes the same arguments.
  bool transient = false;
};

/// \brief Fault-injecting decorator over a VariableAccuracyFunction.
///
/// Thread-safe: the plan for an argument vector depends only on
/// (args, options.seed), so concurrent Invoke() calls -- InvokeAll, batch
/// operator paths -- poison exactly the same rows in every run and at every
/// thread count. In transient mode a per-args invocation counter (mutex
/// guarded) downgrades the plan to kNone after the first call.
class ChaosFunction : public vao::VariableAccuracyFunction {
 public:
  /// Wraps \p inner (borrowed; must outlive this object).
  ChaosFunction(const vao::VariableAccuracyFunction* inner,
                const ChaosOptions& options);

  const std::string& name() const override { return name_; }
  int arity() const override { return inner_->arity(); }
  Result<vao::ResultObjectPtr> Invoke(const std::vector<double>& args,
                                      WorkMeter* meter) const override;

  /// The plan Invoke() would apply to \p args on its first call.
  FaultPlan PlanFor(const std::vector<double>& args) const;

  const ChaosOptions& options() const { return options_; }

 private:
  const vao::VariableAccuracyFunction* inner_;
  ChaosOptions options_;
  std::string name_;
  mutable std::mutex mutex_;
  mutable std::map<std::vector<double>, std::uint64_t> invocations_;
};

/// \brief FNV-1a hash of an argument vector's bit patterns; the keying
/// function ChaosFunction uses to make plans order- and thread-independent.
std::uint64_t HashArgs(const std::vector<double>& args);

}  // namespace vaolib::testing

#endif  // VAOLIB_TESTING_CHAOS_RESULT_OBJECT_H_
