#include "testing/workload_gen.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "workload/hot_cold.h"
#include "workload/selectivity.h"

namespace vaolib::testing {

Result<vao::ResultObjectPtr> SyntheticTableFunction::Invoke(
    const std::vector<double>& args, WorkMeter* meter) const {
  if (args.size() != 1) {
    return Status::InvalidArgument("synthetic table function expects 1 arg");
  }
  const double id = args[0];
  if (!(id >= 0.0) || id != std::floor(id) ||
      id >= static_cast<double>(configs_.size())) {
    return Status::InvalidArgument("row id " + std::to_string(id) +
                                   " outside the synthetic table");
  }
  vao::SyntheticResultObject::Config config =
      configs_[static_cast<std::size_t>(id)];
  config.meter = meter;
  return vao::ResultObjectPtr(new vao::SyntheticResultObject(config));
}

Workload MakeWorkload(const WorkloadSpec& spec, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<vao::SyntheticResultObject::Config> configs;
  std::vector<double> true_values;
  configs.reserve(spec.rows);
  true_values.reserve(spec.rows);
  for (std::size_t row = 0; row < spec.rows; ++row) {
    vao::SyntheticResultObject::Config config;
    config.true_value = rng.Uniform(spec.value_lo, spec.value_hi);
    config.initial_half_width =
        rng.Uniform(spec.initial_half_width_lo, spec.initial_half_width_hi);
    config.shrink = rng.Uniform(spec.shrink_lo, spec.shrink_hi);
    config.skew = rng.NextDouble();
    config.min_width = spec.min_width;
    config.cost_per_iteration =
        static_cast<std::uint64_t>(rng.UniformInt(1, 8));
    config.cost_growth = rng.Uniform(1.0, 2.0);
    true_values.push_back(config.true_value);
    configs.push_back(config);
  }

  workload::HotColdSpec hot_cold;
  hot_cold.count = spec.rows;
  hot_cold.hot_fraction = spec.hot_fraction;
  hot_cold.hot_weight_share = spec.hot_weight_share;
  hot_cold.total_weight = static_cast<double>(spec.rows);
  std::vector<double> weights =
      workload::HotColdWeights(hot_cold, &rng).ValueOrDie();

  engine::Schema schema({{"id", engine::ColumnType::kDouble},
                         {"weight", engine::ColumnType::kDouble}});
  Workload workload{nullptr, engine::Relation(std::move(schema)),
                    std::move(true_values), std::move(weights),
                    spec.min_width};
  for (std::size_t row = 0; row < spec.rows; ++row) {
    const Status appended =
        workload.relation.Append({static_cast<double>(row),
                                  workload.weights[row]});
    if (!appended.ok()) internal::DieOnError(appended, "Relation::Append");
  }
  workload.function =
      std::make_unique<SyntheticTableFunction>(std::move(configs));
  return workload;
}

engine::Query MakeQuery(const Workload& workload, engine::QueryKind kind,
                        std::size_t k, Rng* rng) {
  engine::Query query;
  query.kind = kind;
  query.function = workload.function.get();
  query.args = {engine::ArgRef::RelationField("id")};
  query.epsilon = workload.min_width * rng->Uniform(1.0, 40.0);
  query.k = std::max<std::size_t>(1, std::min(k, workload.relation.size()));

  // A threshold at a requested selectivity; once in a while sit it right on
  // (or within minWidth of) a true value to stress the equal-rule boundary.
  auto draw_constant = [&]() {
    const double selectivity = rng->NextDouble();
    double c = workload::ConstantForGreaterSelectivity(workload.true_values,
                                                       selectivity)
                   .ValueOrDie();
    if (rng->Bernoulli(0.25)) {
      const auto pick = static_cast<std::size_t>(rng->UniformInt(
          0, static_cast<std::int64_t>(workload.true_values.size()) - 1));
      c = workload.true_values[pick] +
          rng->Uniform(-workload.min_width, workload.min_width);
    }
    return c;
  };

  switch (kind) {
    case engine::QueryKind::kSelect: {
      const operators::Comparator comparators[] = {
          operators::Comparator::kGreaterThan,
          operators::Comparator::kGreaterEqual,
          operators::Comparator::kLessThan,
          operators::Comparator::kLessEqual,
      };
      query.cmp = comparators[rng->UniformInt(0, 3)];
      query.constant = draw_constant();
      break;
    }
    case engine::QueryKind::kSelectRange: {
      double a = draw_constant();
      double b = draw_constant();
      if (b < a) std::swap(a, b);
      query.range_lo = a;
      query.range_hi = b;
      query.range_inclusive = true;  // the surface grammar's BETWEEN
      break;
    }
    case engine::QueryKind::kSum:
      if (rng->Bernoulli(0.5)) query.weight_column = "weight";
      break;
    case engine::QueryKind::kMax:
    case engine::QueryKind::kMin:
    case engine::QueryKind::kAve:
    case engine::QueryKind::kTopK:
      break;
  }
  return query;
}

}  // namespace vaolib::testing
