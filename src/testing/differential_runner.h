// Copyright 2026 The vaolib Authors.
// DifferentialRunner: drives thousands of seeded workloads through the VAO
// engine across query kinds x thread counts x cache on/off (plus a direct
// iteration-strategy sweep over the aggregate operators), checks every
// answer against the OracleExecutor and the workloads' known true values,
// validates the InvariantChecker properties on each tick, and shrinks any
// failure to a minimal (seed, rows) repro it can print.
//
// Replay workflow: every failure is fully determined by
// (seed, kind, k, rows, threads, cache) -- rebuild the workload from the
// seed and re-run the one combo via RunOne(). Environment knobs:
//   VAOLIB_DIFF_SEEDS     overrides DifferentialOptions::seeds
//   VAOLIB_DIFF_ARTIFACT  file to append failing-combo repro lines to

#ifndef VAOLIB_TESTING_DIFFERENTIAL_RUNNER_H_
#define VAOLIB_TESTING_DIFFERENTIAL_RUNNER_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/query.h"
#include "engine/scheduler.h"
#include "testing/workload_gen.h"

namespace vaolib::testing {

/// \brief Deliberate defects the runner can plant in the system under test,
/// to prove the harness catches them. The oracle always sees the unmutated
/// query; the engine sees the mutated one.
enum class Mutation {
  kNone,
  kFlipComparator,  ///< selection: > <-> <=, < <-> >= (broken comparison)
  kSwapMinMax,      ///< extreme aggregates: MAX answered as MIN
  /// Predictive planning: the calibration correction is applied with the
  /// wrong sign (learned ratios inverted, biases negated). The calibration
  /// audit must catch it: corrected estimates get WORSE than raw ones.
  kFlipCalibrationSign,
};

/// \brief One query-kind variant in the sweep (k matters only for kTopK).
struct KindVariant {
  engine::QueryKind kind = engine::QueryKind::kSelect;
  std::size_t k = 1;
};

/// \brief Runner configuration. Defaults give >= 2000 combos per operator
/// family (selection, min/max, sum/ave, top-k) at 250 seeds.
struct DifferentialOptions {
  std::size_t seeds = 250;
  std::uint64_t base_seed = 0x0D1FF5EEDULL;
  std::size_t rows = 14;
  std::vector<int> thread_counts = {1, 3};
  std::vector<bool> cache_modes = {false, true};
  std::vector<KindVariant> kinds = {
      {engine::QueryKind::kSelect, 1}, {engine::QueryKind::kSelectRange, 1},
      {engine::QueryKind::kMax, 1},    {engine::QueryKind::kMin, 1},
      {engine::QueryKind::kSum, 1},    {engine::QueryKind::kAve, 1},
      {engine::QueryKind::kTopK, 1},   {engine::QueryKind::kTopK, 3},
  };
  /// Direct MinMaxVao/SumAveVao sweep over these strategies (the executor
  /// path always runs the paper's greedy strategy).
  std::vector<operators::StrategyKind> strategies = {
      operators::StrategyKind::kGreedy,
      operators::StrategyKind::kRoundRobin,
      operators::StrategyKind::kRandom,
      operators::StrategyKind::kCalibratedGreedy,
      operators::StrategyKind::kSentinelGreedy,
  };
  /// Batch-greedy axis of the strategy sweep: every K here additionally
  /// runs the aggregates with StrategyKind::kBatchGreedy and
  /// OperatorOptions::batch_k = K (the top-K-per-cycle batch execution
  /// tier). Unbudgeted runs must produce oracle-exact answers at every K.
  /// Empty disables the axis.
  std::vector<int> batch_ks = {1, 4, 16};
  /// Scheduled-execution axis: per seed, all `kinds` run as ONE
  /// MultiQueryExecutor batch under each policy -- first unbudgeted (every
  /// answer must then match the oracle exactly, converged = true), then
  /// again at each `budget_fractions` slice of that run's own spend
  /// (converged answers must still match the oracle exactly; unconverged
  /// ones must stay within the oracle's bounds and the per-query spends
  /// must sum to the scheduler's reported total). Empty disables the axis.
  std::vector<engine::SchedulerPolicy> scheduler_policies = {
      engine::SchedulerPolicy::kGreedyGlobal,
      engine::SchedulerPolicy::kFairShare,
      engine::SchedulerPolicy::kDeadline,
  };
  std::vector<double> budget_fractions = {0.4};
  /// Approximate-answer axis: per seed, SUM and AVE run once more through
  /// the sampled tier (Query::approx) on a positive-valued workload of
  /// `approx_rows` rows, twice each (the second run must reproduce the
  /// first bit-for-bit -- sampling is seeded). Each combined interval is
  /// checked for structural soundness, and whether it covers the true
  /// weighted aggregate is tallied into DifferentialSummary::approx_*;
  /// after the sweep, RunAll fails the run when the coverage rate drops
  /// below approx_confidence minus three binomial standard errors. Exact
  /// runs are untouched by this axis.
  bool approx_axis = true;
  std::size_t approx_rows = 160;
  double approx_confidence = 0.9;
  double approx_target_rel_error = 0.05;
  std::size_t approx_initial_samples = 24;
  Mutation mutation = Mutation::kNone;
  /// Stop after this many failures (each one shrinks, which re-runs combos).
  std::size_t max_failures = 8;
  bool shrink = true;
  /// Failing-combo repro lines are appended here when non-empty.
  std::string artifact_path;

  /// Applies VAOLIB_DIFF_SEEDS / VAOLIB_DIFF_ARTIFACT over \p base (or over
  /// the defaults, in the zero-argument form).
  static DifferentialOptions FromEnv(DifferentialOptions base);
  static DifferentialOptions FromEnv();
};

/// \brief A mismatch, shrunk to the smallest failing workload.
struct DifferentialFailure {
  std::uint64_t seed = 0;
  KindVariant variant;
  std::size_t rows = 0;
  int threads = 1;
  bool cache = false;
  std::string detail;  ///< what diverged from the oracle
  std::string repro;   ///< one-line replay recipe incl. the query text
};

/// \brief Aggregate result of a RunAll() sweep.
struct DifferentialSummary {
  std::uint64_t combos = 0;
  /// Combos checked per operator family: "selection", "minmax", "sumave",
  /// "topk".
  std::map<std::string, std::uint64_t> combos_by_family;
  /// Approximate-axis tallies: intervals checked for oracle coverage, and
  /// how many contained the true aggregate (see
  /// DifferentialOptions::approx_axis).
  std::uint64_t approx_checks = 0;
  std::uint64_t approx_covered = 0;
  std::vector<DifferentialFailure> failures;

  bool ok() const { return failures.empty(); }
};

/// \brief The differential sweep driver.
class DifferentialRunner {
 public:
  explicit DifferentialRunner(const DifferentialOptions& options)
      : options_(options) {}

  /// Runs the full sweep. A non-OK status means the harness itself broke
  /// (oracle failure, executor construction error); answer mismatches are
  /// reported in the summary, not as a status.
  Result<DifferentialSummary> RunAll();

  /// Re-checks one combo; returns the mismatch description, or nullopt when
  /// the combo passes. This is the replay entry point for failing seeds.
  Result<std::optional<std::string>> RunOne(std::uint64_t seed,
                                            const KindVariant& variant,
                                            std::size_t rows, int threads,
                                            bool cache);

  const DifferentialOptions& options() const { return options_; }

  /// Operator family of \p kind ("selection", "minmax", "sumave", "topk").
  static const char* FamilyOf(engine::QueryKind kind);

 private:
  /// Checks every thread x cache combo of one (seed, variant) pair against
  /// a shared oracle answer, including cross-thread determinism, and
  /// appends mismatches to \p summary (shrinking them first).
  Status RunVariant(std::uint64_t seed, const KindVariant& variant,
                    DifferentialSummary* summary);

  /// Direct MinMaxVao/SumAveVao strategy sweep for one seed.
  Status RunStrategySweep(std::uint64_t seed, DifferentialSummary* summary);

  /// Closed-loop calibration check for one seed: two passes of a
  /// lying-estimate workload share one CostHistory; the second pass's
  /// corrected cost MAE must be strictly below its raw MAE. This is the
  /// check that catches Mutation::kFlipCalibrationSign.
  Status RunCalibrationAudit(std::uint64_t seed,
                             DifferentialSummary* summary);

  /// Scheduled MultiQueryExecutor sweep for one seed: every policy,
  /// unbudgeted then at each budget fraction (see
  /// DifferentialOptions::scheduler_policies).
  Status RunSchedulerSweep(std::uint64_t seed, DifferentialSummary* summary);

  /// Approximate-tier sweep for one seed (see
  /// DifferentialOptions::approx_axis): structural soundness + replay
  /// determinism are hard failures, coverage is tallied for the end-of-run
  /// binomial gate.
  Status RunApproxSweep(std::uint64_t seed, DifferentialSummary* summary);

  /// Shrinks a failing combo by halving the row count while the mismatch
  /// persists, then records it.
  Status RecordFailure(std::uint64_t seed, const KindVariant& variant,
                       int threads, bool cache, std::string detail,
                       DifferentialSummary* summary);

  DifferentialOptions options_;
};

}  // namespace vaolib::testing

#endif  // VAOLIB_TESTING_DIFFERENTIAL_RUNNER_H_
