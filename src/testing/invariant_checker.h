// Copyright 2026 The vaolib Authors.
// InvariantChecker: the structural properties every checked run must hold,
// independent of the answer itself -- bound nesting during refinement,
// work accounting that adds up (WorkMeter totals == ExecutionReport totals),
// and determinism across thread counts.

#ifndef VAOLIB_TESTING_INVARIANT_CHECKER_H_
#define VAOLIB_TESTING_INVARIANT_CHECKER_H_

#include <cstdint>

#include "common/status.h"
#include "common/work_meter.h"
#include "engine/executor.h"
#include "vao/result_object.h"

namespace vaolib::testing {

/// \brief Stateless validators returning the first violated invariant as an
/// error Status (FailedPrecondition with a description), OK otherwise.
class InvariantChecker {
 public:
  /// Drives \p object up to \p max_iterations Iterate() calls (stopping at
  /// its stopping condition) and checks, per step: bounds valid, each new
  /// interval nested inside the previous one (refinement never "forgets"),
  /// and \p meter (when non-null) monotonically non-decreasing.
  static Status CheckRefinement(vao::ResultObject* object,
                                int max_iterations = 256,
                                const WorkMeter* meter = nullptr);

  /// Checks a tick's internal accounting: report.work.Total() equals
  /// work_units, the report's operator section matches the tick stats, the
  /// phase split sums to the iteration total, quarantine counts agree, and
  /// any reported bounds are well-formed.
  static Status CheckTickAccounting(const engine::TickResult& tick);

  /// Checks two ticks of the SAME query are identical: answers, tie flags,
  /// quarantines, and (when \p require_equal_work, e.g. for runs that only
  /// differ in thread count) work totals and iteration counts too.
  static Status CheckTicksEqual(const engine::TickResult& a,
                                const engine::TickResult& b,
                                bool require_equal_work);
};

}  // namespace vaolib::testing

#endif  // VAOLIB_TESTING_INVARIANT_CHECKER_H_
