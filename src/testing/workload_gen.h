// Copyright 2026 The vaolib Authors.
// Seeded workload synthesis for the differential harness: a relation of
// rows, a synthetic variable-accuracy function with *known* true values per
// row, and random queries of every kind over them. Reuses the src/workload/
// generators (hot-cold weights, selectivity-targeted constants) so the
// distributions match the paper's experiments.

#ifndef VAOLIB_TESTING_WORKLOAD_GEN_H_
#define VAOLIB_TESTING_WORKLOAD_GEN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/query.h"
#include "engine/relation.h"
#include "vao/synthetic_result_object.h"

namespace vaolib::testing {

/// \brief A VariableAccuracyFunction backed by a table of per-row
/// SyntheticResultObject configs: arity 1, argument = row id. Every Invoke()
/// for the same row replays the identical refinement trajectory, and the
/// hidden true value of each row is exposed for oracle checks.
class SyntheticTableFunction : public vao::VariableAccuracyFunction {
 public:
  explicit SyntheticTableFunction(
      std::vector<vao::SyntheticResultObject::Config> configs)
      : configs_(std::move(configs)) {}

  const std::string& name() const override { return name_; }
  int arity() const override { return 1; }

  /// \return InvalidArgument when args[0] is not an integral row id in range.
  Result<vao::ResultObjectPtr> Invoke(const std::vector<double>& args,
                                      WorkMeter* meter) const override;

  std::size_t rows() const { return configs_.size(); }
  double true_value(std::size_t row) const {
    return configs_[row].true_value;
  }
  double min_width(std::size_t row) const { return configs_[row].min_width; }

 private:
  std::string name_ = "synth";
  std::vector<vao::SyntheticResultObject::Config> configs_;
};

/// \brief Knobs for MakeWorkload. Defaults give rows whose values, widths,
/// shrink rates, and costs all differ, so greedy choice orders are
/// non-trivial.
struct WorkloadSpec {
  std::size_t rows = 16;
  double value_lo = -100.0;
  double value_hi = 100.0;
  double min_width = 0.01;
  double initial_half_width_lo = 2.0;
  double initial_half_width_hi = 50.0;
  double shrink_lo = 0.30;
  double shrink_hi = 0.75;
  /// Hot-cold SUM weights (Section 6.3 shape).
  double hot_fraction = 0.25;
  double hot_weight_share = 0.7;
};

/// \brief One generated workload: relation (columns `id`, `weight`), the
/// function over it, and the ground truth the oracle checks against.
struct Workload {
  std::unique_ptr<SyntheticTableFunction> function;
  engine::Relation relation{engine::Schema{}};
  std::vector<double> true_values;
  std::vector<double> weights;
  double min_width = 0.01;  ///< shared by every row's result object
};

/// \brief Deterministically generates a workload from \p seed.
Workload MakeWorkload(const WorkloadSpec& spec, std::uint64_t seed);

/// \brief Draws a random query of the given \p kind over \p workload from
/// \p rng: comparator, selectivity-targeted constant (biased toward the
/// minWidth equal-rule boundary once in a while), epsilon, k, and (for SUM)
/// the weight column. The query's function is left pointing at the
/// workload's own function; callers may re-point it at a caching or chaos
/// wrapper.
engine::Query MakeQuery(const Workload& workload, engine::QueryKind kind,
                        std::size_t k, Rng* rng);

}  // namespace vaolib::testing

#endif  // VAOLIB_TESTING_WORKLOAD_GEN_H_
