#include "testing/differential_runner.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "common/macros.h"
#include "common/stats.h"
#include "engine/cost_history.h"
#include "engine/executor.h"
#include "engine/report_capture.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "engine/multi_query.h"
#include "engine/sql_parser.h"
#include "operators/min_max.h"
#include "operators/sum_ave.h"
#include "testing/chaos_result_object.h"
#include "testing/invariant_checker.h"
#include "testing/oracle.h"
#include "vao/function_cache.h"
#include "vao/synthetic_result_object.h"

namespace vaolib::testing {

namespace {

/// Derives the query-draw stream for one (seed, variant) pair; independent
/// of the workload stream so adding variants never reshuffles workloads.
Rng QueryRng(std::uint64_t seed, const KindVariant& variant) {
  const auto kind = static_cast<std::uint64_t>(variant.kind);
  return Rng(seed * 0x9E3779B97F4A7C15ULL + kind * 1315423911ULL +
             variant.k * 2654435761ULL + 1);
}

engine::Query Mutate(engine::Query query, Mutation mutation) {
  switch (mutation) {
    case Mutation::kNone:
      break;
    case Mutation::kFlipComparator:
      switch (query.cmp) {
        case operators::Comparator::kGreaterThan:
          query.cmp = operators::Comparator::kLessEqual;
          break;
        case operators::Comparator::kLessEqual:
          query.cmp = operators::Comparator::kGreaterThan;
          break;
        case operators::Comparator::kLessThan:
          query.cmp = operators::Comparator::kGreaterEqual;
          break;
        case operators::Comparator::kGreaterEqual:
          query.cmp = operators::Comparator::kLessThan;
          break;
      }
      break;
    case Mutation::kSwapMinMax:
      if (query.kind == engine::QueryKind::kMax) {
        query.kind = engine::QueryKind::kMin;
      } else if (query.kind == engine::QueryKind::kMin) {
        query.kind = engine::QueryKind::kMax;
      }
      break;
    case Mutation::kFlipCalibrationSign:
      // Planted in the operators' correction path, not in the query text
      // (see OperatorOptions::mutate_flip_correction).
      break;
  }
  return query;
}

bool ContainsWithSlack(const Bounds& b, double v, double slack) {
  return v >= b.lo - slack && v <= b.hi + slack;
}

/// Index set of the k largest (sign=+1) or smallest (sign=-1) true values.
std::set<std::size_t> TrueTopSet(const std::vector<double>& values,
                                 std::size_t k, double sign) {
  std::vector<std::size_t> order(values.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return sign * values[a] > sign * values[b];
  });
  return {order.begin(), order.begin() + std::min(k, order.size())};
}

/// Differential + soundness check of one extreme answer against the ground
/// truth. \p sign is +1 for MAX, -1 for MIN.
std::optional<std::string> CheckExtremeAnswer(
    std::size_t winner, const Bounds& winner_bounds, bool tie, bool degraded,
    const std::vector<double>& true_values, double min_width, double sign,
    double epsilon, const OracleAnswer* oracle) {
  if (winner >= true_values.size()) return "winner index out of range";
  const double winner_value = true_values[winner];
  if (!winner_bounds.Contains(winner_value)) {
    std::ostringstream os;
    os << "winner bounds " << winner_bounds << " exclude true value "
       << winner_value;
    return os.str();
  }
  if (!degraded && winner_bounds.Width() > epsilon + 1e-12) {
    return "winner bounds wider than epsilon";
  }
  double best = sign * true_values[0];
  for (const double v : true_values) best = std::max(best, sign * v);
  if (!tie && sign * winner_value < best) {
    std::ostringstream os;
    os << "winner row " << winner << " (value " << winner_value
       << ") is not the extreme (best " << sign * best
       << ") and no tie was reported";
    return os.str();
  }
  // Even under a reported tie the winner must sit within the mutual
  // indistinguishability window: two converged objects overlap only when
  // their values are within the sum of their final widths.
  if (best - sign * winner_value > 2.0 * min_width + 1e-9) {
    return "tie-reported winner is further than minWidth from the extreme";
  }
  if (oracle != nullptr && !oracle->IsAdmissible(winner)) {
    return "winner is dominated under the oracle's converged bounds";
  }
  return std::nullopt;
}

std::optional<std::string> CheckSumAnswer(const Bounds& sum_bounds,
                                          bool degraded,
                                          const std::vector<double>& weights,
                                          const std::vector<double>& values,
                                          double min_width, double epsilon,
                                          const OracleAnswer* oracle) {
  double true_sum = 0.0;
  double scale = 1.0;
  double width_floor = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    true_sum += weights[i] * values[i];
    scale += std::abs(weights[i]) * (std::abs(values[i]) + 1.0);
    width_floor += std::abs(weights[i]) * min_width;
  }
  const double slack = 1e-9 * scale;
  if (!ContainsWithSlack(sum_bounds, true_sum, slack)) {
    std::ostringstream os;
    os << "sum bounds " << sum_bounds << " exclude true weighted sum "
       << true_sum;
    return os.str();
  }
  if (!degraded &&
      sum_bounds.Width() > std::max(epsilon, width_floor) + slack) {
    return "sum bounds wider than both epsilon and the minWidth floor";
  }
  if (oracle != nullptr) {
    // The VAO interval is a weighted sum of per-object bounds that are
    // nested outside the converged ones, so it must contain the oracle's.
    if (oracle->aggregate_bounds.lo < sum_bounds.lo - slack ||
        oracle->aggregate_bounds.hi > sum_bounds.hi + slack) {
      return "sum bounds do not contain the oracle's converged interval";
    }
  }
  return std::nullopt;
}

}  // namespace

DifferentialOptions DifferentialOptions::FromEnv() {
  return FromEnv(DifferentialOptions{});
}

DifferentialOptions DifferentialOptions::FromEnv(DifferentialOptions base) {
  if (const char* seeds = std::getenv("VAOLIB_DIFF_SEEDS")) {
    const unsigned long long parsed = std::strtoull(seeds, nullptr, 10);
    if (parsed > 0) base.seeds = static_cast<std::size_t>(parsed);
  }
  if (const char* artifact = std::getenv("VAOLIB_DIFF_ARTIFACT")) {
    base.artifact_path = artifact;
  }
  return base;
}

const char* DifferentialRunner::FamilyOf(engine::QueryKind kind) {
  switch (kind) {
    case engine::QueryKind::kSelect:
    case engine::QueryKind::kSelectRange:
      return "selection";
    case engine::QueryKind::kMax:
    case engine::QueryKind::kMin:
      return "minmax";
    case engine::QueryKind::kSum:
    case engine::QueryKind::kAve:
      return "sumave";
    case engine::QueryKind::kTopK:
      return "topk";
  }
  return "unknown";
}

namespace {

struct ComboContext {
  const Workload* workload = nullptr;
  const engine::Query* query = nullptr;   // unmutated (what the oracle saw)
  const OracleAnswer* oracle = nullptr;
};

/// Full differential + invariant check of one tick against the oracle.
std::optional<std::string> CheckTick(const engine::TickResult& tick,
                                     const ComboContext& ctx) {
  const Status accounting = InvariantChecker::CheckTickAccounting(tick);
  if (!accounting.ok()) return accounting.ToString();

  const Workload& w = *ctx.workload;
  const engine::Query& query = *ctx.query;
  const OracleAnswer& oracle = *ctx.oracle;
  switch (query.kind) {
    case engine::QueryKind::kSelect:
    case engine::QueryKind::kSelectRange: {
      std::vector<std::size_t> expected;
      for (std::size_t row = 0; row < oracle.passes.size(); ++row) {
        if (oracle.passes[row]) expected.push_back(row);
      }
      if (tick.passing_rows != expected) {
        std::ostringstream os;
        os << "passing rows diverge from oracle (got "
           << tick.passing_rows.size() << " rows, oracle says "
           << expected.size() << ")";
        for (std::size_t row = 0; row < oracle.passes.size(); ++row) {
          const bool got =
              std::binary_search(tick.passing_rows.begin(),
                                 tick.passing_rows.end(), row);
          if (got != oracle.passes[row]) {
            os << "; first divergence at row " << row << " (vao="
               << (got ? "pass" : "fail")
               << " oracle=" << (oracle.passes[row] ? "pass" : "fail")
               << " true=" << w.true_values[row] << ")";
            break;
          }
        }
        return os.str();
      }
      break;
    }
    case engine::QueryKind::kMax:
    case engine::QueryKind::kMin: {
      if (!tick.winner_row.has_value()) return "no winner reported";
      return CheckExtremeAnswer(
          *tick.winner_row, tick.aggregate_bounds, tick.tie, tick.degraded,
          w.true_values, w.min_width,
          query.kind == engine::QueryKind::kMax ? 1.0 : -1.0, query.epsilon,
          &oracle);
    }
    case engine::QueryKind::kTopK: {
      if (tick.top_rows.size() != query.k) {
        return "top-k returned " + std::to_string(tick.top_rows.size()) +
               " rows, expected " + std::to_string(query.k);
      }
      const std::set<std::size_t> winners(tick.top_rows.begin(),
                                          tick.top_rows.end());
      if (winners.size() != query.k) return "top-k returned duplicate rows";
      for (const std::size_t row : winners) {
        if (!oracle.IsAdmissible(row)) {
          return "top-k selected row " + std::to_string(row) +
                 ", dominated under the oracle's converged bounds";
        }
      }
      for (const std::size_t row : oracle.required) {
        if (winners.count(row) == 0) {
          return "top-k missed row " + std::to_string(row) +
                 ", required under the oracle's converged bounds";
        }
      }
      if (!tick.tie) {
        const std::set<std::size_t> truth =
            TrueTopSet(w.true_values, query.k, 1.0);
        if (winners != truth && !tick.degraded) {
          return "top-k set diverges from the true top-k with no tie "
                 "reported";
        }
      }
      for (std::size_t i = 0; i < tick.top_rows.size(); ++i) {
        if (!tick.top_bounds[i].Contains(w.true_values[tick.top_rows[i]])) {
          return "top-k bounds exclude the true value of row " +
                 std::to_string(tick.top_rows[i]);
        }
        if (!tick.degraded &&
            tick.top_bounds[i].Width() > query.epsilon + 1e-12) {
          return "top-k member bounds wider than epsilon";
        }
      }
      break;
    }
    case engine::QueryKind::kSum:
    case engine::QueryKind::kAve: {
      auto weights = OracleExecutor::ResolveWeights(query, w.relation);
      if (!weights.ok()) return weights.status().ToString();
      return CheckSumAnswer(tick.aggregate_bounds, tick.degraded,
                            weights.value(), w.true_values, w.min_width,
                            query.epsilon, &oracle);
    }
  }
  return std::nullopt;
}

/// Runs one cold tick of \p query (already mutated if requested) at the
/// given thread count, optionally behind a fresh CachingFunction.
Result<engine::TickResult> ExecuteOnce(const Workload& workload,
                                       engine::Query query, int threads,
                                       bool cache,
                                       engine::TickResult* warm_tick) {
  std::unique_ptr<vao::CachingFunction> caching;
  if (cache) {
    caching = std::make_unique<vao::CachingFunction>(query.function);
    query.function = caching.get();
  }
  VAOLIB_ASSIGN_OR_RETURN(
      auto executor,
      engine::CqExecutor::Create(&workload.relation, engine::Schema{}, query,
                                 engine::ExecutionMode::kVao, threads));
  VAOLIB_ASSIGN_OR_RETURN(engine::TickResult tick, executor->ProcessTick({}));
  if (warm_tick != nullptr) {
    // Second tick on the same executor: with a cache it re-serves the bounds
    // already paid for; without one it must simply reproduce the answer.
    VAOLIB_ASSIGN_OR_RETURN(*warm_tick, executor->ProcessTick({}));
  }
  return tick;
}

}  // namespace

Result<std::optional<std::string>> DifferentialRunner::RunOne(
    std::uint64_t seed, const KindVariant& variant, std::size_t rows,
    int threads, bool cache) {
  WorkloadSpec spec;
  spec.rows = rows;
  const Workload workload = MakeWorkload(spec, seed);
  Rng rng = QueryRng(seed, variant);
  const engine::Query query =
      MakeQuery(workload, variant.kind, variant.k, &rng);
  const OracleExecutor oracle_executor(workload.function.get());
  VAOLIB_ASSIGN_OR_RETURN(const OracleAnswer oracle,
                          oracle_executor.Answer(query, workload.relation));
  VAOLIB_ASSIGN_OR_RETURN(
      const engine::TickResult tick,
      ExecuteOnce(workload, Mutate(query, options_.mutation), threads, cache,
                  nullptr));
  const ComboContext ctx{&workload, &query, &oracle};
  return CheckTick(tick, ctx);
}

Status DifferentialRunner::RecordFailure(std::uint64_t seed,
                                         const KindVariant& variant,
                                         int threads, bool cache,
                                         std::string detail,
                                         DifferentialSummary* summary) {
  DifferentialFailure failure;
  failure.seed = seed;
  failure.variant = variant;
  failure.rows = options_.rows;
  failure.threads = threads;
  failure.cache = cache;
  failure.detail = std::move(detail);

  if (options_.shrink) {
    // Halve the workload while the mismatch persists; the smallest failing
    // relation is the one worth staring at.
    std::size_t rows = failure.rows;
    while (rows > 2) {
      const std::size_t smaller = rows / 2;
      auto rerun = RunOne(seed, variant, smaller, threads, cache);
      if (!rerun.ok() || !rerun.value().has_value()) break;
      rows = smaller;
      failure.detail = *rerun.value();
    }
    failure.rows = rows;
  }

  // Rebuild the shrunk query purely for the repro line.
  WorkloadSpec spec;
  spec.rows = failure.rows;
  const Workload workload = MakeWorkload(spec, seed);
  Rng rng = QueryRng(seed, variant);
  const engine::Query query =
      MakeQuery(workload, variant.kind, variant.k, &rng);
  std::ostringstream repro;
  repro << "repro: seed=" << seed << " rows=" << failure.rows
        << " threads=" << threads << " cache=" << (cache ? 1 : 0) << " k="
        << variant.k << " query=\"" << engine::FormatQuery(query, "synth")
        << "\"";
  failure.repro = repro.str();

  if (!options_.artifact_path.empty()) {
    std::ofstream artifact(options_.artifact_path, std::ios::app);
    artifact << failure.repro << " detail=\"" << failure.detail << "\"\n";
  }
  if (obs::FlightRecorder::Global().Armed()) {
    // Clear the rings and replay only the failing combo so the dump holds
    // exactly that combo's decision sequence -- a deterministic artifact a
    // reader (or trace_test) can diff against a fresh re-run.
    obs::ClearTrace();
    const auto replay = RunOne(seed, variant, failure.rows, threads, cache);
    (void)replay;
    obs::FlightRecorder::Global().Dump("seed-" + std::to_string(seed) + "-" +
                                       engine::QueryKindName(variant.kind));
  }
  summary->failures.push_back(std::move(failure));
  return Status::OK();
}

Status DifferentialRunner::RunVariant(std::uint64_t seed,
                                      const KindVariant& variant,
                                      DifferentialSummary* summary) {
  WorkloadSpec spec;
  spec.rows = options_.rows;
  const Workload workload = MakeWorkload(spec, seed);
  Rng rng = QueryRng(seed, variant);
  const engine::Query query =
      MakeQuery(workload, variant.kind, variant.k, &rng);
  const engine::Query mutated = Mutate(query, options_.mutation);
  const OracleExecutor oracle_executor(workload.function.get());
  VAOLIB_ASSIGN_OR_RETURN(const OracleAnswer oracle,
                          oracle_executor.Answer(query, workload.relation));
  const ComboContext ctx{&workload, &query, &oracle};
  const char* family = FamilyOf(variant.kind);
  const bool is_selection = variant.kind == engine::QueryKind::kSelect ||
                            variant.kind == engine::QueryKind::kSelectRange;

  for (const bool cache : options_.cache_modes) {
    std::vector<std::pair<int, engine::TickResult>> ticks;
    for (const int threads : options_.thread_counts) {
      engine::TickResult warm;
      const bool want_warm = cache && threads == options_.thread_counts.back();
      auto executed = ExecuteOnce(workload, mutated, threads, cache,
                                  want_warm ? &warm : nullptr);
      VAOLIB_RETURN_IF_ERROR(executed.status());
      const engine::TickResult tick = std::move(executed).value();
      ++summary->combos;
      ++summary->combos_by_family[family];
      if (auto detail = CheckTick(tick, ctx)) {
        VAOLIB_RETURN_IF_ERROR(RecordFailure(seed, variant, threads, cache,
                                             *detail, summary));
        continue;
      }
      ticks.emplace_back(threads, tick);
      if (want_warm) {
        ++summary->combos;
        ++summary->combos_by_family[family];
        if (auto detail = CheckTick(warm, ctx)) {
          VAOLIB_RETURN_IF_ERROR(RecordFailure(
              seed, variant, threads, cache,
              "warm-cache tick: " + *detail, summary));
        }
      }
    }
    // Determinism: selections must match at every thread count (the batch
    // path's contract); aggregates must match across parallel thread counts
    // (the coarse phase depends on coarse_width, never on worker count).
    for (std::size_t i = 1; i < ticks.size(); ++i) {
      const bool comparable =
          is_selection || (ticks[i - 1].first > 1 && ticks[i].first > 1);
      if (!comparable) continue;
      const Status equal = InvariantChecker::CheckTicksEqual(
          ticks[i - 1].second, ticks[i].second, /*require_equal_work=*/true);
      if (!equal.ok()) {
        VAOLIB_RETURN_IF_ERROR(RecordFailure(
            seed, variant, ticks[i].first, cache,
            "thread count " + std::to_string(ticks[i - 1].first) + " vs " +
                std::to_string(ticks[i].first) + ": " + equal.ToString(),
            summary));
      }
    }
  }
  return Status::OK();
}

Status DifferentialRunner::RunStrategySweep(std::uint64_t seed,
                                            DifferentialSummary* summary) {
  WorkloadSpec spec;
  spec.rows = options_.rows;
  const Workload workload = MakeWorkload(spec, seed);
  const double epsilon = workload.min_width * 20.0;
  WorkMeter meter;

  auto make_objects = [&]() -> Result<std::vector<vao::ResultObjectPtr>> {
    std::vector<vao::ResultObjectPtr> owned;
    owned.reserve(workload.relation.size());
    for (std::size_t row = 0; row < workload.relation.size(); ++row) {
      VAOLIB_ASSIGN_OR_RETURN(
          vao::ResultObjectPtr object,
          workload.function->Invoke({static_cast<double>(row)}, &meter));
      owned.push_back(std::move(object));
    }
    return owned;
  };
  auto raw = [](const std::vector<vao::ResultObjectPtr>& owned) {
    std::vector<vao::ResultObject*> objects;
    objects.reserve(owned.size());
    for (const auto& object : owned) objects.push_back(object.get());
    return objects;
  };

  // The sweep axes: every configured strategy at the paper's one object
  // per cycle, plus batch-greedy at every configured batch width.
  struct StrategyVariant {
    operators::StrategyKind strategy;
    int batch_k;
  };
  std::vector<StrategyVariant> strategy_variants;
  for (const operators::StrategyKind strategy : options_.strategies) {
    strategy_variants.push_back({strategy, 1});
  }
  for (const int batch_k : options_.batch_ks) {
    strategy_variants.push_back(
        {operators::StrategyKind::kBatchGreedy, batch_k});
  }

  for (const operators::ExtremeKind kind :
       {operators::ExtremeKind::kMax, operators::ExtremeKind::kMin}) {
    for (const StrategyVariant& strategy_variant : strategy_variants) {
      VAOLIB_ASSIGN_OR_RETURN(const auto owned, make_objects());
      Rng strategy_rng(seed ^ 0xA5A5A5A5ULL);
      operators::MinMaxOptions options;
      const bool swap = options_.mutation == Mutation::kSwapMinMax;
      options.kind = swap ? (kind == operators::ExtremeKind::kMax
                                 ? operators::ExtremeKind::kMin
                                 : operators::ExtremeKind::kMax)
                          : kind;
      options.epsilon = epsilon;
      options.strategy = strategy_variant.strategy;
      options.batch_k = strategy_variant.batch_k;
      options.rng = &strategy_rng;
      options.mutate_flip_correction =
          options_.mutation == Mutation::kFlipCalibrationSign;
      const operators::MinMaxVao vao(options);
      VAOLIB_ASSIGN_OR_RETURN(const operators::MinMaxOutcome outcome,
                              vao.Evaluate(raw(owned)));
      ++summary->combos;
      ++summary->combos_by_family["minmax"];
      if (auto detail = CheckExtremeAnswer(
              outcome.winner_index, outcome.winner_bounds, outcome.tie,
              outcome.precision_degraded, workload.true_values,
              workload.min_width,
              kind == operators::ExtremeKind::kMax ? 1.0 : -1.0, epsilon,
              nullptr)) {
        const KindVariant variant{kind == operators::ExtremeKind::kMax
                                      ? engine::QueryKind::kMax
                                      : engine::QueryKind::kMin,
                                  1};
        VAOLIB_RETURN_IF_ERROR(RecordFailure(
            seed, variant, 1, false,
            "strategy sweep (" +
                std::string(operators::StrategyKindName(
                    strategy_variant.strategy)) +
                ", batch_k=" + std::to_string(strategy_variant.batch_k) +
                "): " + *detail,
            summary));
      }
    }
  }

  struct SumVariant {
    operators::StrategyKind strategy;
    bool heap;
    int batch_k;
  };
  std::vector<SumVariant> sum_variants;
  for (const operators::StrategyKind strategy : options_.strategies) {
    sum_variants.push_back({strategy, false, 1});
  }
  sum_variants.push_back({operators::StrategyKind::kGreedy, true, 1});
  for (const int batch_k : options_.batch_ks) {
    sum_variants.push_back(
        {operators::StrategyKind::kBatchGreedy, false, batch_k});
    sum_variants.push_back(
        {operators::StrategyKind::kBatchGreedy, true, batch_k});
  }
  for (const SumVariant& sum_variant : sum_variants) {
    VAOLIB_ASSIGN_OR_RETURN(const auto owned, make_objects());
    Rng strategy_rng(seed ^ 0x5A5A5A5AULL);
    operators::SumAveOptions options;
    options.epsilon = epsilon;
    options.strategy = sum_variant.strategy;
    options.use_heap_index = sum_variant.heap;
    options.batch_k = sum_variant.batch_k;
    options.rng = &strategy_rng;
    options.mutate_flip_correction =
        options_.mutation == Mutation::kFlipCalibrationSign;
    const operators::SumAveVao vao(options);
    VAOLIB_ASSIGN_OR_RETURN(const operators::SumOutcome outcome,
                            vao.Evaluate(raw(owned), workload.weights));
    ++summary->combos;
    ++summary->combos_by_family["sumave"];
    if (auto detail = CheckSumAnswer(outcome.sum_bounds,
                                     outcome.stats.stalled_objects > 0,
                                     workload.weights, workload.true_values,
                                     workload.min_width, epsilon, nullptr)) {
      VAOLIB_RETURN_IF_ERROR(RecordFailure(
          seed, {engine::QueryKind::kSum, 1}, 1, false,
          "strategy sweep (" +
              std::string(operators::StrategyKindName(sum_variant.strategy)) +
              ", heap=" + std::to_string(sum_variant.heap) +
              ", batch_k=" + std::to_string(sum_variant.batch_k) +
              "): " + *detail,
          summary));
    }
  }
  return Status::OK();
}

Status DifferentialRunner::RunCalibrationAudit(std::uint64_t seed,
                                               DifferentialSummary* summary) {
  // Closed-loop check of the estimator corrections: a workload whose
  // objects lie about estCPU by large per-row factors runs twice over one
  // shared CostHistory. Pass 1 learns the per-row actual/estimated ratios;
  // pass 2 must therefore predict costs strictly better corrected than
  // raw. Under Mutation::kFlipCalibrationSign the learned ratios apply
  // inverted, corrected MAE lands ABOVE raw MAE, and this audit fails --
  // which is exactly what the mutation test asserts.
  constexpr std::size_t kRows = 16;
  Rng rng(seed ^ 0xCA11B8A7EULL);
  engine::CostHistory history;
  WorkMeter meter;

  std::vector<double> cost_factors(kRows);
  for (std::size_t i = 0; i < kRows; ++i) {
    // Lying factors spread in [2, 8] (and their reciprocals on odd rows)
    // so the correction has to learn per-row scales, not one global one.
    const double magnitude = rng.Uniform(2.0, 8.0);
    cost_factors[i] = (i % 2 == 0) ? magnitude : 1.0 / magnitude;
  }

  std::vector<vao::ResultObjectPtr> owned;
  auto make_objects = [&]() {
    owned.clear();
    owned.reserve(kRows);
    std::vector<vao::ResultObject*> objects;
    objects.reserve(kRows);
    for (std::size_t i = 0; i < kRows; ++i) {
      vao::SyntheticResultObject::Config config;
      config.true_value = static_cast<double>(i);
      config.initial_half_width = 8.0;
      config.shrink = 0.6;
      config.min_width = 0.01;
      config.cost_per_iteration = 16;
      config.meter = &meter;
      FaultPlan plan;
      plan.kind = FaultKind::kLyingEstimates;
      plan.cost_factor = cost_factors[i];
      owned.push_back(std::make_unique<ChaosResultObject>(
          std::make_unique<vao::SyntheticResultObject>(config), plan));
      objects.push_back(owned.back().get());
    }
    return objects;
  };

  auto run_pass = [&]() -> Result<operators::SumOutcome> {
    const std::vector<vao::ResultObject*> objects = make_objects();
    history.BeginTick();
    operators::SumAveOptions options;
    options.epsilon = 1.0;
    options.strategy = operators::StrategyKind::kCalibratedGreedy;
    options.feedback = &history;
    // Actual per-iterate costs are measured as deltas on the meter the
    // objects charge, so the operator must share it.
    options.meter = &meter;
    options.mutate_flip_correction =
        options_.mutation == Mutation::kFlipCalibrationSign;
    const operators::SumAveVao vao(options);
    return vao.Evaluate(objects, std::vector<double>(kRows, 1.0));
  };

  VAOLIB_ASSIGN_OR_RETURN(const operators::SumOutcome warmup, run_pass());
  VAOLIB_ASSIGN_OR_RETURN(const operators::SumOutcome corrected, run_pass());
  ++summary->combos;
  ++summary->combos_by_family["calibration"];

  const operators::OperatorStats& stats = corrected.stats;
  std::optional<std::string> detail;
  if (warmup.stats.cost_err_samples == 0 || stats.cost_err_samples == 0) {
    detail = "no measured-cost samples were recorded";
  } else if (stats.corrected_decisions == 0) {
    detail = "second pass never applied a learned correction";
  } else if (stats.corrected_cost_abs_err >= stats.raw_cost_abs_err) {
    std::ostringstream os;
    os << "corrected cost MAE "
       << stats.corrected_cost_abs_err /
              static_cast<double>(stats.cost_err_samples)
       << " is not below raw MAE "
       << stats.raw_cost_abs_err /
              static_cast<double>(stats.cost_err_samples)
       << " over " << stats.cost_err_samples << " samples";
    detail = os.str();
  }
  if (detail.has_value()) {
    VAOLIB_RETURN_IF_ERROR(RecordFailure(
        seed, {engine::QueryKind::kSum, 1}, 1, false,
        "calibration audit: " + *detail, summary));
  }
  return Status::OK();
}

namespace {

/// Soundness-only checks for a budget-truncated scheduled answer: the tick
/// need not match the oracle, but everything it claims must be provable.
std::optional<std::string> CheckScheduledPartial(
    const engine::TickResult& tick, const ComboContext& ctx) {
  const Workload& w = *ctx.workload;
  const engine::Query& query = *ctx.query;
  switch (query.kind) {
    case engine::QueryKind::kSelect:
    case engine::QueryKind::kSelectRange:
      // Undecided rows resolve by the sound midpoint rule; the set itself
      // carries no oracle-comparable claim until converged.
      return std::nullopt;
    case engine::QueryKind::kMax:
    case engine::QueryKind::kMin: {
      const double sign =
          query.kind == engine::QueryKind::kMax ? 1.0 : -1.0;
      double best = sign * w.true_values[0];
      for (const double v : w.true_values) best = std::max(best, sign * v);
      best *= sign;
      // Pre-finalize snapshots report a candidate envelope that must
      // contain the true extreme; finalize-phase snapshots report the
      // settled winner's own bounds, which must contain ITS true value.
      bool sound = ContainsWithSlack(tick.aggregate_bounds, best, 1e-9);
      if (!sound && tick.winner_row.has_value() &&
          *tick.winner_row < w.true_values.size()) {
        sound = ContainsWithSlack(tick.aggregate_bounds,
                                  w.true_values[*tick.winner_row], 1e-9);
      }
      if (!sound) {
        std::ostringstream os;
        os << "partial extreme bounds " << tick.aggregate_bounds
           << " exclude both the true extreme " << best
           << " and the reported winner's true value";
        return os.str();
      }
      return std::nullopt;
    }
    case engine::QueryKind::kSum:
    case engine::QueryKind::kAve: {
      auto weights = OracleExecutor::ResolveWeights(query, w.relation);
      if (!weights.ok()) return weights.status().ToString();
      return CheckSumAnswer(tick.aggregate_bounds, /*degraded=*/true,
                            weights.value(), w.true_values, w.min_width,
                            query.epsilon, ctx.oracle);
    }
    case engine::QueryKind::kTopK: {
      for (std::size_t i = 0; i < tick.top_rows.size(); ++i) {
        const std::size_t row = tick.top_rows[i];
        if (row >= w.true_values.size()) {
          return "partial top-k row index out of range";
        }
        if (!ContainsWithSlack(tick.top_bounds[i], w.true_values[row],
                               1e-9)) {
          return "partial top-k bounds exclude the true value of row " +
                 std::to_string(row);
        }
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

}  // namespace

Status DifferentialRunner::RunSchedulerSweep(std::uint64_t seed,
                                             DifferentialSummary* summary) {
  WorkloadSpec spec;
  spec.rows = options_.rows;
  const Workload workload = MakeWorkload(spec, seed);
  const OracleExecutor oracle_executor(workload.function.get());

  std::vector<engine::Query> queries;
  std::vector<OracleAnswer> oracles;
  queries.reserve(options_.kinds.size());
  oracles.reserve(options_.kinds.size());
  for (const KindVariant& variant : options_.kinds) {
    Rng rng = QueryRng(seed, variant);
    engine::Query query = MakeQuery(workload, variant.kind, variant.k, &rng);
    VAOLIB_ASSIGN_OR_RETURN(OracleAnswer oracle,
                            oracle_executor.Answer(query, workload.relation));
    queries.push_back(std::move(query));
    oracles.push_back(std::move(oracle));
  }

  struct ScheduledRun {
    std::vector<engine::TickResult> ticks;
    obs::ExecutionReport tick_report;
  };
  auto run_once = [&](engine::SchedulerPolicy policy,
                      std::uint64_t budget) -> Result<ScheduledRun> {
    engine::MultiQueryOptions mq;
    mq.scheduled = true;
    mq.scheduler.policy = policy;
    mq.scheduler.budget = budget;
    VAOLIB_ASSIGN_OR_RETURN(
        auto executor,
        engine::MultiQueryExecutor::Create(&workload.relation,
                                           engine::Schema{}, queries, mq));
    VAOLIB_ASSIGN_OR_RETURN(auto ticks, executor->ProcessTick({}));
    return ScheduledRun{std::move(ticks), executor->last_tick_report()};
  };

  for (const engine::SchedulerPolicy policy : options_.scheduler_policies) {
    VAOLIB_ASSIGN_OR_RETURN(const ScheduledRun unbudgeted,
                            run_once(policy, 0));
    std::vector<std::uint64_t> budgets = {0};
    for (const double fraction : options_.budget_fractions) {
      budgets.push_back(std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(
                 fraction *
                 static_cast<double>(
                     unbudgeted.tick_report.scheduler_spent))));
    }

    for (const std::uint64_t budget : budgets) {
      ScheduledRun run;
      if (budget == 0) {
        run = unbudgeted;
      } else {
        VAOLIB_ASSIGN_OR_RETURN(run, run_once(policy, budget));
      }
      const std::string label =
          std::string("scheduler policy=") +
          engine::SchedulerPolicyName(policy) +
          " budget=" + std::to_string(budget) + ": ";

      // Budget invariant: per-query spends sum exactly to the scheduler
      // run's total (surfaced through the tick-wide report).
      std::uint64_t spent_sum = 0;
      for (const engine::TickResult& tick : run.ticks) {
        spent_sum += tick.work_units;
      }
      if (spent_sum != run.tick_report.scheduler_spent) {
        VAOLIB_RETURN_IF_ERROR(RecordFailure(
            seed, options_.kinds.front(), 1, false,
            label + "per-query spends sum to " + std::to_string(spent_sum) +
                " but the scheduler reports " +
                std::to_string(run.tick_report.scheduler_spent),
            summary));
      }

      for (std::size_t q = 0; q < queries.size(); ++q) {
        const engine::TickResult& tick = run.ticks[q];
        const ComboContext ctx{&workload, &queries[q], &oracles[q]};
        ++summary->combos;
        ++summary->combos_by_family[FamilyOf(queries[q].kind)];
        std::optional<std::string> detail;
        if (budget == 0 && !tick.converged) {
          detail = "unbudgeted scheduled run did not converge";
        } else if (tick.converged) {
          detail = CheckTick(tick, ctx);
        } else {
          detail = CheckScheduledPartial(tick, ctx);
        }
        if (detail.has_value()) {
          VAOLIB_RETURN_IF_ERROR(RecordFailure(seed, options_.kinds[q], 1,
                                               false, label + *detail,
                                               summary));
        }
      }
      if (summary->failures.size() >= options_.max_failures) {
        return Status::OK();
      }
    }
  }
  return Status::OK();
}

Status DifferentialRunner::RunApproxSweep(std::uint64_t seed,
                                          DifferentialSummary* summary) {
  // Positive-valued workload: a mean-zero population makes any relative
  // error target unreachable, which would force every run to the full
  // sample and make the coverage tally vacuous.
  WorkloadSpec spec;
  spec.rows = options_.approx_rows;
  spec.value_lo = 50.0;
  spec.value_hi = 150.0;
  const Workload workload = MakeWorkload(spec, seed);

  const engine::QueryKind kinds[] = {engine::QueryKind::kSum,
                                     engine::QueryKind::kAve};
  for (const engine::QueryKind kind : kinds) {
    Rng rng = QueryRng(seed, {kind, 1});
    engine::Query query = MakeQuery(workload, kind, 1, &rng);
    query.epsilon = 1.0;  // keep the minWidth floor reachable
    engine::ApproxSpec approx;
    approx.confidence = options_.approx_confidence;
    approx.target_rel_error = options_.approx_target_rel_error;
    approx.seed = seed;
    approx.initial_samples = options_.approx_initial_samples;
    query.approx = approx;

    // Ground truth under the query's effective weights.
    const std::size_t n = workload.true_values.size();
    NeumaierSum truth;
    double scale = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double w = query.weight_column.has_value() ? workload.weights[i]
                       : kind == engine::QueryKind::kAve
                           ? 1.0 / static_cast<double>(n)
                           : 1.0;
      truth.Add(w * workload.true_values[i]);
      scale += std::abs(w) * (std::abs(workload.true_values[i]) + 1.0);
    }

    const auto record = [&](std::string detail) {
      DifferentialFailure failure;
      failure.seed = seed;
      failure.variant = {kind, 1};
      failure.rows = options_.approx_rows;
      failure.detail = std::move(detail);
      failure.repro = "repro: approx seed=" + std::to_string(seed) +
                      " rows=" + std::to_string(options_.approx_rows) +
                      " query=\"" + engine::FormatQuery(query, "synth") + "\"";
      if (!options_.artifact_path.empty()) {
        std::ofstream artifact(options_.artifact_path, std::ios::app);
        artifact << failure.repro << " detail=\"" << failure.detail << "\"\n";
      }
      summary->failures.push_back(std::move(failure));
    };

    VAOLIB_ASSIGN_OR_RETURN(
        const engine::TickResult tick,
        ExecuteOnce(workload, query, /*threads=*/1, /*cache=*/false,
                    nullptr));
    const vao::Answer& answer = tick.aggregate_bounds;
    std::ostringstream why;
    if (answer.mode != vao::AnswerMode::kApproximate) {
      record("approx query answered in exact mode");
      return Status::OK();
    }
    if (!answer.bounds().IsValid() || !std::isfinite(answer.lo) ||
        !std::isfinite(answer.hi)) {
      why << "approx interval invalid: " << answer.bounds();
      record(why.str());
      return Status::OK();
    }
    if (answer.sample_size < 2 || answer.sample_size > n ||
        answer.population_size != n) {
      why << "approx sample accounting broken: n=" << answer.sample_size
          << "/" << answer.population_size;
      record(why.str());
      return Status::OK();
    }
    if (answer.deterministic_width < 0.0 || answer.sampling_width < 0.0) {
      record("approx width decomposition negative");
      return Status::OK();
    }

    // Seeded sampling: an identical cold re-run must reproduce the answer
    // bit-for-bit.
    VAOLIB_ASSIGN_OR_RETURN(
        const engine::TickResult replay,
        ExecuteOnce(workload, query, /*threads=*/1, /*cache=*/false,
                    nullptr));
    const vao::Answer& again = replay.aggregate_bounds;
    if (again.lo != answer.lo || again.hi != answer.hi ||
        again.sample_size != answer.sample_size) {
      why << "approx replay diverged: " << answer << " vs " << again;
      record(why.str());
      return Status::OK();
    }

    ++summary->approx_checks;
    if (ContainsWithSlack(answer.bounds(), truth.Sum(), 1e-9 * scale)) {
      ++summary->approx_covered;
    }
  }
  return Status::OK();
}

Result<DifferentialSummary> DifferentialRunner::RunAll() {
  DifferentialSummary summary;
  for (std::size_t i = 0; i < options_.seeds; ++i) {
    const std::uint64_t seed = options_.base_seed + i;
    for (const KindVariant& variant : options_.kinds) {
      VAOLIB_RETURN_IF_ERROR(RunVariant(seed, variant, &summary));
      if (summary.failures.size() >= options_.max_failures) return summary;
    }
    if (!options_.strategies.empty()) {
      VAOLIB_RETURN_IF_ERROR(RunStrategySweep(seed, &summary));
      if (summary.failures.size() >= options_.max_failures) return summary;
      VAOLIB_RETURN_IF_ERROR(RunCalibrationAudit(seed, &summary));
      if (summary.failures.size() >= options_.max_failures) return summary;
    }
    if (!options_.scheduler_policies.empty()) {
      VAOLIB_RETURN_IF_ERROR(RunSchedulerSweep(seed, &summary));
      if (summary.failures.size() >= options_.max_failures) return summary;
    }
    if (options_.approx_axis) {
      VAOLIB_RETURN_IF_ERROR(RunApproxSweep(seed, &summary));
      if (summary.failures.size() >= options_.max_failures) return summary;
    }
  }
  if (options_.approx_axis && summary.approx_checks > 0) {
    // Binomial coverage gate: the interval claims confidence c, so over m
    // independent checks the covered count should not fall more than three
    // standard errors below c*m.
    const double conf = options_.approx_confidence;
    const double checks = static_cast<double>(summary.approx_checks);
    const double rate =
        static_cast<double>(summary.approx_covered) / checks;
    const double threshold =
        conf - 3.0 * std::sqrt(conf * (1.0 - conf) / checks);
    if (rate < threshold) {
      DifferentialFailure failure;
      failure.seed = options_.base_seed;
      failure.variant = {engine::QueryKind::kSum, 1};
      failure.rows = options_.approx_rows;
      std::ostringstream os;
      os << "approx coverage " << summary.approx_covered << "/"
         << summary.approx_checks << " = " << rate
         << " below binomial threshold " << threshold << " for confidence "
         << conf;
      failure.detail = os.str();
      failure.repro = "repro: approx coverage sweep, seeds=" +
                      std::to_string(options_.seeds);
      summary.failures.push_back(std::move(failure));
    }
  }
  return summary;
}

}  // namespace vaolib::testing
