// Copyright 2026 The vaolib Authors.
// OracleExecutor: the reference answer for differential testing.
//
// The oracle answers a query the way a traditional system would -- converge
// every row's result object all the way to minWidth (the black-box path) --
// and then decides from the fully converged bounds, applying the SAME
// minWidth equality rules the VAOs use:
//
//   * selection      converged bounds exclude the constant -> decide by
//                    side; still straddling -> "equal" (strict comparisons
//                    false, non-strict true);
//   * BETWEEN        bounds contain neither endpoint -> inside/outside by
//                    midpoint; straddling an endpoint -> inclusive passes,
//                    exclusive fails;
//   * MIN/MAX/TOP-K  rows are *admissible* unless strictly dominated by
//                    enough rivals' converged bounds, and *required* when
//                    they strictly dominate enough rivals -- the answer set
//                    a sound adaptive operator may/must return;
//   * SUM/AVE        the weighted interval over converged bounds, which any
//                    sound VAO interval must contain.
//
// Because honest result objects refine by nesting (each Iterate() keeps the
// new bounds inside the old), a VAO that decides early from wide bounds and
// the oracle deciding late from converged bounds reach the same conclusion;
// any divergence is a soundness bug in an operator or solver.

#ifndef VAOLIB_TESTING_ORACLE_H_
#define VAOLIB_TESTING_ORACLE_H_

#include <cstdint>
#include <vector>

#include "common/bounds.h"
#include "common/result.h"
#include "engine/query.h"
#include "engine/relation.h"
#include "vao/result_object.h"

namespace vaolib::testing {

/// \brief The oracle's reference answer for one query over one relation.
struct OracleAnswer {
  engine::QueryKind kind = engine::QueryKind::kSelect;

  /// Per-row bounds converged to minWidth (the black-box evaluation).
  std::vector<Bounds> converged;

  /// \name kSelect / kSelectRange
  /// @{
  std::vector<bool> passes;
  std::vector<bool> resolved_as_equal;  ///< decided by the minWidth rule
  /// @}

  /// \name kMax / kMin / kTopK
  /// @{
  /// Best row by converged midpoint (ties broken by lowest index).
  std::size_t best_row = 0;
  /// Rows a sound answer MAY select (not strictly dominated by k rivals).
  std::vector<std::size_t> admissible;
  /// Rows every sound answer MUST select (strictly dominate n-k rivals).
  std::vector<std::size_t> required;
  /// @}

  /// kMax/kMin: best row's converged bounds. kSum/kAve: the weighted
  /// interval [sum w*L, sum w*H] over converged bounds.
  Bounds aggregate_bounds;

  bool IsAdmissible(std::size_t row) const;
  bool IsRequired(std::size_t row) const;
};

/// \brief Answers queries through full convergence for differential checks.
class OracleExecutor {
 public:
  /// \p function is the PRISTINE function (no chaos or caching wrappers);
  /// borrowed, must outlive the oracle.
  explicit OracleExecutor(const vao::VariableAccuracyFunction* function)
      : function_(function) {}

  /// Answers \p query over \p relation. Only relation-field and constant
  /// argument bindings are supported (the oracle has no stream).
  ///
  /// \p budget caps the Iterate() calls spent converging any single row;
  /// a stalled or budget-blown row surfaces as ResourceExhausted rather
  /// than a hang (the oracle is as guarded as the paths it checks).
  Result<OracleAnswer> Answer(const engine::Query& query,
                              const engine::Relation& relation,
                              std::uint64_t budget = 1'000'000) const;

  /// The weights Answer() used for kSum/kAve (mirrors the engine's
  /// resolution: weight column when named, else 1 / 1/N).
  static Result<std::vector<double>> ResolveWeights(
      const engine::Query& query, const engine::Relation& relation);

 private:
  const vao::VariableAccuracyFunction* function_;
};

}  // namespace vaolib::testing

#endif  // VAOLIB_TESTING_ORACLE_H_
