#include "testing/oracle.h"

#include <algorithm>

#include "common/macros.h"
#include "common/stats.h"
#include "operators/operator_base.h"
#include "operators/sum_ave.h"
#include "vao/black_box.h"

namespace vaolib::testing {

namespace {

/// Resolves the query's argument bindings for \p row (relation fields and
/// constants only; the oracle has no stream tuple).
Result<std::vector<double>> BuildRowArgs(const engine::Query& query,
                                         const engine::Relation& relation,
                                         std::size_t row) {
  std::vector<double> args;
  args.reserve(query.args.size());
  for (const engine::ArgRef& ref : query.args) {
    switch (ref.source) {
      case engine::ArgRef::Source::kConstant:
        args.push_back(ref.constant);
        break;
      case engine::ArgRef::Source::kRelationField: {
        VAOLIB_ASSIGN_OR_RETURN(const std::size_t col,
                                relation.schema().IndexOf(ref.field));
        VAOLIB_ASSIGN_OR_RETURN(const engine::Value cell,
                                relation.At(row, col));
        VAOLIB_ASSIGN_OR_RETURN(const double v, cell.AsDouble());
        args.push_back(v);
        break;
      }
      case engine::ArgRef::Source::kStreamField:
        return Status::Unimplemented(
            "oracle does not resolve stream-field bindings");
    }
  }
  return args;
}

void DecideSelect(const engine::Query& query, OracleAnswer* answer) {
  for (const Bounds& b : answer->converged) {
    if (!b.Contains(query.constant)) {
      answer->passes.push_back(
          operators::CompareExact(b.Mid(), query.cmp, query.constant));
      answer->resolved_as_equal.push_back(false);
    } else {
      // Converged straddling the constant: the minWidth equality rule.
      answer->passes.push_back(
          operators::CompareExact(query.constant, query.cmp, query.constant));
      answer->resolved_as_equal.push_back(true);
    }
  }
}

void DecideRange(const engine::Query& query, OracleAnswer* answer) {
  const Bounds range(query.range_lo, query.range_hi);
  for (const Bounds& b : answer->converged) {
    if (!b.Contains(range.lo) && !b.Contains(range.hi)) {
      answer->passes.push_back(range.Contains(b.Mid()));
      answer->resolved_as_equal.push_back(false);
    } else {
      // Converged on an endpoint: inclusive ranges pass, exclusive fail.
      answer->passes.push_back(query.range_inclusive);
      answer->resolved_as_equal.push_back(true);
    }
  }
}

/// Fills best/admissible/required for a k-extreme query. Works in "maximize"
/// space: \p sign is +1 for kMax/kTopK and -1 for kMin.
void DecideExtreme(double sign, std::size_t k, OracleAnswer* answer) {
  const std::size_t n = answer->converged.size();
  auto lo = [&](std::size_t i) {
    const Bounds& b = answer->converged[i];
    return sign > 0 ? b.lo : -b.hi;
  };
  auto hi = [&](std::size_t i) {
    const Bounds& b = answer->converged[i];
    return sign > 0 ? b.hi : -b.lo;
  };
  answer->best_row = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (lo(i) + hi(i) > lo(answer->best_row) + hi(answer->best_row)) {
      answer->best_row = i;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t dominated_by = 0;  // rivals strictly above row i
    std::size_t dominates = 0;     // rivals strictly below row i
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      if (lo(j) > hi(i)) ++dominated_by;
      if (lo(i) > hi(j)) ++dominates;
    }
    if (dominated_by < k) answer->admissible.push_back(i);
    if (dominates >= n - k) answer->required.push_back(i);
  }
}

}  // namespace

bool OracleAnswer::IsAdmissible(std::size_t row) const {
  return std::find(admissible.begin(), admissible.end(), row) !=
         admissible.end();
}

bool OracleAnswer::IsRequired(std::size_t row) const {
  return std::find(required.begin(), required.end(), row) != required.end();
}

Result<std::vector<double>> OracleExecutor::ResolveWeights(
    const engine::Query& query, const engine::Relation& relation) {
  const std::size_t n = relation.size();
  if (query.weight_column.has_value()) {
    return relation.NumericColumn(*query.weight_column);
  }
  if (query.kind == engine::QueryKind::kAve) {
    return operators::AveWeights(n);
  }
  return operators::SumWeights(n);
}

Result<OracleAnswer> OracleExecutor::Answer(const engine::Query& query,
                                            const engine::Relation& relation,
                                            std::uint64_t budget) const {
  if (relation.size() == 0) {
    return Status::FailedPrecondition("oracle needs a non-empty relation");
  }
  OracleAnswer answer;
  answer.kind = query.kind;
  answer.converged.reserve(relation.size());

  // The black-box pass: one fresh object per row, converged to minWidth.
  // Work is charged to a scratch meter; the oracle's cost is not the
  // subject under test.
  WorkMeter scratch;
  for (std::size_t row = 0; row < relation.size(); ++row) {
    VAOLIB_ASSIGN_OR_RETURN(const std::vector<double> args,
                            BuildRowArgs(query, relation, row));
    VAOLIB_ASSIGN_OR_RETURN(vao::ResultObjectPtr object,
                            function_->Invoke(args, &scratch));
    const auto converged = vao::ConvergeToMinWidth(object.get(), budget);
    if (!converged.ok()) {
      return converged.status().WithContext("oracle row " +
                                            std::to_string(row));
    }
    const Bounds b = object->bounds();
    if (!b.IsValid()) {
      return Status::NumericError("oracle row " + std::to_string(row) +
                                  " converged to malformed bounds");
    }
    answer.converged.push_back(b);
  }

  switch (query.kind) {
    case engine::QueryKind::kSelect:
      DecideSelect(query, &answer);
      break;
    case engine::QueryKind::kSelectRange:
      DecideRange(query, &answer);
      break;
    case engine::QueryKind::kMax:
    case engine::QueryKind::kMin:
      DecideExtreme(query.kind == engine::QueryKind::kMax ? 1.0 : -1.0, 1,
                    &answer);
      answer.aggregate_bounds = answer.converged[answer.best_row];
      break;
    case engine::QueryKind::kTopK:
      DecideExtreme(1.0, query.k, &answer);
      answer.aggregate_bounds = answer.converged[answer.best_row];
      break;
    case engine::QueryKind::kSum:
    case engine::QueryKind::kAve: {
      VAOLIB_ASSIGN_OR_RETURN(const std::vector<double> weights,
                              ResolveWeights(query, relation));
      if (weights.size() != answer.converged.size()) {
        return Status::InvalidArgument("weight column length mismatch");
      }
      // Compensated, matching the engine's ExactSum so engine-vs-oracle
      // comparisons stay bit-stable on ill-conditioned weight/value mixes.
      NeumaierSum lo;
      NeumaierSum hi;
      for (std::size_t i = 0; i < weights.size(); ++i) {
        lo.Add(weights[i] * answer.converged[i].lo);
        hi.Add(weights[i] * answer.converged[i].hi);
      }
      answer.aggregate_bounds = Bounds(lo.Sum(), hi.Sum());
      break;
    }
  }
  return answer;
}

}  // namespace vaolib::testing
