#include "testing/invariant_checker.h"

#include <string>

#include "obs/flight_recorder.h"

namespace vaolib::testing {

namespace {

Status Violation(const std::string& what) {
  // Violations are exactly the moments the flight recorder exists for:
  // snapshot the last-N decision events before the failure propagates.
  obs::FlightRecorder::Global().DumpIfArmed("invariant-" + what);
  return Status::FailedPrecondition("invariant violated: " + what);
}

std::string BoundsToString(const Bounds& b) {
  return "[" + std::to_string(b.lo) + ", " + std::to_string(b.hi) + "]";
}

}  // namespace

Status InvariantChecker::CheckRefinement(vao::ResultObject* object,
                                         int max_iterations,
                                         const WorkMeter* meter) {
  if (object == nullptr) {
    return Status::InvalidArgument("CheckRefinement needs an object");
  }
  Bounds previous = object->bounds();
  if (!previous.IsValid()) {
    return Violation("initial bounds malformed " + BoundsToString(previous));
  }
  std::uint64_t previous_work = meter != nullptr ? meter->Total() : 0;
  for (int step = 0; step < max_iterations; ++step) {
    if (object->AtStoppingCondition()) return Status::OK();
    const Status iterated = object->Iterate();
    if (!iterated.ok()) return iterated;
    const Bounds current = object->bounds();
    if (!current.IsValid()) {
      return Violation("bounds malformed after step " + std::to_string(step) +
                       ": " + BoundsToString(current));
    }
    if (!previous.Contains(current)) {
      return Violation("refinement not nested at step " +
                       std::to_string(step) + ": " + BoundsToString(current) +
                       " escapes " + BoundsToString(previous));
    }
    if (meter != nullptr) {
      const std::uint64_t work = meter->Total();
      if (work < previous_work) {
        return Violation("work meter went backwards at step " +
                         std::to_string(step));
      }
      previous_work = work;
    }
    previous = current;
  }
  return Status::OK();
}

Status InvariantChecker::CheckTickAccounting(const engine::TickResult& tick) {
  if (tick.report.work.Total() != tick.work_units) {
    return Violation("report work total " +
                     std::to_string(tick.report.work.Total()) +
                     " != tick work_units " +
                     std::to_string(tick.work_units));
  }
  if (tick.report.iterations != tick.stats.iterations ||
      tick.report.choose_steps != tick.stats.choose_steps ||
      tick.report.objects_touched != tick.stats.objects_touched ||
      tick.report.stalled_objects != tick.stats.stalled_objects) {
    return Violation("report operator section disagrees with tick stats");
  }
  const std::uint64_t phase_total = tick.stats.coarse_iterations +
                                    tick.stats.greedy_iterations +
                                    tick.stats.finalize_iterations;
  if (phase_total != tick.stats.iterations) {
    return Violation("phase split " + std::to_string(phase_total) +
                     " != iterations " + std::to_string(tick.stats.iterations));
  }
  if (tick.report.rows_quarantined != tick.quarantined_rows.size()) {
    return Violation("rows_quarantined disagrees with quarantined_rows");
  }
  if (tick.degraded == tick.degradation_cause.ok()) {
    return Violation("degraded flag and degradation_cause disagree");
  }
  switch (tick.kind) {
    case engine::QueryKind::kMax:
    case engine::QueryKind::kMin:
    case engine::QueryKind::kSum:
    case engine::QueryKind::kAve:
      if (!tick.aggregate_bounds.IsValid()) {
        return Violation("aggregate bounds malformed " +
                         BoundsToString(tick.aggregate_bounds));
      }
      break;
    case engine::QueryKind::kTopK:
      for (const Bounds& b : tick.top_bounds) {
        if (!b.IsValid()) {
          return Violation("top-k bounds malformed " + BoundsToString(b));
        }
      }
      break;
    case engine::QueryKind::kSelect:
    case engine::QueryKind::kSelectRange:
      break;
  }
  return Status::OK();
}

Status InvariantChecker::CheckTicksEqual(const engine::TickResult& a,
                                         const engine::TickResult& b,
                                         bool require_equal_work) {
  if (a.kind != b.kind) return Violation("tick kinds differ");
  if (a.passing_rows != b.passing_rows) {
    return Violation("passing rows differ across runs");
  }
  if (a.quarantined_rows != b.quarantined_rows) {
    return Violation("quarantined rows differ across runs");
  }
  if (a.winner_row != b.winner_row) {
    return Violation("winner row differs across runs");
  }
  if (a.top_rows != b.top_rows) return Violation("top-k rows differ");
  if (a.tie != b.tie) return Violation("tie flags differ");
  if (!(a.aggregate_bounds == b.aggregate_bounds)) {
    return Violation("aggregate bounds differ across runs");
  }
  if (require_equal_work) {
    if (a.work_units != b.work_units) {
      return Violation("work units differ: " + std::to_string(a.work_units) +
                       " vs " + std::to_string(b.work_units));
    }
    if (a.stats.iterations != b.stats.iterations) {
      return Violation("iteration counts differ across runs");
    }
  }
  return Status::OK();
}

}  // namespace vaolib::testing
