#include "operators/selection.h"

#include "common/macros.h"
#include "common/thread_pool.h"
#include "operators/iteration_task.h"

namespace vaolib::operators {

namespace {

// Shared scaffolding of the batch paths: evaluates `eval(i, meter)` for
// every i in [0, n) with up to `threads` workers of the shared pool, filling
// `outcomes` in row order. Rows are grouped into contiguous chunks whose
// scratch meters merge into `meter` in chunk order, so work totals are
// independent of the thread count. All rows are attempted; the returned
// error (if any) is that of the lowest-indexed failing row.
//
// With a non-null `row_status`, per-row errors are quarantined there (the
// failed row keeps its default outcome) and the batch itself succeeds.
template <typename Outcome, typename EvalRow>
Result<std::vector<Outcome>> BatchEvaluate(std::size_t n, int threads,
                                           WorkMeter* meter,
                                           std::vector<Status>* row_status,
                                           const EvalRow& eval) {
  std::vector<Outcome> outcomes(n);
  if (row_status != nullptr) row_status->assign(n, Status::OK());
  auto body = [&](std::size_t begin, std::size_t end,
                  WorkMeter* chunk_meter) {
    Status first_error;
    for (std::size_t i = begin; i < end; ++i) {
      auto result = eval(i, chunk_meter);
      if (!result.ok()) {
        // Distinct indices per worker: no synchronization needed.
        if (row_status != nullptr) {
          (*row_status)[i] = result.status();
        } else if (first_error.ok()) {
          first_error = result.status();
        }
        continue;
      }
      outcomes[i] = std::move(result).value();
    }
    return first_error;
  };

  Status status;
  if (threads < 2 || n < 2) {
    status = body(0, n, meter);
  } else {
    ThreadPool::ForOptions options;
    options.max_parallelism = threads;
    status = ThreadPool::Shared().ParallelFor(n, options, meter, body);
  }
  if (!status.ok()) return status;
  return outcomes;
}

// Drives `object` while `undecided(bounds)` holds and the stopping condition
// has not been reached. The loop itself lives in SingleObjectDecisionTask
// (operators/iteration_task.h) so the engine's scheduler can run the same
// refinement step-at-a-time; this helper drives the task to completion for
// the classic blocking evaluation path.
template <typename Undecided>
Status DriveWhileUndecided(vao::ResultObject* object, const char* who,
                           std::uint64_t* iterations,
                           const Undecided& undecided) {
  VAOLIB_ASSIGN_OR_RETURN(
      auto task, SingleObjectDecisionTask::Create(object, who, undecided));
  while (!task->Done()) {
    VAOLIB_RETURN_IF_ERROR(task->Step(/*meter=*/nullptr));
  }
  *iterations += task->iterations();
  return Status::OK();
}

}  // namespace

Result<SelectionOutcome> SelectionVao::Evaluate(
    vao::ResultObject* object) const {
  if (object == nullptr) {
    return Status::InvalidArgument("selection over null result object");
  }

  SelectionOutcome outcome;
  // Iterate while the bounds still straddle the constant and the stopping
  // condition has not been reached (Section 3.2).
  VAOLIB_RETURN_IF_ERROR(DriveWhileUndecided(
      object, "selection", &outcome.stats.iterations,
      [&](const Bounds& b) { return b.Contains(constant_); }));
  outcome.stats.greedy_iterations = outcome.stats.iterations;
  outcome.stats.objects_touched = outcome.stats.iterations > 0 ? 1 : 0;
  outcome.short_circuited = !object->AtStoppingCondition();
  outcome.final_bounds = object->bounds();

  if (!outcome.final_bounds.Contains(constant_)) {
    // Bounds exclude the constant: every value in them decides identically.
    outcome.passes =
        CompareExact(outcome.final_bounds.Mid(), cmp_, constant_);
    return outcome;
  }

  // Converged while still straddling: the value is treated as equal to the
  // constant (Section 3.2), so strict predicates fail, non-strict pass.
  outcome.resolved_as_equal = true;
  outcome.passes = CompareExact(constant_, cmp_, constant_);
  return outcome;
}

Result<SelectionOutcome> SelectionVao::Evaluate(
    const vao::VariableAccuracyFunction& function,
    const std::vector<double>& args, WorkMeter* meter) const {
  VAOLIB_ASSIGN_OR_RETURN(vao::ResultObjectPtr object,
                          function.Invoke(args, meter));
  return Evaluate(object.get());
}

Result<std::vector<SelectionOutcome>> SelectionVao::EvaluateBatch(
    const vao::VariableAccuracyFunction& function,
    const std::vector<std::vector<double>>& rows, int threads,
    WorkMeter* meter, std::vector<Status>* row_status) const {
  return BatchEvaluate<SelectionOutcome>(
      rows.size(), threads, meter, row_status,
      [&](std::size_t i, WorkMeter* row_meter) {
        return Evaluate(function, rows[i], row_meter);
      });
}

Result<SelectionOutcome> RangeSelectionVao::Evaluate(
    vao::ResultObject* object) const {
  if (object == nullptr) {
    return Status::InvalidArgument("range selection over null result object");
  }
  if (!range_.IsValid()) {
    return Status::InvalidArgument("range selection needs lo <= hi");
  }

  SelectionOutcome outcome;
  // The predicate is undecided while either endpoint lies strictly inside
  // the bounds; iterate until both endpoints are cleared or convergence.
  VAOLIB_RETURN_IF_ERROR(DriveWhileUndecided(
      object, "range selection", &outcome.stats.iterations,
      [&](const Bounds& b) {
        return b.Contains(range_.lo) || b.Contains(range_.hi);
      }));
  outcome.stats.greedy_iterations = outcome.stats.iterations;
  outcome.stats.objects_touched = outcome.stats.iterations > 0 ? 1 : 0;
  outcome.short_circuited = !object->AtStoppingCondition();
  outcome.final_bounds = object->bounds();
  const Bounds b = outcome.final_bounds;

  if (!b.Contains(range_.lo) && !b.Contains(range_.hi)) {
    // Both endpoints cleared: the whole interval decides identically.
    outcome.passes = range_.Contains(b.Mid());
    return outcome;
  }

  // Converged while straddling an endpoint: value counts as equal to that
  // endpoint, so inclusive ranges pass, exclusive ones fail.
  outcome.resolved_as_equal = true;
  outcome.passes = inclusive_;
  return outcome;
}

Result<SelectionOutcome> RangeSelectionVao::Evaluate(
    const vao::VariableAccuracyFunction& function,
    const std::vector<double>& args, WorkMeter* meter) const {
  VAOLIB_ASSIGN_OR_RETURN(vao::ResultObjectPtr object,
                          function.Invoke(args, meter));
  return Evaluate(object.get());
}

Result<std::vector<SelectionOutcome>> RangeSelectionVao::EvaluateBatch(
    const vao::VariableAccuracyFunction& function,
    const std::vector<std::vector<double>>& rows, int threads,
    WorkMeter* meter, std::vector<Status>* row_status) const {
  return BatchEvaluate<SelectionOutcome>(
      rows.size(), threads, meter, row_status,
      [&](std::size_t i, WorkMeter* row_meter) {
        return Evaluate(function, rows[i], row_meter);
      });
}

Result<MultiSelectionVao::MultiOutcome> MultiSelectionVao::Evaluate(
    vao::ResultObject* object) const {
  if (object == nullptr) {
    return Status::InvalidArgument("multi-selection over null result object");
  }
  if (predicates_.empty()) {
    return Status::InvalidArgument("multi-selection with no predicates");
  }

  MultiOutcome outcome;
  // Iterate while ANY constant is still inside the bounds; the nearest
  // constant to the true value dictates the total work.
  VAOLIB_RETURN_IF_ERROR(DriveWhileUndecided(
      object, "multi-selection", &outcome.stats.iterations,
      [&](const Bounds& b) {
        for (const Predicate& p : predicates_) {
          if (b.Contains(p.constant)) return true;
        }
        return false;
      }));
  outcome.stats.greedy_iterations = outcome.stats.iterations;
  outcome.stats.objects_touched = outcome.stats.iterations > 0 ? 1 : 0;
  outcome.short_circuited = !object->AtStoppingCondition();
  outcome.final_bounds = object->bounds();

  outcome.passes.reserve(predicates_.size());
  outcome.resolved_as_equal.reserve(predicates_.size());
  for (const Predicate& p : predicates_) {
    if (!outcome.final_bounds.Contains(p.constant)) {
      outcome.passes.push_back(
          CompareExact(outcome.final_bounds.Mid(), p.cmp, p.constant));
      outcome.resolved_as_equal.push_back(false);
    } else {
      // Converged straddling this constant: equality semantics.
      outcome.passes.push_back(CompareExact(p.constant, p.cmp, p.constant));
      outcome.resolved_as_equal.push_back(true);
    }
  }
  return outcome;
}

Result<MultiSelectionVao::MultiOutcome> MultiSelectionVao::Evaluate(
    const vao::VariableAccuracyFunction& function,
    const std::vector<double>& args, WorkMeter* meter) const {
  VAOLIB_ASSIGN_OR_RETURN(vao::ResultObjectPtr object,
                          function.Invoke(args, meter));
  return Evaluate(object.get());
}

Result<std::vector<MultiSelectionVao::MultiOutcome>>
MultiSelectionVao::EvaluateBatch(
    const std::vector<vao::ResultObject*>& objects, int threads) const {
  // Objects charge their creation meters directly (atomic), so the batch
  // passes no meter of its own.
  return BatchEvaluate<MultiOutcome>(
      objects.size(), threads, /*meter=*/nullptr, /*row_status=*/nullptr,
      [&](std::size_t i, WorkMeter* /*row_meter*/) {
        return Evaluate(objects[i]);
      });
}

Result<std::vector<MultiSelectionVao::MultiOutcome>>
MultiSelectionVao::EvaluateBatch(
    const vao::VariableAccuracyFunction& function,
    const std::vector<std::vector<double>>& rows, int threads,
    WorkMeter* meter, std::vector<Status>* row_status) const {
  return BatchEvaluate<MultiOutcome>(
      rows.size(), threads, meter, row_status,
      [&](std::size_t i, WorkMeter* row_meter) {
        return Evaluate(function, rows[i], row_meter);
      });
}

Result<bool> TraditionalSelection::Evaluate(
    const vao::BlackBoxFunction& function, const std::vector<double>& args,
    WorkMeter* meter) const {
  VAOLIB_ASSIGN_OR_RETURN(const double value, function.Call(args, meter));
  return CompareExact(value, cmp_, constant_);
}

}  // namespace vaolib::operators
