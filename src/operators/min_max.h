// Copyright 2026 The vaolib Authors.
// MIN/MAX aggregate VAO (Section 5.1) and the "Optimal" oracle baseline of
// Section 6.2.
//
// The MAX VAO returns bounds on the object o_max whose value dominates every
// other object, terminating when either (1) o_max's bounds exceed all other
// bounds, or (2) o_max and everything still overlapping it have reached
// their stopping conditions (indistinguishable within minWidth). Iterations
// are chosen greedily: the candidate whose predicted bounds shrinkage
// removes the most overlap with the current guess o'_max per estimated CPU
// cycle. MIN is the exact mirror image and shares the implementation
// through bound negation.

#ifndef VAOLIB_OPERATORS_MIN_MAX_H_
#define VAOLIB_OPERATORS_MIN_MAX_H_

#include <cstddef>
#include <limits>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/work_meter.h"
#include "operators/operator_base.h"
#include "vao/result_object.h"

namespace vaolib::operators {

/// \brief Result of a MIN/MAX evaluation.
struct MinMaxOutcome {
  std::size_t winner_index = 0;  ///< index of the extreme object in the input
  Bounds winner_bounds;          ///< bounds on its value, width <= epsilon
  /// True when termination case (2) fired: the winner and tied_indices are
  /// mutually indistinguishable within their minWidths.
  bool tie = false;
  std::vector<std::size_t> tied_indices;  ///< overlapping converged rivals
  /// True when a refinement stall (see OperatorStats::stalled_objects) froze
  /// some bounds early: the answer is still sound, but winner_bounds may be
  /// wider than epsilon and ties may be coarser than minWidth would allow.
  bool precision_degraded = false;
  /// False when evaluation stopped on a work budget before termination: the
  /// winner is then the current best guess and winner_bounds a sound
  /// envelope for the true extreme, but neither is final.
  bool converged = true;
  OperatorStats stats;
};

/// \brief Configuration of a MIN/MAX VAO. All shared knobs (epsilon,
/// strategy, threads/coarse pre-phase, budget, meter) live on
/// OperatorOptions; epsilon must additionally be at least the largest input
/// minWidth (the paper's footnote 10).
struct MinMaxOptions : OperatorOptions {
  ExtremeKind kind = ExtremeKind::kMax;
};

/// \brief Adaptive MIN/MAX aggregate over a set of result objects.
class MinMaxVao {
 public:
  explicit MinMaxVao(const MinMaxOptions& options) : options_(options) {}

  /// Runs the aggregate over \p objects (all non-null; at least one).
  ///
  /// \return InvalidArgument if epsilon < max minWidth or inputs malformed;
  /// NotConverged past max_total_iterations.
  Result<MinMaxOutcome> Evaluate(
      const std::vector<vao::ResultObject*>& objects) const;

  const MinMaxOptions& options() const { return options_; }

 private:
  MinMaxOptions options_;
};

/// \brief Validates MIN/MAX inputs: at least one object, all non-null with
/// well-formed bounds, and \p epsilon >= the largest input minWidth (the
/// paper's footnote 10). Shared by the VAO, its IterationTask, and the
/// oracle baseline.
Status ValidateMinMaxInputs(const std::vector<vao::ResultObject*>& objects,
                            double epsilon);

/// \brief The Section 6.2 "Optimal" baseline: an iteration strategy that is
/// told the winning index a priori. It converges the winner to epsilon
/// first, then iterates each rival only until its bounds separate from the
/// winner's (or its stopping condition fires).
Result<MinMaxOutcome> OptimalExtremeOracle(
    const std::vector<vao::ResultObject*>& objects, std::size_t winner_index,
    ExtremeKind kind, double epsilon);

}  // namespace vaolib::operators

#endif  // VAOLIB_OPERATORS_MIN_MAX_H_
