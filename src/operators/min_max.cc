#include "operators/min_max.h"

#include <algorithm>
#include <limits>

#include "common/macros.h"

namespace vaolib::operators {

namespace {

// The implementation works in "max space": for kMin every interval is
// negated ([-H, -L]) so the minimum becomes the maximum, and the outcome is
// negated back at the end.
Bounds View(const Bounds& b, ExtremeKind kind) {
  return kind == ExtremeKind::kMax ? b : Bounds(-b.hi, -b.lo);
}

Status ValidateInputs(const std::vector<vao::ResultObject*>& objects,
                      double epsilon) {
  if (objects.empty()) {
    return Status::InvalidArgument("MIN/MAX over an empty object set");
  }
  double max_min_width = 0.0;
  for (const auto* object : objects) {
    if (object == nullptr) {
      return Status::InvalidArgument("MIN/MAX over a null result object");
    }
    VAOLIB_RETURN_IF_ERROR(ValidateObjectBounds(*object, "MIN/MAX"));
    max_min_width = std::max(max_min_width, object->min_width());
  }
  // Footnote 10: bounds within epsilon cannot be guaranteed when epsilon is
  // tighter than an input's convergence floor.
  if (epsilon < max_min_width) {
    return Status::InvalidArgument(
        "precision constraint " + std::to_string(epsilon) +
        " is below the largest input minWidth " +
        std::to_string(max_min_width));
  }
  return Status::OK();
}

}  // namespace

Result<MinMaxOutcome> MinMaxVao::Evaluate(
    const std::vector<vao::ResultObject*>& objects) const {
  VAOLIB_RETURN_IF_ERROR(ValidateInputs(objects, options_.epsilon));
  if (options_.strategy == IterationStrategy::kRandom &&
      options_.rng == nullptr) {
    return Status::InvalidArgument("random strategy requires an Rng");
  }

  const ExtremeKind kind = options_.kind;
  MinMaxOutcome outcome;
  std::vector<bool> touched(objects.size(), false);

  // Per-object stall tracking: an object whose Iterate() keeps succeeding
  // without tightening its bounds is quarantined from further iteration and
  // treated as converged. Its frozen bounds remain sound, so the answer
  // stays correct -- merely coarser than minWidth would have allowed.
  std::vector<StallGuard> stall(objects.size());
  auto effectively_converged = [&](std::size_t i) {
    return objects[i]->AtStoppingCondition() || stall[i].stalled();
  };
  auto observe_iterate = [&](std::size_t i) -> Status {
    VAOLIB_RETURN_IF_ERROR(ValidateObjectBounds(*objects[i], "MIN/MAX"));
    stall[i].Observe(objects[i]->bounds().Width());
    return Status::OK();
  };

  // Optional parallel phase: bulk-converge everything to the coarse width
  // on the pool; the greedy loop below then starts from those states.
  {
    std::vector<std::uint64_t> coarse_iterations;
    VAOLIB_RETURN_IF_ERROR(
        ParallelCoarseConverge(objects, options_.threads,
                               options_.coarse_width,
                               options_.coarse_max_steps,
                               &coarse_iterations));
    for (std::size_t i = 0; i < coarse_iterations.size(); ++i) {
      outcome.stats.iterations += coarse_iterations[i];
      outcome.stats.coarse_iterations += coarse_iterations[i];
      if (coarse_iterations[i] > 0) touched[i] = true;
    }
    if (outcome.stats.iterations > options_.max_total_iterations) {
      return Status::NotConverged("MIN/MAX exceeded max_total_iterations");
    }
  }

  // Candidate indices still able to be the maximum. Objects are pruned once
  // another candidate's lower bound exceeds their upper bound; pruned
  // objects are never reconsidered (bounds only tighten).
  std::vector<std::size_t> alive(objects.size());
  for (std::size_t i = 0; i < alive.size(); ++i) alive[i] = i;
  std::size_t round_robin_cursor = 0;

  auto bounds_of = [&](std::size_t i) {
    return View(objects[i]->bounds(), kind);
  };
  auto est_of = [&](std::size_t i) {
    return View(objects[i]->est_bounds(), kind);
  };

  while (true) {
    // Prune dominated candidates.
    double best_lo = -std::numeric_limits<double>::infinity();
    for (const std::size_t i : alive) {
      best_lo = std::max(best_lo, bounds_of(i).lo);
    }
    std::erase_if(alive, [&](std::size_t i) {
      return bounds_of(i).hi < best_lo;
    });

    // Guess o'_max: the candidate with the highest upper bound.
    std::size_t guess = alive.front();
    for (const std::size_t i : alive) {
      if (bounds_of(i).hi > bounds_of(guess).hi) guess = i;
    }

    // Termination case (1): every rival eliminated.
    if (alive.size() == 1) {
      outcome.winner_index = guess;
      break;
    }
    // Termination case (2): guess and all (overlapping) rivals converged.
    // Every live rival overlaps the guess: non-overlap would imply either
    // domination (pruned above) or a higher upper bound than the guess.
    const bool all_converged =
        std::all_of(alive.begin(), alive.end(), effectively_converged);
    if (all_converged) {
      outcome.winner_index = guess;
      outcome.tie = true;
      for (const std::size_t i : alive) {
        if (i != guess) outcome.tied_indices.push_back(i);
      }
      break;
    }

    // Choose the next iteration among live, non-converged candidates.
    std::vector<std::size_t> iterable;
    for (const std::size_t i : alive) {
      if (!effectively_converged(i)) iterable.push_back(i);
    }
    // all_converged was false, so iterable is non-empty.

    std::size_t chosen = iterable.front();
    ++outcome.stats.choose_steps;
    if (options_.meter != nullptr) {
      // O(N) per choice without indexing (Section 5.1).
      options_.meter->Charge(WorkKind::kChooseIter, alive.size());
    }

    switch (options_.strategy) {
      case IterationStrategy::kGreedy: {
        // Estimated total-overlap reduction with the guess, per CPU cycle.
        const Bounds guess_bounds = bounds_of(guess);
        double best_score = -1.0;
        for (const std::size_t i : iterable) {
          double reduction = 0.0;
          if (i == guess) {
            // Iterating the guess shrinks its overlap with every rival.
            const Bounds est = est_of(guess);
            for (const std::size_t j : alive) {
              if (j == guess) continue;
              const Bounds other = bounds_of(j);
              reduction += std::max(
                  0.0, guess_bounds.OverlapWidth(other) -
                           est.OverlapWidth(other));
            }
          } else {
            // Iterating rival i shrinks only the (guess, i) overlap. With
            // est inside the current bounds this equals the paper's
            // min(o_i.H - o'max.L, o_i.H - o_i.estH).
            const Bounds cur = bounds_of(i);
            const Bounds est = est_of(i);
            reduction = std::max(0.0, guess_bounds.OverlapWidth(cur) -
                                          guess_bounds.OverlapWidth(est));
          }
          const double cost =
              static_cast<double>(std::max<std::uint64_t>(
                  objects[i]->est_cost(), 1));
          const double score = reduction / cost;
          if (score > best_score) {
            best_score = score;
            chosen = i;
          }
        }
        if (best_score <= 0.0) {
          // No predicted progress anywhere (estimates can be wrong); fall
          // back to the widest un-converged candidate so real bounds keep
          // tightening and a termination case eventually fires.
          double widest = -1.0;
          for (const std::size_t i : iterable) {
            const double w = bounds_of(i).Width();
            if (w > widest) {
              widest = w;
              chosen = i;
            }
          }
        }
        break;
      }
      case IterationStrategy::kRoundRobin:
        chosen = iterable[round_robin_cursor % iterable.size()];
        ++round_robin_cursor;
        break;
      case IterationStrategy::kRandom:
        chosen = iterable[static_cast<std::size_t>(options_.rng->UniformInt(
            0, static_cast<std::int64_t>(iterable.size()) - 1))];
        break;
    }

    VAOLIB_RETURN_IF_ERROR(objects[chosen]->Iterate());
    VAOLIB_RETURN_IF_ERROR(observe_iterate(chosen));
    touched[chosen] = true;
    ++outcome.stats.greedy_iterations;
    if (++outcome.stats.iterations > options_.max_total_iterations) {
      return Status::NotConverged("MIN/MAX exceeded max_total_iterations");
    }
  }

  // Refine the winner to the precision constraint. Its stopping condition
  // implies width < minWidth <= epsilon, so this always terminates (a
  // stalled winner is quarantined with sound-but-wider bounds instead).
  vao::ResultObject* winner = objects[outcome.winner_index];
  while (winner->bounds().Width() > options_.epsilon &&
         !effectively_converged(outcome.winner_index)) {
    VAOLIB_RETURN_IF_ERROR(winner->Iterate());
    VAOLIB_RETURN_IF_ERROR(observe_iterate(outcome.winner_index));
    touched[outcome.winner_index] = true;
    ++outcome.stats.finalize_iterations;
    if (++outcome.stats.iterations > options_.max_total_iterations) {
      return Status::NotConverged("MIN/MAX exceeded max_total_iterations");
    }
  }

  outcome.winner_bounds = winner->bounds();
  for (const bool t : touched) {
    if (t) ++outcome.stats.objects_touched;
  }
  for (const StallGuard& guard : stall) {
    if (guard.stalled()) ++outcome.stats.stalled_objects;
  }
  outcome.precision_degraded = outcome.stats.stalled_objects > 0;
  return outcome;
}

Result<MinMaxOutcome> OptimalExtremeOracle(
    const std::vector<vao::ResultObject*>& objects, std::size_t winner_index,
    ExtremeKind kind, double epsilon) {
  VAOLIB_RETURN_IF_ERROR(ValidateInputs(objects, epsilon));
  if (winner_index >= objects.size()) {
    return Status::InvalidArgument("oracle winner_index out of range");
  }

  MinMaxOutcome outcome;
  outcome.winner_index = winner_index;
  vao::ResultObject* winner = objects[winner_index];

  // Converge the known winner to the output precision first; running it any
  // tighter would be wasted work (Section 6.2).
  while (winner->bounds().Width() > epsilon &&
         !winner->AtStoppingCondition()) {
    VAOLIB_RETURN_IF_ERROR(winner->Iterate());
    ++outcome.stats.iterations;
  }

  // Then push every rival just past the winner's bounds.
  const Bounds winner_view = View(winner->bounds(), kind);
  for (std::size_t i = 0; i < objects.size(); ++i) {
    if (i == winner_index) continue;
    bool iterated = false;
    while (View(objects[i]->bounds(), kind).hi >= winner_view.lo &&
           !objects[i]->AtStoppingCondition()) {
      VAOLIB_RETURN_IF_ERROR(objects[i]->Iterate());
      ++outcome.stats.iterations;
      iterated = true;
    }
    if (View(objects[i]->bounds(), kind).hi >= winner_view.lo) {
      outcome.tie = true;
      outcome.tied_indices.push_back(i);
    }
    if (iterated) ++outcome.stats.objects_touched;
  }
  if (outcome.stats.iterations > 0) ++outcome.stats.objects_touched;

  outcome.winner_bounds = winner->bounds();
  return outcome;
}

}  // namespace vaolib::operators
