#include "operators/min_max.h"

#include <algorithm>
#include <limits>

#include "common/macros.h"
#include "operators/iteration_task.h"

namespace vaolib::operators {

namespace {

// The oracle works in "max space": for kMin every interval is negated
// ([-H, -L]) so the minimum becomes the maximum.
Bounds View(const Bounds& b, ExtremeKind kind) {
  return kind == ExtremeKind::kMax ? b : Bounds(-b.hi, -b.lo);
}

}  // namespace

Status ValidateMinMaxInputs(const std::vector<vao::ResultObject*>& objects,
                            double epsilon) {
  if (objects.empty()) {
    return Status::InvalidArgument("MIN/MAX over an empty object set");
  }
  double max_min_width = 0.0;
  for (const auto* object : objects) {
    if (object == nullptr) {
      return Status::InvalidArgument("MIN/MAX over a null result object");
    }
    VAOLIB_RETURN_IF_ERROR(ValidateObjectBounds(*object, "MIN/MAX"));
    max_min_width = std::max(max_min_width, object->min_width());
  }
  // Footnote 10: bounds within epsilon cannot be guaranteed when epsilon is
  // tighter than an input's convergence floor.
  if (epsilon < max_min_width) {
    return Status::InvalidArgument(
        "precision constraint " + std::to_string(epsilon) +
        " is below the largest input minWidth " +
        std::to_string(max_min_width));
  }
  return Status::OK();
}

Result<MinMaxOutcome> MinMaxVao::Evaluate(
    const std::vector<vao::ResultObject*>& objects) const {
  // The whole convergence loop lives in the resumable task; Evaluate just
  // drives it to completion (or to the work budget, when one is set).
  VAOLIB_ASSIGN_OR_RETURN(auto task,
                          MinMaxIterationTask::Create(options_, objects));
  VAOLIB_ASSIGN_OR_RETURN(const bool finished,
                          DriveTask(task.get(), options_));
  (void)finished;  // Snapshot() reports convergence itself.
  return task->Snapshot();
}

Result<MinMaxOutcome> OptimalExtremeOracle(
    const std::vector<vao::ResultObject*>& objects, std::size_t winner_index,
    ExtremeKind kind, double epsilon) {
  VAOLIB_RETURN_IF_ERROR(ValidateMinMaxInputs(objects, epsilon));
  if (winner_index >= objects.size()) {
    return Status::InvalidArgument("oracle winner_index out of range");
  }

  MinMaxOutcome outcome;
  outcome.winner_index = winner_index;
  vao::ResultObject* winner = objects[winner_index];

  // Converge the known winner to the output precision first; running it any
  // tighter would be wasted work (Section 6.2).
  while (winner->bounds().Width() > epsilon &&
         !winner->AtStoppingCondition()) {
    VAOLIB_RETURN_IF_ERROR(winner->Iterate());
    ++outcome.stats.iterations;
  }

  // Then push every rival just past the winner's bounds.
  const Bounds winner_view = View(winner->bounds(), kind);
  for (std::size_t i = 0; i < objects.size(); ++i) {
    if (i == winner_index) continue;
    bool iterated = false;
    while (View(objects[i]->bounds(), kind).hi >= winner_view.lo &&
           !objects[i]->AtStoppingCondition()) {
      VAOLIB_RETURN_IF_ERROR(objects[i]->Iterate());
      ++outcome.stats.iterations;
      iterated = true;
    }
    if (View(objects[i]->bounds(), kind).hi >= winner_view.lo) {
      outcome.tie = true;
      outcome.tied_indices.push_back(i);
    }
    if (iterated) ++outcome.stats.objects_touched;
  }
  if (outcome.stats.iterations > 0) ++outcome.stats.objects_touched;

  outcome.winner_bounds = winner->bounds();
  return outcome;
}

}  // namespace vaolib::operators
