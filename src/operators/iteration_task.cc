#include "operators/iteration_task.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <string>
#include <utility>

#include "common/macros.h"
#include "common/stats.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "vao/batch_iterate.h"
#include "vao/parallel.h"

namespace vaolib::operators {

namespace {

// Work in "max space": for kMin every interval is negated ([-H, -L]) so the
// minimum becomes the maximum, and results are negated back at the end.
Bounds View(const Bounds& b, ExtremeKind kind) {
  return kind == ExtremeKind::kMax ? b : Bounds(-b.hi, -b.lo);
}

Bounds Unview(const Bounds& b, ExtremeKind kind) {
  return kind == ExtremeKind::kMax ? b : Bounds(-b.hi, -b.lo);
}

// Greedy score ingredients of Section 5.2: weighted predicted error
// reduction and estimated CPU cycles (the strategy divides them).
double SumReduction(const vao::ResultObject& object, double weight) {
  const Bounds cur = object.bounds();
  const Bounds est = object.est_bounds();
  return std::max(0.0, weight * ((est.lo - cur.lo) + (cur.hi - est.hi)));
}

double EstCostOf(const vao::ResultObject& object) {
  return static_cast<double>(
      std::max<std::uint64_t>(object.est_cost(), 1));
}

double GreedyScore(const vao::ResultObject& object, double weight) {
  return SumReduction(object, weight) / EstCostOf(object);
}

std::uint64_t Log2Ceil(std::size_t n) {
  std::uint64_t bits = 1;
  while (n > 1) {
    ++bits;
    n >>= 1;
  }
  return bits;
}

// Decision-trace capture: arm immediately before the chosen object's
// Iterate(), commit immediately after. Reads only the free accessors
// (bounds(), est_bounds(), est_cost(), WorkMeter::Total()), so arming a
// capture never changes work totals or iterate sequences -- the determinism
// contract of obs/trace.h.
struct DecisionCapture {
  bool active = false;
  obs::Decision decision;
  const vao::ResultObject* object = nullptr;
  const WorkMeter* meter = nullptr;
  std::uint64_t work_before = 0;
};

DecisionCapture BeginDecision(const char* op, const char* phase,
                              std::size_t index,
                              const vao::ResultObject& object,
                              const WorkMeter* meter, double score,
                              double raw_score) {
  DecisionCapture capture;
  capture.active = obs::DecisionTraceActive();
  if (!capture.active) return capture;
  capture.object = &object;
  capture.meter = meter;
  capture.decision.op = op;
  capture.decision.phase = phase;
  capture.decision.object_index = static_cast<std::uint64_t>(index);
  const Bounds before = object.bounds();
  capture.decision.lo_before = before.lo;
  capture.decision.hi_before = before.hi;
  const Bounds est = object.est_bounds();
  capture.decision.est_lo = est.lo;
  capture.decision.est_hi = est.hi;
  capture.decision.est_cost = static_cast<double>(object.est_cost());
  capture.decision.score = score;
  capture.decision.raw_score = raw_score;
  capture.work_before = meter != nullptr ? meter->Total() : 0;
  return capture;
}

void CommitDecision(DecisionCapture* capture) {
  if (!capture->active) return;
  const Bounds after = capture->object->bounds();
  capture->decision.lo_after = after.lo;
  capture->decision.hi_after = after.hi;
  capture->decision.actual_cost =
      capture->meter != nullptr
          ? static_cast<double>(capture->meter->Total() -
                                capture->work_before)
          : 0.0;
  obs::RecordDecision(capture->decision);
}

// The greedy benefit/cost score of the candidate the strategy picked (zero
// when it was not scored).
double ChosenScore(const std::vector<IterationCandidate>& candidates,
                   std::size_t chosen) {
  for (const IterationCandidate& candidate : candidates) {
    if (candidate.index == chosen) {
      return candidate.benefit / std::max(candidate.cost, 1.0);
    }
  }
  return 0.0;
}

// One batch cycle through the batch execution tier: capture every chosen
// object's decision before-state up front, hand the whole set to
// vao::IterateBatch (which routes compatible objects through the lockstep
// kernels), then record decisions in chosen order with actual_cost taken
// from the per-object spend the batch tier attributes -- those spends sum
// exactly to the shared meter's delta, so traces and accounting match the
// scalar path. Returns the first failing object's status.
Status IterateChosenBatch(const char* op, const char* phase,
                          const std::vector<vao::ResultObject*>& objects,
                          const std::vector<std::size_t>& chosen,
                          const std::vector<double>& scores,
                          const std::vector<double>& raw_scores,
                          WorkMeter* meter,
                          vao::BatchIterateOutcome* outcome) {
  const bool tracing = obs::DecisionTraceActive();
  std::vector<obs::Decision> decisions;
  if (tracing) {
    decisions.reserve(chosen.size());
    for (std::size_t j = 0; j < chosen.size(); ++j) {
      const std::size_t i = chosen[j];
      obs::Decision decision;
      decision.op = op;
      decision.phase = phase;
      decision.object_index = static_cast<std::uint64_t>(i);
      const Bounds before = objects[i]->bounds();
      decision.lo_before = before.lo;
      decision.hi_before = before.hi;
      const Bounds est = objects[i]->est_bounds();
      decision.est_lo = est.lo;
      decision.est_hi = est.hi;
      decision.est_cost = static_cast<double>(objects[i]->est_cost());
      decision.score = scores[j];
      decision.raw_score = j < raw_scores.size() ? raw_scores[j] : scores[j];
      decisions.push_back(decision);
    }
  }

  std::vector<vao::ResultObject*> batch;
  batch.reserve(chosen.size());
  for (const std::size_t i : chosen) batch.push_back(objects[i]);
  *outcome = vao::IterateBatch(batch, meter);

  Status first_error;
  for (std::size_t j = 0; j < chosen.size(); ++j) {
    if (tracing) {
      const Bounds after = objects[chosen[j]]->bounds();
      decisions[j].lo_after = after.lo;
      decisions[j].hi_after = after.hi;
      decisions[j].actual_cost = static_cast<double>(outcome->spent[j]);
      obs::RecordDecision(decisions[j]);
    }
    if (first_error.ok() && !outcome->statuses[j].ok()) {
      first_error = outcome->statuses[j];
    }
  }
  return first_error;
}

// Batch width of one adaptive cycle: only the batch-aware strategies read
// OperatorOptions::batch_k; everything else stays at the paper's one object
// per cycle.
std::size_t CycleBatchK(const OperatorOptions& options) {
  if (options.strategy != StrategyKind::kBatchGreedy) return 1;
  return static_cast<std::size_t>(std::max(options.batch_k, 1));
}

}  // namespace

// ---------------------------------------------------------------------------
// IterationTask base
// ---------------------------------------------------------------------------

Status IterationTask::Step(WorkMeter* meter) {
  if (done_) {
    return Status::FailedPrecondition(std::string(name()) +
                                      " task stepped after completion");
  }
  const std::uint64_t cost_before = meter != nullptr ? meter->Total() : 0;
  const double uncertainty_before = CurrentUncertainty();
  const Status status = StepImpl(meter);
  if (!status.ok()) {
    done_ = true;
    converged_ = false;
    return status;
  }
  const double uncertainty_after = done_ ? 0.0 : CurrentUncertainty();
  est_benefit_ = std::max(0.0, uncertainty_before - uncertainty_after);
  if (meter != nullptr) {
    est_cost_ = std::max<double>(
        1.0, static_cast<double>(meter->Total() - cost_before));
  }
  calibrated_ = true;
  return Status::OK();
}

double IterationTask::EstimatedBenefit() const {
  if (done_) return 0.0;
  return calibrated_ ? est_benefit_ : CurrentUncertainty();
}

double IterationTask::EstimatedCost() const { return est_cost_; }

Result<bool> DriveTask(IterationTask* task, const OperatorOptions& options) {
  WorkMeter* meter = options.meter;
  const std::uint64_t base = meter != nullptr ? meter->Total() : 0;
  while (!task->Done()) {
    if (options.budget > 0 && meter != nullptr &&
        meter->Total() - base >= options.budget) {
      return false;
    }
    VAOLIB_RETURN_IF_ERROR(task->Step(meter));
  }
  return true;
}

// ---------------------------------------------------------------------------
// MinMaxIterationTask
// ---------------------------------------------------------------------------

MinMaxIterationTask::MinMaxIterationTask(
    const MinMaxOptions& options,
    const std::vector<vao::ResultObject*>& objects,
    std::unique_ptr<IterationStrategy> strategy)
    : options_(options),
      objects_(objects),
      strategy_(std::move(strategy)),
      corrector_(options_, objects_),
      stall_(objects.size()),
      touched_(objects.size(), false) {}

Result<std::unique_ptr<MinMaxIterationTask>> MinMaxIterationTask::Create(
    const MinMaxOptions& options,
    const std::vector<vao::ResultObject*>& objects) {
  VAOLIB_RETURN_IF_ERROR(ValidateMinMaxInputs(objects, options.epsilon));
  VAOLIB_ASSIGN_OR_RETURN(auto strategy,
                          MakeStrategy(options.strategy, options.rng));
  return std::unique_ptr<MinMaxIterationTask>(
      new MinMaxIterationTask(options, objects, std::move(strategy)));
}

Bounds MinMaxIterationTask::ViewOf(std::size_t i) const {
  return View(objects_[i]->bounds(), options_.kind);
}

Bounds MinMaxIterationTask::EstViewOf(std::size_t i) const {
  return View(objects_[i]->est_bounds(), options_.kind);
}

bool MinMaxIterationTask::EffectivelyConverged(std::size_t i) const {
  return objects_[i]->AtStoppingCondition() || stall_[i].stalled();
}

Status MinMaxIterationTask::ObserveIterate(std::size_t i) {
  VAOLIB_RETURN_IF_ERROR(ValidateObjectBounds(*objects_[i], "MIN/MAX"));
  stall_[i].Observe(objects_[i]->bounds().Width());
  return Status::OK();
}

Status MinMaxIterationTask::StepImpl(WorkMeter* meter) {
  switch (phase_) {
    case Phase::kCoarse: {
      // Optional parallel phase: bulk-converge everything to the coarse
      // width on the pool; the greedy search starts from those states.
      std::vector<std::uint64_t> coarse_iterations;
      VAOLIB_RETURN_IF_ERROR(ParallelCoarseConverge(
          objects_, options_.threads, options_.coarse_width,
          options_.coarse_max_steps, &coarse_iterations));
      for (std::size_t i = 0; i < coarse_iterations.size(); ++i) {
        outcome_.stats.iterations += coarse_iterations[i];
        outcome_.stats.coarse_iterations += coarse_iterations[i];
        if (coarse_iterations[i] > 0) touched_[i] = true;
      }
      if (outcome_.stats.iterations > options_.max_total_iterations) {
        return Status::NotConverged("MIN/MAX exceeded max_total_iterations");
      }
      // Candidate indices still able to be the maximum; pruned candidates
      // are never reconsidered (bounds only tighten).
      alive_.resize(objects_.size());
      std::iota(alive_.begin(), alive_.end(), std::size_t{0});
      phase_ = Phase::kSearch;
      return Status::OK();
    }

    case Phase::kSearch: {
      // Prune dominated candidates.
      double best_lo = -std::numeric_limits<double>::infinity();
      for (const std::size_t i : alive_) {
        best_lo = std::max(best_lo, ViewOf(i).lo);
      }
      std::erase_if(alive_,
                    [&](std::size_t i) { return ViewOf(i).hi < best_lo; });

      // Guess o'_max: the candidate with the highest upper bound.
      std::size_t guess = alive_.front();
      for (const std::size_t i : alive_) {
        if (ViewOf(i).hi > ViewOf(guess).hi) guess = i;
      }

      // Termination case (1): every rival eliminated.
      if (alive_.size() == 1) {
        outcome_.winner_index = guess;
        phase_ = Phase::kFinalize;
        return Status::OK();
      }
      // Termination case (2): guess and all (overlapping) rivals converged.
      const bool all_converged = std::all_of(
          alive_.begin(), alive_.end(),
          [&](std::size_t i) { return EffectivelyConverged(i); });
      if (all_converged) {
        outcome_.winner_index = guess;
        outcome_.tie = true;
        for (const std::size_t i : alive_) {
          if (i != guess) outcome_.tied_indices.push_back(i);
        }
        phase_ = Phase::kFinalize;
        return Status::OK();
      }

      // Choose the next iteration among live, non-converged candidates
      // (all_converged was false, so the set is non-empty).
      std::vector<std::size_t> iterable;
      for (const std::size_t i : alive_) {
        if (!EffectivelyConverged(i)) iterable.push_back(i);
      }

      ++outcome_.stats.choose_steps;
      if (meter != nullptr) {
        // O(N) per choice without indexing (Section 5.1).
        meter->Charge(WorkKind::kChooseIter, alive_.size());
      }

      // Sentinel probing (kSentinelGreedy): spend this cycle on a pending
      // correlation-group probe instead of the greedy pick; the observed
      // outcome re-ranks the probe's whole group.
      std::size_t probe = 0;
      if (corrector_.NextProbe(iterable, &probe)) {
        DecisionCapture trace = BeginDecision(
            name(), "sentinel", probe, *objects_[probe], meter, 0.0, 0.0);
        const ScoreCorrector::Observation observation =
            corrector_.BeginObserve(probe, meter);
        VAOLIB_RETURN_IF_ERROR(objects_[probe]->Iterate());
        CommitDecision(&trace);
        corrector_.CommitObserve(observation, &outcome_.stats);
        VAOLIB_RETURN_IF_ERROR(ObserveIterate(probe));
        touched_[probe] = true;
        ++outcome_.stats.greedy_iterations;
        if (++outcome_.stats.iterations > options_.max_total_iterations) {
          return Status::NotConverged(
              "MIN/MAX exceeded max_total_iterations");
        }
        return Status::OK();
      }

      std::vector<IterationCandidate> candidates;
      std::vector<IterationCandidate> raw_candidates;
      candidates.reserve(iterable.size());
      if (strategy_->WantsScores()) {
        // Estimated total-overlap reduction with the guess, per CPU cycle.
        const Bounds guess_bounds = ViewOf(guess);
        const auto reduction_of = [&](std::size_t i, const Bounds& est) {
          double reduction = 0.0;
          if (i == guess) {
            // Iterating the guess shrinks its overlap with every rival.
            for (const std::size_t j : alive_) {
              if (j == guess) continue;
              const Bounds other = ViewOf(j);
              reduction +=
                  std::max(0.0, guess_bounds.OverlapWidth(other) -
                                    est.OverlapWidth(other));
            }
          } else {
            // Iterating rival i shrinks only the (guess, i) overlap. With
            // est inside the current bounds this equals the paper's
            // min(o_i.H - o'max.L, o_i.H - o_i.estH).
            const Bounds cur = ViewOf(i);
            reduction = std::max(0.0, guess_bounds.OverlapWidth(cur) -
                                          guess_bounds.OverlapWidth(est));
          }
          return reduction;
        };
        raw_candidates.reserve(iterable.size());
        for (const std::size_t i : iterable) {
          const double raw_cost = EstCostOf(*objects_[i]);
          const double raw_reduction = reduction_of(i, EstViewOf(i));
          double reduction = raw_reduction;
          double cost = raw_cost;
          if (corrector_.correcting()) {
            const ScoreCorrector::Corrected corrected = corrector_.Correct(
                i, objects_[i]->bounds(), objects_[i]->est_bounds(),
                raw_cost);
            if (corrected.changed) {
              cost = corrected.cost;
              reduction = reduction_of(i, View(corrected.est, options_.kind));
            }
          }
          candidates.push_back(
              IterationCandidate{i, reduction, cost, ViewOf(i).Width()});
          raw_candidates.push_back(IterationCandidate{
              i, raw_reduction, raw_cost, ViewOf(i).Width()});
        }
      } else {
        for (const std::size_t i : iterable) {
          candidates.push_back(IterationCandidate{i, 0.0, 1.0, 0.0});
        }
      }
      const std::vector<IterationCandidate>& raws =
          raw_candidates.empty() ? candidates : raw_candidates;
      std::vector<std::size_t> picks;
      strategy_->ChooseBatch(candidates, CycleBatchK(options_), &picks);

      if (picks.size() == 1) {
        const std::size_t chosen = picks.front();
        DecisionCapture trace =
            BeginDecision(name(), "search", chosen, *objects_[chosen], meter,
                          ChosenScore(candidates, chosen),
                          ChosenScore(raws, chosen));
        const ScoreCorrector::Observation observation =
            corrector_.BeginObserve(chosen, meter);
        VAOLIB_RETURN_IF_ERROR(objects_[chosen]->Iterate());
        CommitDecision(&trace);
        corrector_.CommitObserve(observation, &outcome_.stats);
        VAOLIB_RETURN_IF_ERROR(ObserveIterate(chosen));
        touched_[chosen] = true;
        ++outcome_.stats.greedy_iterations;
        if (++outcome_.stats.iterations > options_.max_total_iterations) {
          return Status::NotConverged(
              "MIN/MAX exceeded max_total_iterations");
        }
        return Status::OK();
      }

      // Batch cycle (kBatchGreedy with batch_k > 1): the top-K candidates
      // refine together through the lockstep kernels.
      std::vector<double> scores;
      std::vector<double> raw_scores;
      scores.reserve(picks.size());
      raw_scores.reserve(picks.size());
      std::vector<ScoreCorrector::Observation> observations;
      observations.reserve(picks.size());
      for (const std::size_t i : picks) {
        scores.push_back(ChosenScore(candidates, i));
        raw_scores.push_back(ChosenScore(raws, i));
        observations.push_back(corrector_.BeginObserve(i, nullptr));
      }
      vao::BatchIterateOutcome batch_outcome;
      VAOLIB_RETURN_IF_ERROR(IterateChosenBatch(name(), "search", objects_,
                                                picks, scores, raw_scores,
                                                meter, &batch_outcome));
      for (std::size_t j = 0; j < picks.size(); ++j) {
        const std::size_t i = picks[j];
        corrector_.CommitObserveCost(
            observations[j], static_cast<double>(batch_outcome.spent[j]),
            &outcome_.stats);
        VAOLIB_RETURN_IF_ERROR(ObserveIterate(i));
        touched_[i] = true;
        ++outcome_.stats.greedy_iterations;
      }
      outcome_.stats.iterations += picks.size();
      if (outcome_.stats.iterations > options_.max_total_iterations) {
        return Status::NotConverged("MIN/MAX exceeded max_total_iterations");
      }
      return Status::OK();
    }

    case Phase::kFinalize: {
      // Refine the winner to the precision constraint. Its stopping
      // condition implies width < minWidth <= epsilon, so this always
      // terminates (a stalled winner is quarantined with sound-but-wider
      // bounds instead).
      vao::ResultObject* winner = objects_[outcome_.winner_index];
      if (winner->bounds().Width() > options_.epsilon &&
          !EffectivelyConverged(outcome_.winner_index)) {
        DecisionCapture trace =
            BeginDecision(name(), "finalize", outcome_.winner_index, *winner,
                          meter, 0.0, 0.0);
        const ScoreCorrector::Observation observation =
            corrector_.BeginObserve(outcome_.winner_index, meter);
        VAOLIB_RETURN_IF_ERROR(winner->Iterate());
        CommitDecision(&trace);
        corrector_.CommitObserve(observation, &outcome_.stats);
        VAOLIB_RETURN_IF_ERROR(ObserveIterate(outcome_.winner_index));
        touched_[outcome_.winner_index] = true;
        ++outcome_.stats.finalize_iterations;
        if (++outcome_.stats.iterations > options_.max_total_iterations) {
          return Status::NotConverged(
              "MIN/MAX exceeded max_total_iterations");
        }
        return Status::OK();
      }
      Finish();
      return Status::OK();
    }
  }
  return Status::Internal("MIN/MAX task in unknown phase");
}

void MinMaxIterationTask::Finish() {
  outcome_.winner_bounds = objects_[outcome_.winner_index]->bounds();
  outcome_.stats.objects_touched = 0;
  for (const bool t : touched_) {
    if (t) ++outcome_.stats.objects_touched;
  }
  outcome_.stats.stalled_objects = 0;
  for (const StallGuard& guard : stall_) {
    if (guard.stalled()) ++outcome_.stats.stalled_objects;
  }
  outcome_.precision_degraded = outcome_.stats.stalled_objects > 0;
  outcome_.converged = true;
  MarkDone(true);
}

double MinMaxIterationTask::CurrentUncertainty() const {
  if (Done()) return 0.0;
  if (phase_ == Phase::kFinalize) {
    return objects_[outcome_.winner_index]->bounds().Width();
  }
  // Envelope width of the candidate set in max space: how much higher than
  // the best proven lower bound the true extreme could still be.
  double lo = -std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  if (alive_.empty()) {
    for (std::size_t i = 0; i < objects_.size(); ++i) {
      const Bounds b = ViewOf(i);
      lo = std::max(lo, b.lo);
      hi = std::max(hi, b.hi);
    }
  } else {
    for (const std::size_t i : alive_) {
      const Bounds b = ViewOf(i);
      lo = std::max(lo, b.lo);
      hi = std::max(hi, b.hi);
    }
  }
  return std::max(0.0, hi - lo);
}

MinMaxOutcome MinMaxIterationTask::Snapshot() const {
  if (Done()) return outcome_;

  MinMaxOutcome partial = outcome_;
  partial.converged = false;
  partial.stats.objects_touched = 0;
  for (const bool t : touched_) {
    if (t) ++partial.stats.objects_touched;
  }
  partial.stats.stalled_objects = 0;
  for (const StallGuard& guard : stall_) {
    if (guard.stalled()) ++partial.stats.stalled_objects;
  }
  partial.precision_degraded = partial.stats.stalled_objects > 0;

  if (phase_ == Phase::kFinalize) {
    // Membership is settled; only the winner's width is still open.
    partial.winner_bounds = objects_[partial.winner_index]->bounds();
    return partial;
  }

  // Best current guess plus a sound envelope: the true extreme value lies in
  // [max lo, max hi] over the surviving candidates (in max space) -- the
  // guess's own bounds could exclude it, the envelope cannot.
  std::vector<std::size_t> all;
  const std::vector<std::size_t>* candidates = &alive_;
  if (alive_.empty()) {
    all.resize(objects_.size());
    std::iota(all.begin(), all.end(), std::size_t{0});
    candidates = &all;
  }
  std::size_t guess = candidates->front();
  double lo = -std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const std::size_t i : *candidates) {
    const Bounds b = ViewOf(i);
    if (b.hi > ViewOf(guess).hi) guess = i;
    lo = std::max(lo, b.lo);
    hi = std::max(hi, b.hi);
  }
  partial.winner_index = guess;
  partial.winner_bounds = Unview(Bounds(lo, hi), options_.kind);
  return partial;
}

// ---------------------------------------------------------------------------
// SumAveIterationTask
// ---------------------------------------------------------------------------

SumAveIterationTask::SumAveIterationTask(
    const SumAveOptions& options,
    const std::vector<vao::ResultObject*>& objects,
    std::vector<double> weights,
    std::unique_ptr<IterationStrategy> strategy)
    : options_(options),
      objects_(objects),
      weights_(std::move(weights)),
      strategy_(std::move(strategy)),
      corrector_(options_, objects_),
      stall_(objects.size()),
      touched_(objects.size(), false) {}

Result<std::unique_ptr<SumAveIterationTask>> SumAveIterationTask::Create(
    const SumAveOptions& options,
    const std::vector<vao::ResultObject*>& objects,
    std::vector<double> weights) {
  VAOLIB_RETURN_IF_ERROR(
      ValidateSumAveInputs(objects, weights, options.epsilon));
  VAOLIB_ASSIGN_OR_RETURN(auto strategy,
                          MakeStrategy(options.strategy, options.rng));
  return std::unique_ptr<SumAveIterationTask>(new SumAveIterationTask(
      options, objects, std::move(weights), std::move(strategy)));
}

Bounds SumAveIterationTask::ExactSum() const {
  // Compensated summation: the incremental sum_ updates drift by one
  // rounding error per applied iterate, and this full re-walk is what
  // re-anchors them, so it must not itself lose low-order bits (large-mean /
  // tiny-variance populations cancel catastrophically under naive +=).
  NeumaierSum lo;
  NeumaierSum hi;
  for (std::size_t i = 0; i < objects_.size(); ++i) {
    const Bounds b = objects_[i]->bounds();
    lo.Add(weights_[i] * b.lo);
    hi.Add(weights_[i] * b.hi);
  }
  return Bounds(lo.Sum(), hi.Sum());
}

Status SumAveIterationTask::ApplyIterate(std::size_t chosen, WorkMeter* meter,
                                         const char* phase, double score,
                                         double raw_score) {
  // Incrementally maintained output interval: subtract the object's old
  // weighted contribution and add the new one, so each round is O(1) on the
  // interval itself.
  const Bounds before = objects_[chosen]->bounds();
  DecisionCapture trace = BeginDecision(name(), phase, chosen,
                                        *objects_[chosen], meter, score,
                                        raw_score);
  const ScoreCorrector::Observation observation =
      corrector_.BeginObserve(chosen, meter);
  VAOLIB_RETURN_IF_ERROR(objects_[chosen]->Iterate());
  CommitDecision(&trace);
  corrector_.CommitObserve(observation, &outcome_.stats);
  VAOLIB_RETURN_IF_ERROR(ValidateObjectBounds(*objects_[chosen], "SUM/AVE"));
  const Bounds after = objects_[chosen]->bounds();
  sum_.lo += weights_[chosen] * (after.lo - before.lo);
  sum_.hi += weights_[chosen] * (after.hi - before.hi);
  touched_[chosen] = true;
  stall_[chosen].Observe(after.Width());
  return Status::OK();
}

Status SumAveIterationTask::StepImpl(WorkMeter* meter) {
  switch (phase_) {
    case Phase::kCoarse: {
      std::vector<std::uint64_t> coarse_iterations;
      VAOLIB_RETURN_IF_ERROR(ParallelCoarseConverge(
          objects_, options_.threads, options_.coarse_width,
          options_.coarse_max_steps, &coarse_iterations));
      for (std::size_t i = 0; i < coarse_iterations.size(); ++i) {
        outcome_.stats.iterations += coarse_iterations[i];
        outcome_.stats.coarse_iterations += coarse_iterations[i];
        if (coarse_iterations[i] > 0) touched_[i] = true;
      }
      sum_ = ExactSum();
      // The lazy heap caches each object's score at push time, which is
      // only sound while scores depend on the object alone. The corrected
      // strategies re-derive scores from live history/sentinel state every
      // cycle, so they always take the O(N) scan path.
      if (options_.use_heap_index &&
          (options_.strategy == StrategyKind::kGreedy ||
           options_.strategy == StrategyKind::kBatchGreedy)) {
        heap_.Reset(objects_.size());
        for (std::size_t i = 0; i < objects_.size(); ++i) {
          if (weights_[i] > 0.0 && !objects_[i]->AtStoppingCondition()) {
            heap_.Update(i, GreedyScore(*objects_[i], weights_[i]));
          }
        }
        phase_ = Phase::kHeapScan;
      } else {
        phase_ = Phase::kScan;
      }
      return Status::OK();
    }

    case Phase::kScan:
      return StepScan(meter);
    case Phase::kHeapScan:
      return StepHeap(meter);
  }
  return Status::Internal("SUM/AVE task in unknown phase");
}

Status SumAveIterationTask::StepScan(WorkMeter* meter) {
  if (!(sum_.Width() > options_.epsilon)) {
    Finish();
    return Status::OK();
  }

  // Candidates: objects that may still tighten. Stalled objects are
  // quarantined from the set; their frozen (still sound) contribution
  // remains in the sum.
  std::vector<std::size_t> iterable;
  for (std::size_t i = 0; i < objects_.size(); ++i) {
    if (!objects_[i]->AtStoppingCondition() && !stall_[i].stalled() &&
        weights_[i] > 0.0) {
      iterable.push_back(i);
    }
  }
  if (iterable.empty()) {
    outcome_.limited_by_min_width = true;
    Finish();
    return Status::OK();
  }

  ++outcome_.stats.choose_steps;
  if (meter != nullptr) {
    meter->Charge(WorkKind::kChooseIter, iterable.size());
  }

  // Sentinel probing: pending correlation-group probes pre-empt the greedy
  // pick (kSentinelGreedy only; NextProbe is a no-op otherwise).
  std::size_t probe = 0;
  if (corrector_.NextProbe(iterable, &probe)) {
    VAOLIB_RETURN_IF_ERROR(ApplyIterate(probe, meter, "sentinel", 0.0, 0.0));
    ++outcome_.stats.greedy_iterations;
    if (++outcome_.stats.iterations > options_.max_total_iterations) {
      return Status::NotConverged("SUM/AVE exceeded max_total_iterations");
    }
    return Status::OK();
  }

  std::vector<IterationCandidate> candidates;
  std::vector<IterationCandidate> raw_candidates;
  candidates.reserve(iterable.size());
  if (strategy_->WantsScores()) {
    // The paper's heuristic: estimated weighted error reduction
    // w_i * [(estL - L) + (H - estH)] per estimated CPU cycle; the widest
    // actual weighted width is the no-predicted-progress fallback.
    raw_candidates.reserve(iterable.size());
    for (const std::size_t i : iterable) {
      const double raw_benefit = SumReduction(*objects_[i], weights_[i]);
      const double raw_cost = EstCostOf(*objects_[i]);
      double benefit = raw_benefit;
      double cost = raw_cost;
      if (corrector_.correcting()) {
        const Bounds cur = objects_[i]->bounds();
        const ScoreCorrector::Corrected corrected =
            corrector_.Correct(i, cur, objects_[i]->est_bounds(), raw_cost);
        if (corrected.changed) {
          cost = corrected.cost;
          benefit = std::max(0.0, weights_[i] * ((corrected.est.lo - cur.lo) +
                                                 (cur.hi - corrected.est.hi)));
        }
      }
      const double width = weights_[i] * objects_[i]->bounds().Width();
      candidates.push_back(IterationCandidate{i, benefit, cost, width});
      raw_candidates.push_back(
          IterationCandidate{i, raw_benefit, raw_cost, width});
    }
  } else {
    for (const std::size_t i : iterable) {
      candidates.push_back(IterationCandidate{i, 0.0, 1.0, 0.0});
    }
  }
  const std::vector<IterationCandidate>& raws =
      raw_candidates.empty() ? candidates : raw_candidates;
  std::vector<std::size_t> picks;
  strategy_->ChooseBatch(candidates, CycleBatchK(options_), &picks);

  if (picks.size() == 1) {
    const std::size_t chosen = picks.front();
    VAOLIB_RETURN_IF_ERROR(ApplyIterate(chosen, meter, "scan",
                                        ChosenScore(candidates, chosen),
                                        ChosenScore(raws, chosen)));
    ++outcome_.stats.greedy_iterations;
    if (++outcome_.stats.iterations > options_.max_total_iterations) {
      return Status::NotConverged("SUM/AVE exceeded max_total_iterations");
    }
    return Status::OK();
  }

  std::vector<double> scores;
  std::vector<double> raw_scores;
  scores.reserve(picks.size());
  raw_scores.reserve(picks.size());
  for (const std::size_t i : picks) {
    scores.push_back(ChosenScore(candidates, i));
    raw_scores.push_back(ChosenScore(raws, i));
  }
  VAOLIB_RETURN_IF_ERROR(
      ApplyIterateBatch(picks, scores, raw_scores, meter, "scan"));
  outcome_.stats.greedy_iterations += picks.size();
  outcome_.stats.iterations += picks.size();
  if (outcome_.stats.iterations > options_.max_total_iterations) {
    return Status::NotConverged("SUM/AVE exceeded max_total_iterations");
  }
  return Status::OK();
}

Status SumAveIterationTask::ApplyIterateBatch(
    const std::vector<std::size_t>& chosen, const std::vector<double>& scores,
    const std::vector<double>& raw_scores, WorkMeter* meter,
    const char* phase) {
  // Batch form of ApplyIterate: one lockstep dispatch, then the same
  // incremental interval maintenance per object.
  std::vector<Bounds> before;
  before.reserve(chosen.size());
  std::vector<ScoreCorrector::Observation> observations;
  observations.reserve(chosen.size());
  for (const std::size_t i : chosen) {
    before.push_back(objects_[i]->bounds());
    observations.push_back(corrector_.BeginObserve(i, nullptr));
  }
  vao::BatchIterateOutcome batch_outcome;
  VAOLIB_RETURN_IF_ERROR(IterateChosenBatch(name(), phase, objects_, chosen,
                                            scores, raw_scores, meter,
                                            &batch_outcome));
  for (std::size_t j = 0; j < chosen.size(); ++j) {
    const std::size_t i = chosen[j];
    corrector_.CommitObserveCost(observations[j],
                                 static_cast<double>(batch_outcome.spent[j]),
                                 &outcome_.stats);
    VAOLIB_RETURN_IF_ERROR(ValidateObjectBounds(*objects_[i], "SUM/AVE"));
    const Bounds after = objects_[i]->bounds();
    sum_.lo += weights_[i] * (after.lo - before[j].lo);
    sum_.hi += weights_[i] * (after.hi - before[j].hi);
    touched_[i] = true;
    stall_[i].Observe(after.Width());
  }
  return Status::OK();
}

Status SumAveIterationTask::StepHeap(WorkMeter* meter) {
  if (!(sum_.Width() > options_.epsilon)) {
    Finish();
    return Status::OK();
  }

  // Pop up to batch_k best-scored objects for this cycle (one for the
  // scalar strategies). Each pop-plus-push is O(log N) chooseIter work.
  const std::size_t batch_k = CycleBatchK(options_);
  std::vector<std::size_t> picks;
  std::vector<double> scores;
  std::size_t chosen = 0;
  double score = 0.0;
  while (picks.size() < batch_k && heap_.PopBest(&chosen, &score)) {
    picks.push_back(chosen);
    scores.push_back(score);
    ++outcome_.stats.choose_steps;
    if (meter != nullptr) {
      meter->Charge(WorkKind::kChooseIter, 2 * Log2Ceil(objects_.size()));
    }
  }
  if (picks.empty()) {
    outcome_.limited_by_min_width = true;
    Finish();
    return Status::OK();
  }

  if (picks.size() == 1) {
    VAOLIB_RETURN_IF_ERROR(ApplyIterate(picks.front(), meter, "heap",
                                        scores.front(), scores.front()));
  } else {
    VAOLIB_RETURN_IF_ERROR(
        ApplyIterateBatch(picks, scores, scores, meter, "heap"));
  }
  // Stalled objects simply stop being re-pushed, so their (sound, frozen)
  // contribution stays in the sum.
  for (const std::size_t i : picks) {
    if (!objects_[i]->AtStoppingCondition() && !stall_[i].stalled()) {
      heap_.Update(i, GreedyScore(*objects_[i], weights_[i]));
    }
  }

  outcome_.stats.greedy_iterations += picks.size();
  outcome_.stats.iterations += picks.size();
  if (outcome_.stats.iterations > options_.max_total_iterations) {
    return Status::NotConverged("SUM/AVE exceeded max_total_iterations");
  }
  return Status::OK();
}

void SumAveIterationTask::Finish() {
  // Recompute exactly to shed accumulated floating-point drift.
  outcome_.sum_bounds = ExactSum();
  outcome_.stats.objects_touched = 0;
  for (const bool t : touched_) {
    if (t) ++outcome_.stats.objects_touched;
  }
  outcome_.stats.stalled_objects = 0;
  for (const StallGuard& guard : stall_) {
    if (guard.stalled()) ++outcome_.stats.stalled_objects;
  }
  outcome_.converged = true;
  MarkDone(true);
}

double SumAveIterationTask::CurrentUncertainty() const {
  if (Done()) return 0.0;
  if (phase_ == Phase::kCoarse) return ExactSum().Width();
  return sum_.Width();
}

SumOutcome SumAveIterationTask::Snapshot() const {
  if (Done()) return outcome_;

  SumOutcome partial = outcome_;
  partial.converged = false;
  partial.sum_bounds = ExactSum();
  partial.stats.objects_touched = 0;
  for (const bool t : touched_) {
    if (t) ++partial.stats.objects_touched;
  }
  partial.stats.stalled_objects = 0;
  for (const StallGuard& guard : stall_) {
    if (guard.stalled()) ++partial.stats.stalled_objects;
  }
  return partial;
}

// ---------------------------------------------------------------------------
// TopKIterationTask
// ---------------------------------------------------------------------------

TopKIterationTask::TopKIterationTask(
    const TopKOptions& options,
    const std::vector<vao::ResultObject*>& objects,
    std::unique_ptr<IterationStrategy> strategy)
    : options_(options),
      objects_(objects),
      strategy_(std::move(strategy)),
      corrector_(options_, objects_),
      stall_(objects.size()),
      touched_(objects.size(), false),
      order_(objects.size()) {
  std::iota(order_.begin(), order_.end(), std::size_t{0});
}

Result<std::unique_ptr<TopKIterationTask>> TopKIterationTask::Create(
    const TopKOptions& options,
    const std::vector<vao::ResultObject*>& objects) {
  VAOLIB_RETURN_IF_ERROR(
      ValidateTopKInputs(objects, options.k, options.epsilon));
  VAOLIB_ASSIGN_OR_RETURN(auto strategy,
                          MakeStrategy(options.strategy, options.rng));
  return std::unique_ptr<TopKIterationTask>(
      new TopKIterationTask(options, objects, std::move(strategy)));
}

Bounds TopKIterationTask::ViewOf(std::size_t i) const {
  return View(objects_[i]->bounds(), options_.kind);
}

Bounds TopKIterationTask::EstViewOf(std::size_t i) const {
  return View(objects_[i]->est_bounds(), options_.kind);
}

bool TopKIterationTask::EffectivelyConverged(std::size_t i) const {
  return objects_[i]->AtStoppingCondition() || stall_[i].stalled();
}

Status TopKIterationTask::IterateOne(std::size_t i,
                                     std::uint64_t* phase_counter,
                                     WorkMeter* meter, const char* phase,
                                     double score, double raw_score) {
  DecisionCapture trace =
      BeginDecision(name(), phase, i, *objects_[i], meter, score, raw_score);
  const ScoreCorrector::Observation observation =
      corrector_.BeginObserve(i, meter);
  VAOLIB_RETURN_IF_ERROR(objects_[i]->Iterate());
  CommitDecision(&trace);
  corrector_.CommitObserve(observation, &outcome_.stats);
  VAOLIB_RETURN_IF_ERROR(ValidateObjectBounds(*objects_[i], "TOP-K"));
  stall_[i].Observe(objects_[i]->bounds().Width());
  touched_[i] = true;
  ++*phase_counter;
  if (++outcome_.stats.iterations > options_.max_total_iterations) {
    return Status::NotConverged("TOP-K exceeded max_total_iterations");
  }
  return Status::OK();
}

Status TopKIterationTask::StepImpl(WorkMeter* meter) {
  const std::size_t n = objects_.size();
  const std::size_t k = options_.k;

  switch (phase_) {
    case Phase::kCoarse: {
      std::vector<std::uint64_t> coarse_iterations;
      VAOLIB_RETURN_IF_ERROR(ParallelCoarseConverge(
          objects_, options_.threads, options_.coarse_width,
          options_.coarse_max_steps, &coarse_iterations));
      for (std::size_t i = 0; i < coarse_iterations.size(); ++i) {
        outcome_.stats.iterations += coarse_iterations[i];
        outcome_.stats.coarse_iterations += coarse_iterations[i];
        if (coarse_iterations[i] > 0) touched_[i] = true;
      }
      if (outcome_.stats.iterations > options_.max_total_iterations) {
        return Status::NotConverged("TOP-K exceeded max_total_iterations");
      }
      phase_ = Phase::kBoundary;
      return Status::OK();
    }

    case Phase::kBoundary: {
      // Guess the top-k set: the k candidates with the highest upper bounds.
      std::partial_sort(order_.begin(),
                        order_.begin() + static_cast<std::ptrdiff_t>(k),
                        order_.end(), [&](std::size_t a, std::size_t b) {
                          return ViewOf(a).hi > ViewOf(b).hi;
                        });
      members_.assign(order_.begin(),
                      order_.begin() + static_cast<std::ptrdiff_t>(k));

      if (k == n) {  // everything is selected; only refinement remains
        phase_ = Phase::kFinalize;
        return Status::OK();
      }

      // Selection boundary: members must end strictly above all outsiders.
      double boundary_lo = std::numeric_limits<double>::infinity();
      for (const std::size_t i : members_) {
        boundary_lo = std::min(boundary_lo, ViewOf(i).lo);
      }
      double boundary_hi = -std::numeric_limits<double>::infinity();
      for (std::size_t idx = k; idx < n; ++idx) {
        boundary_hi = std::max(boundary_hi, ViewOf(order_[idx]).hi);
      }
      if (boundary_lo > boundary_hi) {  // fully separated
        phase_ = Phase::kFinalize;
        return Status::OK();
      }

      // Conflicted objects: members reachable from below, outsiders
      // reaching into the member zone.
      std::vector<std::size_t> conflicted;
      for (const std::size_t i : members_) {
        if (ViewOf(i).lo <= boundary_hi) conflicted.push_back(i);
      }
      for (std::size_t idx = k; idx < n; ++idx) {
        if (ViewOf(order_[idx]).hi >= boundary_lo) {
          conflicted.push_back(order_[idx]);
        }
      }

      std::vector<std::size_t> iterable;
      for (const std::size_t i : conflicted) {
        if (!EffectivelyConverged(i)) iterable.push_back(i);
      }
      if (iterable.empty()) {
        // Everything straddling the boundary is converged: membership of
        // the last slots is tie-determined (termination case 2 of
        // Section 5.1).
        outcome_.tie = true;
        phase_ = Phase::kFinalize;
        return Status::OK();
      }

      ++outcome_.stats.choose_steps;
      if (meter != nullptr) {
        meter->Charge(WorkKind::kChooseIter, conflicted.size());
      }

      // Sentinel probing: pending correlation-group probes pre-empt the
      // greedy pick (kSentinelGreedy only).
      std::size_t probe = 0;
      if (corrector_.NextProbe(iterable, &probe)) {
        return IterateOne(probe, &outcome_.stats.greedy_iterations, meter,
                          "sentinel", 0.0, 0.0);
      }

      std::vector<IterationCandidate> candidates;
      std::vector<IterationCandidate> raw_candidates;
      candidates.reserve(iterable.size());
      if (strategy_->WantsScores()) {
        // Greedy: the largest predicted cross-boundary overlap reduction
        // per estimated CPU cycle.
        const auto member_set_end =
            order_.begin() + static_cast<std::ptrdiff_t>(k);
        const auto gain_of = [&](bool is_member, const Bounds& cur,
                                 const Bounds& est) {
          double gain;
          if (is_member) {
            // Raising a member's lower bound toward the outsiders' ceiling.
            gain = std::min(boundary_hi - cur.lo, est.lo - cur.lo);
          } else {
            // Lowering an outsider's upper bound toward the members' floor.
            gain = std::min(cur.hi - boundary_lo, cur.hi - est.hi);
          }
          return std::max(gain, 0.0);
        };
        raw_candidates.reserve(iterable.size());
        for (const std::size_t i : iterable) {
          const bool is_member =
              std::find(order_.begin(), member_set_end, i) != member_set_end;
          const Bounds cur = ViewOf(i);
          const double raw_gain = gain_of(is_member, cur, EstViewOf(i));
          const double raw_cost = EstCostOf(*objects_[i]);
          double gain = raw_gain;
          double cost = raw_cost;
          if (corrector_.correcting()) {
            const ScoreCorrector::Corrected corrected = corrector_.Correct(
                i, objects_[i]->bounds(), objects_[i]->est_bounds(),
                raw_cost);
            if (corrected.changed) {
              cost = corrected.cost;
              gain = gain_of(is_member, cur,
                             View(corrected.est, options_.kind));
            }
          }
          candidates.push_back(
              IterationCandidate{i, gain, cost, ViewOf(i).Width()});
          raw_candidates.push_back(
              IterationCandidate{i, raw_gain, raw_cost, ViewOf(i).Width()});
        }
      } else {
        for (const std::size_t i : iterable) {
          candidates.push_back(IterationCandidate{i, 0.0, 1.0, 0.0});
        }
      }
      const std::vector<IterationCandidate>& raws =
          raw_candidates.empty() ? candidates : raw_candidates;
      std::vector<std::size_t> picks;
      strategy_->ChooseBatch(candidates, CycleBatchK(options_), &picks);
      if (picks.size() == 1) {
        const std::size_t chosen = picks.front();
        return IterateOne(chosen, &outcome_.stats.greedy_iterations, meter,
                          "boundary", ChosenScore(candidates, chosen),
                          ChosenScore(raws, chosen));
      }

      std::vector<double> scores;
      std::vector<double> raw_scores;
      scores.reserve(picks.size());
      raw_scores.reserve(picks.size());
      std::vector<ScoreCorrector::Observation> observations;
      observations.reserve(picks.size());
      for (const std::size_t i : picks) {
        scores.push_back(ChosenScore(candidates, i));
        raw_scores.push_back(ChosenScore(raws, i));
        observations.push_back(corrector_.BeginObserve(i, nullptr));
      }
      vao::BatchIterateOutcome batch_outcome;
      VAOLIB_RETURN_IF_ERROR(IterateChosenBatch(name(), "boundary", objects_,
                                                picks, scores, raw_scores,
                                                meter, &batch_outcome));
      for (std::size_t j = 0; j < picks.size(); ++j) {
        const std::size_t i = picks[j];
        corrector_.CommitObserveCost(
            observations[j], static_cast<double>(batch_outcome.spent[j]),
            &outcome_.stats);
        VAOLIB_RETURN_IF_ERROR(ValidateObjectBounds(*objects_[i], "TOP-K"));
        stall_[i].Observe(objects_[i]->bounds().Width());
        touched_[i] = true;
        ++outcome_.stats.greedy_iterations;
      }
      outcome_.stats.iterations += picks.size();
      if (outcome_.stats.iterations > options_.max_total_iterations) {
        return Status::NotConverged("TOP-K exceeded max_total_iterations");
      }
      return Status::OK();
    }

    case Phase::kFinalize: {
      // Refine every selected member to the precision constraint.
      while (finalize_cursor_ < members_.size()) {
        const std::size_t i = members_[finalize_cursor_];
        if (objects_[i]->bounds().Width() > options_.epsilon &&
            !EffectivelyConverged(i)) {
          return IterateOne(i, &outcome_.stats.finalize_iterations, meter,
                            "finalize", 0.0, 0.0);
        }
        ++finalize_cursor_;
      }
      Finish();
      return Status::OK();
    }
  }
  return Status::Internal("TOP-K task in unknown phase");
}

void TopKIterationTask::Finish() {
  // Order winners by extremity (descending midpoint in max space).
  std::vector<std::size_t> winners = members_;
  std::sort(winners.begin(), winners.end(),
            [&](std::size_t a, std::size_t b) {
              return ViewOf(a).Mid() > ViewOf(b).Mid();
            });
  outcome_.winners.clear();
  outcome_.winner_bounds.clear();
  for (const std::size_t i : winners) {
    outcome_.winners.push_back(i);
    outcome_.winner_bounds.push_back(objects_[i]->bounds());
  }
  outcome_.stats.objects_touched = 0;
  for (const bool t : touched_) {
    if (t) ++outcome_.stats.objects_touched;
  }
  outcome_.stats.stalled_objects = 0;
  for (const StallGuard& guard : stall_) {
    if (guard.stalled()) ++outcome_.stats.stalled_objects;
  }
  outcome_.precision_degraded = outcome_.stats.stalled_objects > 0;
  outcome_.converged = true;
  MarkDone(true);
}

double TopKIterationTask::CurrentUncertainty() const {
  if (Done()) return 0.0;
  const std::size_t n = objects_.size();
  const std::size_t k = options_.k;

  // Current top-k guess by upper bound (order_ untouched: this is const).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(k),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      return ViewOf(a).hi > ViewOf(b).hi;
                    });

  // Cross-boundary overlap still to resolve, plus member widths still above
  // the precision constraint.
  double uncertainty = 0.0;
  if (k < n) {
    double boundary_lo = std::numeric_limits<double>::infinity();
    for (std::size_t idx = 0; idx < k; ++idx) {
      boundary_lo = std::min(boundary_lo, ViewOf(order[idx]).lo);
    }
    double boundary_hi = -std::numeric_limits<double>::infinity();
    for (std::size_t idx = k; idx < n; ++idx) {
      boundary_hi = std::max(boundary_hi, ViewOf(order[idx]).hi);
    }
    uncertainty += std::max(0.0, boundary_hi - boundary_lo);
  }
  for (std::size_t idx = 0; idx < k; ++idx) {
    uncertainty += std::max(
        0.0, objects_[order[idx]]->bounds().Width() - options_.epsilon);
  }
  return uncertainty;
}

TopKOutcome TopKIterationTask::Snapshot() const {
  if (Done()) return outcome_;

  TopKOutcome partial = outcome_;
  partial.converged = false;

  // Best current guess at the member set: the settled members_ when the
  // boundary phase has produced one, else the current top-k by upper bound.
  std::vector<std::size_t> guess = members_;
  if (guess.empty()) {
    std::vector<std::size_t> order(objects_.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::partial_sort(
        order.begin(), order.begin() + static_cast<std::ptrdiff_t>(options_.k),
        order.end(), [&](std::size_t a, std::size_t b) {
          return ViewOf(a).hi > ViewOf(b).hi;
        });
    guess.assign(order.begin(),
                 order.begin() + static_cast<std::ptrdiff_t>(options_.k));
  }
  std::sort(guess.begin(), guess.end(), [&](std::size_t a, std::size_t b) {
    return ViewOf(a).Mid() > ViewOf(b).Mid();
  });
  partial.winners.clear();
  partial.winner_bounds.clear();
  for (const std::size_t i : guess) {
    partial.winners.push_back(i);
    partial.winner_bounds.push_back(objects_[i]->bounds());
  }
  partial.stats.objects_touched = 0;
  for (const bool t : touched_) {
    if (t) ++partial.stats.objects_touched;
  }
  partial.stats.stalled_objects = 0;
  for (const StallGuard& guard : stall_) {
    if (guard.stalled()) ++partial.stats.stalled_objects;
  }
  partial.precision_degraded = partial.stats.stalled_objects > 0;
  return partial;
}

// ---------------------------------------------------------------------------
// SingleObjectDecisionTask
// ---------------------------------------------------------------------------

Result<std::unique_ptr<SingleObjectDecisionTask>>
SingleObjectDecisionTask::Create(vao::ResultObject* object, const char* who,
                                 UndecidedFn undecided) {
  VAOLIB_RETURN_IF_ERROR(ValidateObjectBounds(*object, who));
  return std::unique_ptr<SingleObjectDecisionTask>(
      new SingleObjectDecisionTask(object, who, std::move(undecided)));
}

Status SingleObjectDecisionTask::StepImpl(WorkMeter* meter) {
  // One body of the historical DriveWhileUndecided loop: iterate while the
  // bounds still straddle the predicate and the stopping condition has not
  // been reached, validating before every decision (NaN/Inf or inverted
  // bounds must surface as NumericError, not flow into comparisons).
  if (undecided_(object_->bounds()) && !object_->AtStoppingCondition()) {
    DecisionCapture trace =
        BeginDecision(name(), "decide", 0, *object_, meter, 0.0, 0.0);
    VAOLIB_RETURN_IF_ERROR(object_->Iterate());
    CommitDecision(&trace);
    ++iterations_;
    VAOLIB_RETURN_IF_ERROR(ValidateObjectBounds(*object_, who_));
    if (guard_.Observe(object_->bounds().Width())) {
      obs::RecordInstant("stall", name(), obs::TraceDetail::kCoarse);
      obs::FlightRecorder::Global().DumpIfArmed("predicate-stall");
      return Status::ResourceExhausted(
          std::string(who_) +
          ": refinement stalled before deciding the predicate (bounds "
          "stopped tightening above minWidth)");
    }
    return Status::OK();
  }
  MarkDone(true);
  return Status::OK();
}

double SingleObjectDecisionTask::CurrentUncertainty() const {
  if (Done()) return 0.0;
  return object_->bounds().Width();
}

// ---------------------------------------------------------------------------
// MultiRowDecisionTask
// ---------------------------------------------------------------------------

MultiRowDecisionTask::MultiRowDecisionTask(
    std::vector<vao::ResultObject*> objects, const char* who,
    UndecidedFn undecided, int threads)
    : objects_(std::move(objects)),
      who_(who),
      undecided_(std::move(undecided)),
      threads_(threads),
      stall_(objects_.size()),
      settled_(objects_.size(), false),
      touched_(objects_.size(), false) {}

Result<std::unique_ptr<MultiRowDecisionTask>> MultiRowDecisionTask::Create(
    std::vector<vao::ResultObject*> objects, const char* who,
    UndecidedFn undecided, int threads) {
  for (const auto* object : objects) {
    if (object == nullptr) {
      return Status::InvalidArgument(std::string(who) +
                                     " over a null result object");
    }
    VAOLIB_RETURN_IF_ERROR(ValidateObjectBounds(*object, who));
  }
  auto task = std::unique_ptr<MultiRowDecisionTask>(new MultiRowDecisionTask(
      std::move(objects), who, std::move(undecided), threads));
  bool all_settled = true;
  for (std::size_t i = 0; i < task->objects_.size(); ++i) {
    task->Resettle(i);
    all_settled = all_settled && task->settled_[i];
  }
  if (all_settled) {
    task->stats_.objects_touched = 0;
    task->MarkDone(true);
  }
  return task;
}

void MultiRowDecisionTask::Resettle(std::size_t i) {
  settled_[i] = !undecided_(objects_[i]->bounds()) ||
                objects_[i]->AtStoppingCondition() || stall_[i].stalled();
}

Status MultiRowDecisionTask::StepImpl(WorkMeter* meter) {
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < objects_.size(); ++i) {
    // Re-settle before collecting: under a scheduler, other queries' tasks
    // tighten the same shared objects between our steps, so a row may have
    // become decidable (or converged) since we last looked at it.
    if (!settled_[i]) Resettle(i);
    if (!settled_[i]) pending.push_back(i);
  }
  if (pending.empty()) {
    MarkDone(true);
    return Status::OK();
  }

  // One refinement notch for every undecided row, fanned out over the pool.
  // Decision tracing captures the pre-iterate state up front and records
  // after the batch, on this (driving) thread in pending order, so the
  // event sequence is deterministic regardless of how the pool interleaves.
  const bool tracing = obs::DecisionTraceActive();
  // Feedback recording reuses the same pre-captured state; it also runs on
  // the driving thread in pending order, so the history a run leaves behind
  // is identical at every thread count.
  const bool capture_before = tracing || feedback_ != nullptr;
  struct RowBefore {
    Bounds bounds;
    Bounds est;
    double est_cost;
  };
  std::vector<RowBefore> before;
  if (capture_before) {
    before.reserve(pending.size());
    for (const std::size_t i : pending) {
      before.push_back(RowBefore{
          objects_[i]->bounds(), objects_[i]->est_bounds(),
          static_cast<double>(objects_[i]->est_cost())});
    }
  }
  std::vector<vao::ResultObject*> batch;
  batch.reserve(pending.size());
  for (const std::size_t i : pending) batch.push_back(objects_[i]);
  if (threads_ < 2) {
    // Single-threaded: route the notch through the batch execution tier so
    // rows backed by compatible solvers share one lockstep kernel call.
    // Results and work totals are bit-identical to iterating each row, so
    // the thread-count determinism contract is unaffected.
    const vao::BatchIterateOutcome batch_outcome =
        vao::IterateBatch(batch, meter);
    for (const Status& status : batch_outcome.statuses) {
      VAOLIB_RETURN_IF_ERROR(status);
    }
  } else {
    VAOLIB_RETURN_IF_ERROR(vao::StepAll(batch, threads_));
  }

  for (std::size_t p = 0; p < pending.size(); ++p) {
    const std::size_t i = pending[p];
    if (tracing) {
      obs::Decision decision;
      decision.op = name();
      decision.phase = "batch";
      decision.object_index = static_cast<std::uint64_t>(i);
      decision.lo_before = before[p].bounds.lo;
      decision.hi_before = before[p].bounds.hi;
      decision.est_lo = before[p].est.lo;
      decision.est_hi = before[p].est.hi;
      decision.est_cost = before[p].est_cost;
      const Bounds after = objects_[i]->bounds();
      decision.lo_after = after.lo;
      decision.hi_after = after.hi;
      obs::RecordDecision(decision);
    }
    if (feedback_ != nullptr) {
      // Shrink-only observation: per-row cost is unattributable on the
      // threaded path, and a serially-attributed cost would make the
      // recorded history depend on the thread count.
      CostObservation cost_observation;
      cost_observation.est_cost = std::max(before[p].est_cost, 1.0);
      cost_observation.actual_cost = -1.0;
      cost_observation.est_shrink =
          std::max(0.0, before[p].est.lo - before[p].bounds.lo) +
          std::max(0.0, before[p].bounds.hi - before[p].est.hi);
      cost_observation.actual_shrink = std::max(
          0.0, before[p].bounds.Width() - objects_[i]->bounds().Width());
      const std::uint64_t id =
          feedback_ids_ != nullptr && i < feedback_ids_->size()
              ? (*feedback_ids_)[i]
              : static_cast<std::uint64_t>(i);
      feedback_->Record(id, objects_[i]->calibration_kind(),
                        cost_observation);
    }
    VAOLIB_RETURN_IF_ERROR(ValidateObjectBounds(*objects_[i], who_));
    if (!touched_[i]) {
      touched_[i] = true;
      ++stats_.objects_touched;
    }
    ++stats_.iterations;
    ++stats_.greedy_iterations;
    // A stalled row is quarantined, not an error: its frozen bounds stay
    // sound, and the query reports the row as undecidable at this budget.
    if (stall_[i].Observe(objects_[i]->bounds().Width())) {
      ++stats_.stalled_objects;
    }
    Resettle(i);
  }

  bool all_settled = true;
  for (const bool s : settled_) all_settled = all_settled && s;
  if (all_settled) MarkDone(true);
  return Status::OK();
}

double MultiRowDecisionTask::CurrentUncertainty() const {
  if (Done()) return 0.0;
  double unsettled = 0.0;
  for (const bool s : settled_) {
    if (!s) unsettled += 1.0;
  }
  return unsettled;
}

}  // namespace vaolib::operators
