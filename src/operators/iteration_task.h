// Copyright 2026 The vaolib Authors.
// IterationTask: resumable operator work units.
//
// Historically each operator ran a closed convergence loop inside
// Evaluate(). This module turns those loops into explicit state machines
// that expose one loop body at a time through Step(), so a caller -- the
// operator's own Evaluate(), or the engine's cross-query WorkScheduler --
// decides when and how much to refine. A task is always sound to abandon:
// Snapshot() returns the best currently-provable answer with
// `converged = false`, which is how budgeted execution degrades gracefully
// instead of blocking.
//
// Behaviour contract: driving a task with Step() until Done() performs the
// exact same Iterate()/chooseIter sequence (and therefore the same work
// charges, stats, and answers) as the pre-task closed loops did.

#ifndef VAOLIB_OPERATORS_ITERATION_TASK_H_
#define VAOLIB_OPERATORS_ITERATION_TASK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/stall_guard.h"
#include "common/work_meter.h"
#include "operators/iteration_strategy.h"
#include "operators/min_max.h"
#include "operators/operator_base.h"
#include "operators/score_corrector.h"
#include "operators/score_heap.h"
#include "operators/sum_ave.h"
#include "operators/top_k.h"
#include "vao/result_object.h"

namespace vaolib::operators {

/// \brief A resumable unit of operator work. Step() performs one loop body
/// of the underlying operator (at most one Iterate(), except batched
/// multi-row steps); Done() reports completion; the benefit/cost estimates
/// let a scheduler rank tasks globally.
///
/// Estimates are self-calibrating: benefit is the uncertainty reduction the
/// previous Step() achieved (the task's full remaining uncertainty before
/// the first step), cost is the work-unit delta that step charged. Tasks
/// over shared result objects may see their uncertainty shrink between
/// steps when other tasks tighten the same objects; estimates are therefore
/// hints, never soundness-bearing.
class IterationTask {
 public:
  virtual ~IterationTask() = default;

  virtual const char* name() const = 0;

  /// Predicted accuracy gain of the next Step() (>= 0; 0 once Done).
  double EstimatedBenefit() const;
  /// Predicted work units of the next Step() (>= 1).
  double EstimatedCost() const;

  /// Performs one unit of work, charging bookkeeping to \p meter (nullable;
  /// object Iterate() calls charge whatever meter the objects were created
  /// against). An error completes the task unconverged and is sticky:
  /// stepping a Done() task is FailedPrecondition.
  Status Step(WorkMeter* meter);

  /// True once the task finished (converged, exhausted its inputs, or
  /// errored). Done tasks never need another Step().
  bool Done() const { return done_; }

  /// True when Done() and the task completed its work (as opposed to
  /// erroring); budget-abandoned tasks are simply never Done.
  bool Converged() const { return done_ && converged_; }

  /// Owner label for spend attribution (the tenant id in multi-tenant
  /// serving; empty outside it). Purely descriptive: scheduling never
  /// reads it.
  const std::string& owner() const { return owner_; }
  void set_owner(std::string owner) { owner_ = std::move(owner); }

 protected:
  /// One loop body of the operator. Must call MarkDone() when the machine
  /// reaches its terminal state.
  virtual Status StepImpl(WorkMeter* meter) = 0;

  /// Current remaining-uncertainty measure (operator-specific, >= 0,
  /// trending to 0 as the task converges). Feeds the benefit estimate.
  virtual double CurrentUncertainty() const = 0;

  void MarkDone(bool converged) {
    done_ = true;
    converged_ = converged;
  }

 private:
  bool done_ = false;
  bool converged_ = false;
  bool calibrated_ = false;
  double est_benefit_ = 0.0;
  double est_cost_ = 1.0;
  std::string owner_;
};

/// \brief Drives \p task to completion, honouring \p options.budget when
/// \p options.meter is present: once the meter delta since the call began
/// reaches the budget, driving stops early.
///
/// \return true when the task completed, false when the budget ran out
/// first (callers then read a partial answer via the task's Snapshot()).
Result<bool> DriveTask(IterationTask* task, const OperatorOptions& options);

/// \brief Resumable MIN/MAX aggregate (the Section 5.1 loop as a state
/// machine): coarse pre-phase, prune/guess/choose search rounds, winner
/// finalization.
class MinMaxIterationTask : public IterationTask {
 public:
  /// Validates inputs exactly as MinMaxVao::Evaluate() always has.
  /// \p objects must outlive the task.
  static Result<std::unique_ptr<MinMaxIterationTask>> Create(
      const MinMaxOptions& options,
      const std::vector<vao::ResultObject*>& objects);

  const char* name() const override { return "min_max"; }

  /// The final outcome once Done(); before that, a sound partial answer --
  /// the current best guess and an envelope interval guaranteed to contain
  /// the true extreme -- with `converged = false`.
  MinMaxOutcome Snapshot() const;

 protected:
  Status StepImpl(WorkMeter* meter) override;
  double CurrentUncertainty() const override;

 private:
  enum class Phase { kCoarse, kSearch, kFinalize };

  MinMaxIterationTask(const MinMaxOptions& options,
                      const std::vector<vao::ResultObject*>& objects,
                      std::unique_ptr<IterationStrategy> strategy);

  Bounds ViewOf(std::size_t i) const;
  Bounds EstViewOf(std::size_t i) const;
  bool EffectivelyConverged(std::size_t i) const;
  Status ObserveIterate(std::size_t i);
  void Finish();

  MinMaxOptions options_;
  std::vector<vao::ResultObject*> objects_;
  std::unique_ptr<IterationStrategy> strategy_;
  ScoreCorrector corrector_;
  std::vector<StallGuard> stall_;
  std::vector<bool> touched_;
  std::vector<std::size_t> alive_;
  Phase phase_ = Phase::kCoarse;
  MinMaxOutcome outcome_;
};

/// \brief Resumable SUM/AVE aggregate (the Section 5.2 loop as a state
/// machine), covering both the O(N)-scan and the lazy-heap greedy paths.
class SumAveIterationTask : public IterationTask {
 public:
  static Result<std::unique_ptr<SumAveIterationTask>> Create(
      const SumAveOptions& options,
      const std::vector<vao::ResultObject*>& objects,
      std::vector<double> weights);

  const char* name() const override { return "sum_ave"; }

  /// The final outcome once Done(); before that, the current weighted-sum
  /// interval (always sound) with `converged = false`.
  SumOutcome Snapshot() const;

 protected:
  Status StepImpl(WorkMeter* meter) override;
  double CurrentUncertainty() const override;

 private:
  enum class Phase { kCoarse, kScan, kHeapScan };

  SumAveIterationTask(const SumAveOptions& options,
                      const std::vector<vao::ResultObject*>& objects,
                      std::vector<double> weights,
                      std::unique_ptr<IterationStrategy> strategy);

  Status StepScan(WorkMeter* meter);
  Status StepHeap(WorkMeter* meter);
  Status ApplyIterate(std::size_t chosen, WorkMeter* meter, const char* phase,
                      double score, double raw_score);
  Status ApplyIterateBatch(const std::vector<std::size_t>& chosen,
                           const std::vector<double>& scores,
                           const std::vector<double>& raw_scores,
                           WorkMeter* meter, const char* phase);
  Bounds ExactSum() const;
  void Finish();

  SumAveOptions options_;
  std::vector<vao::ResultObject*> objects_;
  std::vector<double> weights_;
  std::unique_ptr<IterationStrategy> strategy_;
  ScoreCorrector corrector_;
  std::vector<StallGuard> stall_;
  std::vector<bool> touched_;
  Bounds sum_;
  ScoreHeap heap_;
  Phase phase_ = Phase::kCoarse;
  SumOutcome outcome_;
};

/// \brief Resumable TOP-K aggregate: boundary-separation rounds, then
/// member finalization.
class TopKIterationTask : public IterationTask {
 public:
  static Result<std::unique_ptr<TopKIterationTask>> Create(
      const TopKOptions& options,
      const std::vector<vao::ResultObject*>& objects);

  const char* name() const override { return "top_k"; }

  /// The final outcome once Done(); before that, the current guessed
  /// member set with each member's (sound) bounds and `converged = false`.
  TopKOutcome Snapshot() const;

 protected:
  Status StepImpl(WorkMeter* meter) override;
  double CurrentUncertainty() const override;

 private:
  enum class Phase { kCoarse, kBoundary, kFinalize };

  TopKIterationTask(const TopKOptions& options,
                    const std::vector<vao::ResultObject*>& objects,
                    std::unique_ptr<IterationStrategy> strategy);

  Bounds ViewOf(std::size_t i) const;
  Bounds EstViewOf(std::size_t i) const;
  bool EffectivelyConverged(std::size_t i) const;
  Status IterateOne(std::size_t i, std::uint64_t* phase_counter,
                    WorkMeter* meter, const char* phase, double score,
                    double raw_score);
  void Finish();

  TopKOptions options_;
  std::vector<vao::ResultObject*> objects_;
  std::unique_ptr<IterationStrategy> strategy_;
  ScoreCorrector corrector_;
  std::vector<StallGuard> stall_;
  std::vector<bool> touched_;
  std::vector<std::size_t> order_;
  std::vector<std::size_t> members_;
  std::size_t finalize_cursor_ = 0;
  Phase phase_ = Phase::kCoarse;
  TopKOutcome outcome_;
};

/// \brief Resumable single-object predicate refinement -- the selection
/// family's DriveWhileUndecided loop as a task. The caller supplies the
/// undecidedness test; decision semantics stay in the selection operators.
class SingleObjectDecisionTask : public IterationTask {
 public:
  /// True while the predicate is still undecided for these bounds.
  using UndecidedFn = std::function<bool(const Bounds&)>;

  /// Validates the object's current bounds (the pre-loop check the
  /// selection operators always made). \p who labels error messages;
  /// \p object must be non-null and outlive the task.
  static Result<std::unique_ptr<SingleObjectDecisionTask>> Create(
      vao::ResultObject* object, const char* who, UndecidedFn undecided);

  const char* name() const override { return "selection"; }

  std::uint64_t iterations() const { return iterations_; }

 protected:
  Status StepImpl(WorkMeter* meter) override;
  double CurrentUncertainty() const override;

 private:
  SingleObjectDecisionTask(vao::ResultObject* object, const char* who,
                           UndecidedFn undecided)
      : object_(object), who_(who), undecided_(std::move(undecided)) {}

  vao::ResultObject* object_;
  const char* who_;
  UndecidedFn undecided_;
  StallGuard guard_;
  std::uint64_t iterations_ = 0;
};

/// \brief Resumable multi-row predicate refinement for scheduled execution:
/// one task drives a whole selection query over per-row result objects.
/// Each Step() gives every still-undecided row exactly one Iterate() --
/// batched on the shared thread pool when `threads > 1` (the per-row
/// Iterate() sequences, and thus all bounds and work totals, are
/// independent of the thread count). Rows whose refinement stalls are
/// quarantined (frozen sound bounds, counted in stats) rather than failing
/// the task.
class MultiRowDecisionTask : public IterationTask {
 public:
  using UndecidedFn = std::function<bool(const Bounds&)>;

  static Result<std::unique_ptr<MultiRowDecisionTask>> Create(
      std::vector<vao::ResultObject*> objects, const char* who,
      UndecidedFn undecided, int threads);

  const char* name() const override { return "selection_rows"; }

  /// Attaches a cost-history store: each refined row's predicted-vs-actual
  /// bound shrink is recorded after every Step(). Only shrink is recorded
  /// (actual per-row cost is unattributable on the threaded path, and
  /// recording it serially-only would make the history depend on the
  /// thread count). \p ids, when non-null, maps row index -> stable object
  /// id; both pointers are borrowed and must outlive the task.
  void SetFeedback(CostFeedback* feedback,
                   const std::vector<std::uint64_t>* ids) {
    feedback_ = feedback;
    feedback_ids_ = ids;
  }

  /// True when row \p i no longer needs refinement (predicate decidable
  /// from bounds, object converged, or quarantined after a stall).
  bool RowSettled(std::size_t i) const { return settled_[i]; }
  bool RowStalled(std::size_t i) const { return stall_[i].stalled(); }

  const OperatorStats& stats() const { return stats_; }

 protected:
  Status StepImpl(WorkMeter* meter) override;
  double CurrentUncertainty() const override;

 private:
  MultiRowDecisionTask(std::vector<vao::ResultObject*> objects,
                       const char* who, UndecidedFn undecided, int threads);

  void Resettle(std::size_t i);

  std::vector<vao::ResultObject*> objects_;
  const char* who_;
  UndecidedFn undecided_;
  int threads_;
  CostFeedback* feedback_ = nullptr;
  const std::vector<std::uint64_t>* feedback_ids_ = nullptr;
  std::vector<StallGuard> stall_;
  std::vector<bool> settled_;
  std::vector<bool> touched_;
  OperatorStats stats_;
};

}  // namespace vaolib::operators

#endif  // VAOLIB_OPERATORS_ITERATION_TASK_H_
