#include "operators/traditional.h"

#include "common/macros.h"

namespace vaolib::operators {

Result<TraditionalExtremeOutcome> TraditionalExtreme(
    const vao::BlackBoxFunction& function,
    const std::vector<std::vector<double>>& rows, ExtremeKind kind,
    WorkMeter* meter) {
  if (rows.empty()) {
    return Status::InvalidArgument("traditional MIN/MAX over empty input");
  }
  TraditionalExtremeOutcome outcome;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    VAOLIB_ASSIGN_OR_RETURN(const double value, function.Call(rows[i], meter));
    const bool better = kind == ExtremeKind::kMax ? value > outcome.value
                                                  : value < outcome.value;
    if (i == 0 || better) {
      outcome.value = value;
      outcome.winner_index = i;
    }
  }
  return outcome;
}

}  // namespace vaolib::operators
