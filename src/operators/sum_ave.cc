#include "operators/sum_ave.h"

#include <algorithm>
#include <numeric>

#include "common/macros.h"
#include "common/stats.h"
#include "operators/iteration_task.h"

namespace vaolib::operators {

Status ValidateSumAveInputs(const std::vector<vao::ResultObject*>& objects,
                            const std::vector<double>& weights,
                            double epsilon) {
  if (objects.empty()) {
    return Status::InvalidArgument("SUM/AVE over an empty object set");
  }
  if (objects.size() != weights.size()) {
    return Status::InvalidArgument("SUM/AVE weights length mismatch");
  }
  for (const auto* object : objects) {
    if (object == nullptr) {
      return Status::InvalidArgument("SUM/AVE over a null result object");
    }
    VAOLIB_RETURN_IF_ERROR(ValidateObjectBounds(*object, "SUM/AVE"));
  }
  for (const double w : weights) {
    if (!(w >= 0.0)) {
      return Status::InvalidArgument("SUM/AVE weights must be nonnegative");
    }
  }
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("precision constraint must be > 0");
  }
  return Status::OK();
}

std::vector<double> SumWeights(std::size_t n) {
  return std::vector<double>(n, 1.0);
}

std::vector<double> AveWeights(std::size_t n) {
  return std::vector<double>(n, n == 0 ? 0.0 : 1.0 / static_cast<double>(n));
}

Result<SumOutcome> SumAveVao::Evaluate(
    const std::vector<vao::ResultObject*>& objects,
    const std::vector<double>& weights) const {
  // The whole convergence loop (scan and heap-indexed paths alike) lives in
  // the resumable task; Evaluate just drives it to completion (or to the
  // work budget, when one is set).
  VAOLIB_ASSIGN_OR_RETURN(
      auto task, SumAveIterationTask::Create(options_, objects, weights));
  VAOLIB_ASSIGN_OR_RETURN(const bool finished,
                          DriveTask(task.get(), options_));
  (void)finished;  // Snapshot() reports convergence itself.
  return task->Snapshot();
}

Result<TraditionalSumOutcome> TraditionalWeightedSum(
    const vao::BlackBoxFunction& function,
    const std::vector<std::vector<double>>& rows,
    const std::vector<double>& weights, WorkMeter* meter) {
  if (rows.size() != weights.size()) {
    return Status::InvalidArgument("traditional SUM weights length mismatch");
  }
  TraditionalSumOutcome outcome;
  NeumaierSum sum;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    VAOLIB_ASSIGN_OR_RETURN(const double value, function.Call(rows[i], meter));
    sum.Add(weights[i] * value);
  }
  outcome.sum = sum.Sum();
  return outcome;
}

bool HybridSumVao::ShouldUseVao(const std::vector<double>& weights) const {
  if (weights.empty()) return false;
  const double total =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) return false;

  std::vector<double> sorted = weights;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  const auto hot_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(options_.hot_fraction *
                                  static_cast<double>(sorted.size())));
  const double hot_weight = std::accumulate(
      sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(hot_count),
      0.0);
  return hot_weight / total >= options_.skew_threshold;
}

Result<HybridSumVao::HybridOutcome> HybridSumVao::Evaluate(
    const std::vector<vao::ResultObject*>& objects,
    const std::vector<double>& weights,
    const TraditionalCall& traditional) const {
  VAOLIB_RETURN_IF_ERROR(
      ValidateSumAveInputs(objects, weights, options_.vao.epsilon));

  HybridOutcome outcome;
  outcome.used_vao = ShouldUseVao(weights);

  if (outcome.used_vao) {
    SumAveVao vao(options_.vao);
    VAOLIB_ASSIGN_OR_RETURN(outcome.sum, vao.Evaluate(objects, weights));
    return outcome;
  }

  if (traditional) {
    NeumaierSum sum;
    NeumaierSum slack;
    for (std::size_t i = 0; i < objects.size(); ++i) {
      VAOLIB_ASSIGN_OR_RETURN(const double value, traditional(i));
      sum.Add(weights[i] * value);
      // A black-box value is accurate within the object's minWidth.
      slack.Add(weights[i] * objects[i]->min_width());
    }
    outcome.sum.sum_bounds = Bounds::Centered(sum.Sum(), 0.5 * slack.Sum());
    return outcome;
  }

  // Degraded traditional path: converge every object through the VAO
  // interface (costs ~2x a real black box for PDE-style functions).
  for (std::size_t i = 0; i < objects.size(); ++i) {
    VAOLIB_ASSIGN_OR_RETURN(const int steps,
                            vao::ConvergeToMinWidth(objects[i]));
    outcome.sum.stats.iterations += static_cast<std::uint64_t>(steps);
    if (steps > 0) ++outcome.sum.stats.objects_touched;
  }
  NeumaierSum lo;
  NeumaierSum hi;
  for (std::size_t i = 0; i < objects.size(); ++i) {
    const Bounds b = objects[i]->bounds();
    lo.Add(weights[i] * b.lo);
    hi.Add(weights[i] * b.hi);
  }
  outcome.sum.sum_bounds = Bounds(lo.Sum(), hi.Sum());
  return outcome;
}

}  // namespace vaolib::operators
