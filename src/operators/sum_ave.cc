#include "operators/sum_ave.h"

#include <algorithm>
#include <numeric>

#include "common/macros.h"
#include "operators/score_heap.h"

namespace vaolib::operators {

namespace {

Status ValidateInputs(const std::vector<vao::ResultObject*>& objects,
                      const std::vector<double>& weights, double epsilon) {
  if (objects.empty()) {
    return Status::InvalidArgument("SUM/AVE over an empty object set");
  }
  if (objects.size() != weights.size()) {
    return Status::InvalidArgument("SUM/AVE weights length mismatch");
  }
  for (const auto* object : objects) {
    if (object == nullptr) {
      return Status::InvalidArgument("SUM/AVE over a null result object");
    }
    VAOLIB_RETURN_IF_ERROR(ValidateObjectBounds(*object, "SUM/AVE"));
  }
  for (const double w : weights) {
    if (!(w >= 0.0)) {
      return Status::InvalidArgument("SUM/AVE weights must be nonnegative");
    }
  }
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("precision constraint must be > 0");
  }
  return Status::OK();
}

Bounds WeightedSumBounds(const std::vector<vao::ResultObject*>& objects,
                         const std::vector<double>& weights) {
  double lo = 0.0;
  double hi = 0.0;
  for (std::size_t i = 0; i < objects.size(); ++i) {
    const Bounds b = objects[i]->bounds();
    lo += weights[i] * b.lo;
    hi += weights[i] * b.hi;
  }
  return Bounds(lo, hi);
}

}  // namespace

std::vector<double> SumWeights(std::size_t n) {
  return std::vector<double>(n, 1.0);
}

std::vector<double> AveWeights(std::size_t n) {
  return std::vector<double>(n, n == 0 ? 0.0 : 1.0 / static_cast<double>(n));
}

namespace {

// Greedy score of Section 5.2: weighted predicted error reduction per
// estimated CPU cycle.
double GreedyScore(const vao::ResultObject& object, double weight) {
  const Bounds cur = object.bounds();
  const Bounds est = object.est_bounds();
  const double reduction =
      std::max(0.0, weight * ((est.lo - cur.lo) + (cur.hi - est.hi)));
  const double cost =
      static_cast<double>(std::max<std::uint64_t>(object.est_cost(), 1));
  return reduction / cost;
}

std::uint64_t Log2Ceil(std::size_t n) {
  std::uint64_t bits = 1;
  while (n > 1) {
    ++bits;
    n >>= 1;
  }
  return bits;
}

}  // namespace

Result<SumOutcome> SumAveVao::EvaluateWithHeap(
    const std::vector<vao::ResultObject*>& objects,
    const std::vector<double>& weights,
    const std::vector<std::uint64_t>& coarse_iterations) const {
  SumOutcome outcome;
  std::vector<bool> touched(objects.size(), false);
  for (std::size_t i = 0; i < coarse_iterations.size(); ++i) {
    outcome.stats.iterations += coarse_iterations[i];
    outcome.stats.coarse_iterations += coarse_iterations[i];
    if (coarse_iterations[i] > 0) touched[i] = true;
  }
  Bounds sum = WeightedSumBounds(objects, weights);

  // Stalled objects are quarantined: they simply stop being re-pushed into
  // the heap, so their (sound, frozen) contribution stays in the sum.
  std::vector<StallGuard> stall(objects.size());

  ScoreHeap heap;
  heap.Reset(objects.size());
  for (std::size_t i = 0; i < objects.size(); ++i) {
    if (weights[i] > 0.0 && !objects[i]->AtStoppingCondition()) {
      heap.Update(i, GreedyScore(*objects[i], weights[i]));
    }
  }

  while (sum.Width() > options_.epsilon) {
    std::size_t chosen = 0;
    double score = 0.0;
    if (!heap.PopBest(&chosen, &score)) {
      outcome.limited_by_min_width = true;
      break;
    }
    ++outcome.stats.choose_steps;
    if (options_.meter != nullptr) {
      // One heap pop plus one push: O(log N).
      options_.meter->Charge(WorkKind::kChooseIter,
                             2 * Log2Ceil(objects.size()));
    }

    const Bounds before = objects[chosen]->bounds();
    VAOLIB_RETURN_IF_ERROR(objects[chosen]->Iterate());
    VAOLIB_RETURN_IF_ERROR(ValidateObjectBounds(*objects[chosen], "SUM/AVE"));
    const Bounds after = objects[chosen]->bounds();
    sum.lo += weights[chosen] * (after.lo - before.lo);
    sum.hi += weights[chosen] * (after.hi - before.hi);
    touched[chosen] = true;
    stall[chosen].Observe(after.Width());
    if (!objects[chosen]->AtStoppingCondition() &&
        !stall[chosen].stalled()) {
      heap.Update(chosen, GreedyScore(*objects[chosen], weights[chosen]));
    }

    ++outcome.stats.greedy_iterations;
    if (++outcome.stats.iterations > options_.max_total_iterations) {
      return Status::NotConverged("SUM/AVE exceeded max_total_iterations");
    }
  }

  outcome.sum_bounds = WeightedSumBounds(objects, weights);
  for (const bool t : touched) {
    if (t) ++outcome.stats.objects_touched;
  }
  for (const StallGuard& guard : stall) {
    if (guard.stalled()) ++outcome.stats.stalled_objects;
  }
  return outcome;
}

Result<SumOutcome> SumAveVao::Evaluate(
    const std::vector<vao::ResultObject*>& objects,
    const std::vector<double>& weights) const {
  VAOLIB_RETURN_IF_ERROR(ValidateInputs(objects, weights, options_.epsilon));
  if (options_.strategy == IterationStrategy::kRandom &&
      options_.rng == nullptr) {
    return Status::InvalidArgument("random strategy requires an Rng");
  }

  // Optional parallel phase: bulk-converge everything to the coarse width
  // on the pool; the serial greedy refinement starts from those states.
  std::vector<std::uint64_t> coarse_iterations;
  VAOLIB_RETURN_IF_ERROR(
      ParallelCoarseConverge(objects, options_.threads, options_.coarse_width,
                             options_.coarse_max_steps, &coarse_iterations));

  if (options_.use_heap_index &&
      options_.strategy == IterationStrategy::kGreedy) {
    return EvaluateWithHeap(objects, weights, coarse_iterations);
  }

  SumOutcome outcome;
  std::vector<bool> touched(objects.size(), false);
  for (std::size_t i = 0; i < coarse_iterations.size(); ++i) {
    outcome.stats.iterations += coarse_iterations[i];
    outcome.stats.coarse_iterations += coarse_iterations[i];
    if (coarse_iterations[i] > 0) touched[i] = true;
  }
  std::size_t round_robin_cursor = 0;

  // Incrementally maintained output interval: subtract an object's old
  // weighted contribution and add the new one after each iteration, so each
  // loop round is O(1) on the interval itself.
  Bounds sum = WeightedSumBounds(objects, weights);

  // Stalled objects are quarantined from the candidate set; their frozen
  // (still sound) contribution remains in the sum.
  std::vector<StallGuard> stall(objects.size());

  while (sum.Width() > options_.epsilon) {
    // Candidates: objects that may still tighten.
    std::vector<std::size_t> iterable;
    for (std::size_t i = 0; i < objects.size(); ++i) {
      if (!objects[i]->AtStoppingCondition() && !stall[i].stalled() &&
          weights[i] > 0.0) {
        iterable.push_back(i);
      }
    }
    if (iterable.empty()) {
      outcome.limited_by_min_width = true;
      break;
    }

    std::size_t chosen = iterable.front();
    ++outcome.stats.choose_steps;
    if (options_.meter != nullptr) {
      options_.meter->Charge(WorkKind::kChooseIter, iterable.size());
    }

    switch (options_.strategy) {
      case IterationStrategy::kGreedy: {
        // The paper's heuristic: estimated weighted error reduction
        // w_i * [(estL - L) + (H - estH)] per estimated CPU cycle.
        double best_score = -1.0;
        for (const std::size_t i : iterable) {
          const double score = GreedyScore(*objects[i], weights[i]);
          if (score > best_score) {
            best_score = score;
            chosen = i;
          }
        }
        if (best_score <= 0.0) {
          // Estimates predict no progress; fall back to the largest actual
          // weighted width so the loop keeps making real progress.
          double widest = -1.0;
          for (const std::size_t i : iterable) {
            const double w = weights[i] * objects[i]->bounds().Width();
            if (w > widest) {
              widest = w;
              chosen = i;
            }
          }
        }
        break;
      }
      case IterationStrategy::kRoundRobin:
        chosen = iterable[round_robin_cursor % iterable.size()];
        ++round_robin_cursor;
        break;
      case IterationStrategy::kRandom:
        chosen = iterable[static_cast<std::size_t>(options_.rng->UniformInt(
            0, static_cast<std::int64_t>(iterable.size()) - 1))];
        break;
    }

    const Bounds before = objects[chosen]->bounds();
    VAOLIB_RETURN_IF_ERROR(objects[chosen]->Iterate());
    VAOLIB_RETURN_IF_ERROR(ValidateObjectBounds(*objects[chosen], "SUM/AVE"));
    const Bounds after = objects[chosen]->bounds();
    sum.lo += weights[chosen] * (after.lo - before.lo);
    sum.hi += weights[chosen] * (after.hi - before.hi);
    touched[chosen] = true;
    stall[chosen].Observe(after.Width());

    ++outcome.stats.greedy_iterations;
    if (++outcome.stats.iterations > options_.max_total_iterations) {
      return Status::NotConverged("SUM/AVE exceeded max_total_iterations");
    }
  }

  // Recompute exactly to shed accumulated floating-point drift.
  outcome.sum_bounds = WeightedSumBounds(objects, weights);
  for (const bool t : touched) {
    if (t) ++outcome.stats.objects_touched;
  }
  for (const StallGuard& guard : stall) {
    if (guard.stalled()) ++outcome.stats.stalled_objects;
  }
  return outcome;
}

Result<TraditionalSumOutcome> TraditionalWeightedSum(
    const vao::BlackBoxFunction& function,
    const std::vector<std::vector<double>>& rows,
    const std::vector<double>& weights, WorkMeter* meter) {
  if (rows.size() != weights.size()) {
    return Status::InvalidArgument("traditional SUM weights length mismatch");
  }
  TraditionalSumOutcome outcome;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    VAOLIB_ASSIGN_OR_RETURN(const double value, function.Call(rows[i], meter));
    outcome.sum += weights[i] * value;
  }
  return outcome;
}

bool HybridSumVao::ShouldUseVao(const std::vector<double>& weights) const {
  if (weights.empty()) return false;
  const double total =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) return false;

  std::vector<double> sorted = weights;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  const auto hot_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(options_.hot_fraction *
                                  static_cast<double>(sorted.size())));
  const double hot_weight = std::accumulate(
      sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(hot_count),
      0.0);
  return hot_weight / total >= options_.skew_threshold;
}

Result<HybridSumVao::HybridOutcome> HybridSumVao::Evaluate(
    const std::vector<vao::ResultObject*>& objects,
    const std::vector<double>& weights,
    const TraditionalCall& traditional) const {
  VAOLIB_RETURN_IF_ERROR(
      ValidateInputs(objects, weights, options_.vao.epsilon));

  HybridOutcome outcome;
  outcome.used_vao = ShouldUseVao(weights);

  if (outcome.used_vao) {
    SumAveVao vao(options_.vao);
    VAOLIB_ASSIGN_OR_RETURN(outcome.sum, vao.Evaluate(objects, weights));
    return outcome;
  }

  if (traditional) {
    double sum = 0.0;
    double slack = 0.0;
    for (std::size_t i = 0; i < objects.size(); ++i) {
      VAOLIB_ASSIGN_OR_RETURN(const double value, traditional(i));
      sum += weights[i] * value;
      // A black-box value is accurate within the object's minWidth.
      slack += weights[i] * objects[i]->min_width();
    }
    outcome.sum.sum_bounds = Bounds::Centered(sum, 0.5 * slack);
    return outcome;
  }

  // Degraded traditional path: converge every object through the VAO
  // interface (costs ~2x a real black box for PDE-style functions).
  for (std::size_t i = 0; i < objects.size(); ++i) {
    VAOLIB_ASSIGN_OR_RETURN(const int steps,
                            vao::ConvergeToMinWidth(objects[i]));
    outcome.sum.stats.iterations += static_cast<std::uint64_t>(steps);
    if (steps > 0) ++outcome.sum.stats.objects_touched;
  }
  double lo = 0.0;
  double hi = 0.0;
  for (std::size_t i = 0; i < objects.size(); ++i) {
    const Bounds b = objects[i]->bounds();
    lo += weights[i] * b.lo;
    hi += weights[i] * b.hi;
  }
  outcome.sum.sum_bounds = Bounds(lo, hi);
  return outcome;
}

}  // namespace vaolib::operators
