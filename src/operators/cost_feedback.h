// Copyright 2026 The vaolib Authors.
// CostFeedback: the operator-layer surface of the predictive-planning loop.
//
// The aggregate operators observe, on their serial adaptive paths, how much
// one Iterate() actually cost and how much it actually tightened the bounds
// versus what the object's estimates claimed. A CostFeedback sink receives
// those observations keyed by (stable object identity, solver kind) and
// answers multiplicative correction ratios for future decisions. The
// concrete store -- engine::CostHistory -- lives one layer up so that the
// engine can persist it across ticks of a standing query; operators only
// see this interface (operators must not depend on engine).

#ifndef VAOLIB_OPERATORS_COST_FEEDBACK_H_
#define VAOLIB_OPERATORS_COST_FEEDBACK_H_

#include <cstdint>

namespace vaolib::operators {

/// \brief One serial-path Iterate() outcome versus its preceding estimates.
/// Costs are in work units; shrinks are bounds-width reductions (>= 0).
/// Negative actual_cost / actual_shrink mean "unknown" (e.g. the parallel
/// selection path cannot attribute per-object meter deltas) -- the sink
/// skips the corresponding ratio.
struct CostObservation {
  double est_cost = 0.0;      ///< predicted work units (raw estimate)
  double actual_cost = -1.0;  ///< measured work units; < 0 = unknown
  double est_shrink = 0.0;    ///< predicted width reduction
  double actual_shrink = -1.0;///< measured width reduction; < 0 = unknown
};

/// \brief Sink + predictor for per-(object, kind) cost/shrink corrections.
/// \p kind is an obs::SolverKind index, or -1 for objects outside the
/// calibrated solver families (synthetic, chaos, custom black boxes).
/// Implementations must be safe to call from the single driving thread of
/// an operator; cross-operator sharing is the implementation's concern.
class CostFeedback {
 public:
  virtual ~CostFeedback() = default;

  /// Records one observation for object \p id of solver \p kind.
  virtual void Record(std::uint64_t id, int kind,
                      const CostObservation& observation) = 0;

  /// If enough history exists for (\p id, \p kind), fills
  /// \p cost_ratio (actual/estimated cost) and \p shrink_ratio
  /// (actual/estimated width reduction) and returns true. Either output
  /// may be left at 1.0 when that facet has no samples.
  virtual bool Predict(std::uint64_t id, int kind, double* cost_ratio,
                      double* shrink_ratio) const = 0;
};

}  // namespace vaolib::operators

#endif  // VAOLIB_OPERATORS_COST_FEEDBACK_H_
