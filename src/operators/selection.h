// Copyright 2026 The vaolib Authors.
// Selection VAO (Sections 3.2 and 5) and its traditional counterpart.
//
// The selection VAO evaluates  f(args) <cmp> constant  by iterating a result
// object only until (a) the bounds no longer contain the constant, or
// (b) the bounds width falls below minWidth. In case (b) the function value
// is considered equal to the constant and the predicate is resolved
// accordingly (strict comparisons false, non-strict true).

#ifndef VAOLIB_OPERATORS_SELECTION_H_
#define VAOLIB_OPERATORS_SELECTION_H_

#include <vector>

#include "common/result.h"
#include "operators/operator_base.h"
#include "vao/black_box.h"
#include "vao/result_object.h"

namespace vaolib::operators {

/// \brief Outcome of one selection-predicate evaluation.
struct SelectionOutcome {
  bool passes = false;           ///< predicate truth value
  bool resolved_as_equal = false;///< true when decided via the minWidth rule
  /// True when the predicate was decided from bounds alone, before the
  /// object reached its stopping condition -- the adaptive win the paper's
  /// selection operator exists to harvest.
  bool short_circuited = false;
  Bounds final_bounds;           ///< bounds when the decision was made
  OperatorStats stats;
};

/// \brief Selection predicate evaluated adaptively over result objects.
class SelectionVao {
 public:
  SelectionVao(Comparator cmp, double constant)
      : cmp_(cmp), constant_(constant) {}

  /// Iterates \p object just enough to decide the predicate.
  Result<SelectionOutcome> Evaluate(vao::ResultObject* object) const;

  /// Invokes \p function on \p args and evaluates the fresh object;
  /// function work is charged to \p meter.
  Result<SelectionOutcome> Evaluate(
      const vao::VariableAccuracyFunction& function,
      const std::vector<double>& args, WorkMeter* meter) const;

  /// Batch path: resolves the predicate for every row of \p rows using up
  /// to \p threads workers of the shared pool (threads < 2 runs serially).
  /// Each row gets a fresh result object driven by exactly one worker; work
  /// is charged to per-chunk meters merged into \p meter deterministically,
  /// so totals are independent of \p threads. All rows are attempted; on
  /// failure returns the lowest-indexed failing row's error.
  ///
  /// When \p row_status is non-null, failing rows are quarantined instead:
  /// the batch succeeds, (*row_status)[i] carries each row's Status, and a
  /// quarantined row's outcome is the default (predicate fails). Poisoned
  /// rows (NaN bounds, stalled refinement) then cost one error entry rather
  /// than the whole tick.
  Result<std::vector<SelectionOutcome>> EvaluateBatch(
      const vao::VariableAccuracyFunction& function,
      const std::vector<std::vector<double>>& rows, int threads,
      WorkMeter* meter, std::vector<Status>* row_status = nullptr) const;

  Comparator comparator() const { return cmp_; }
  double constant() const { return constant_; }

 private:
  Comparator cmp_;
  double constant_;
};

/// \brief Range (BETWEEN) selection VAO: evaluates  lo <cmp> f(args) <cmp> hi
/// adaptively -- an extension generalizing the single-constant selection.
/// Iterates until the bounds are entirely inside [lo, hi], entirely outside,
/// or converged on an endpoint (resolved with the minWidth equality rule:
/// inclusive endpoints pass, exclusive fail).
class RangeSelectionVao {
 public:
  /// Predicate: value in [lo, hi] when \p inclusive, (lo, hi) otherwise.
  RangeSelectionVao(double lo, double hi, bool inclusive = true)
      : range_(lo, hi), inclusive_(inclusive) {}

  /// Iterates \p object just enough to decide membership.
  /// \return InvalidArgument when hi < lo or the object is null.
  Result<SelectionOutcome> Evaluate(vao::ResultObject* object) const;

  /// Invokes \p function on \p args and evaluates the fresh object.
  Result<SelectionOutcome> Evaluate(
      const vao::VariableAccuracyFunction& function,
      const std::vector<double>& args, WorkMeter* meter) const;

  /// Batch path over \p rows; same contract as SelectionVao::EvaluateBatch
  /// (including the \p row_status quarantine mode).
  Result<std::vector<SelectionOutcome>> EvaluateBatch(
      const vao::VariableAccuracyFunction& function,
      const std::vector<std::vector<double>>& rows, int threads,
      WorkMeter* meter, std::vector<Status>* row_status = nullptr) const;

  const Bounds& range() const { return range_; }
  bool inclusive() const { return inclusive_; }

 private:
  Bounds range_;
  bool inclusive_;
};

/// \brief Shared evaluation of many selection predicates over ONE function
/// result -- an extension for continuous-query systems where many standing
/// queries filter on the same UDF with different constants (e.g. different
/// traders' price alerts on the same bond).
///
/// A single result object is iterated until every predicate is decided: the
/// bounds must exclude every constant (or the object converges, at which
/// point straddled constants resolve by the minWidth equality rule). Total
/// work is governed by the constant *nearest* the function value rather
/// than by the number of predicates, so m queries cost about as much as the
/// hardest one instead of m times an average one.
class MultiSelectionVao {
 public:
  /// One predicate: function(args) <cmp> constant.
  struct Predicate {
    Comparator cmp = Comparator::kGreaterThan;
    double constant = 0.0;
  };

  explicit MultiSelectionVao(std::vector<Predicate> predicates)
      : predicates_(std::move(predicates)) {}

  struct MultiOutcome {
    /// Truth value per predicate, parallel to the constructor's list.
    std::vector<bool> passes;
    /// Which predicates were resolved by the minWidth equality rule.
    std::vector<bool> resolved_as_equal;
    /// True when every predicate was decided from bounds alone, before the
    /// object reached its stopping condition.
    bool short_circuited = false;
    Bounds final_bounds;
    OperatorStats stats;
  };

  /// Iterates \p object until every predicate is decided.
  /// \return InvalidArgument for an empty predicate list or null object.
  Result<MultiOutcome> Evaluate(vao::ResultObject* object) const;

  /// Invokes \p function on \p args and evaluates the fresh object.
  Result<MultiOutcome> Evaluate(const vao::VariableAccuracyFunction& function,
                                const std::vector<double>& args,
                                WorkMeter* meter) const;

  /// Batch path over already-created per-row objects: each object is
  /// iterated (by exactly one worker) until every predicate is decided.
  /// Objects charge whatever meters they were created against (WorkMeter
  /// charging is atomic). All rows attempted; lowest-indexed error wins.
  Result<std::vector<MultiOutcome>> EvaluateBatch(
      const std::vector<vao::ResultObject*>& objects, int threads) const;

  /// Batch path over \p rows; same contract as SelectionVao::EvaluateBatch
  /// (including the \p row_status quarantine mode).
  Result<std::vector<MultiOutcome>> EvaluateBatch(
      const vao::VariableAccuracyFunction& function,
      const std::vector<std::vector<double>>& rows, int threads,
      WorkMeter* meter, std::vector<Status>* row_status = nullptr) const;

  const std::vector<Predicate>& predicates() const { return predicates_; }

 private:
  std::vector<Predicate> predicates_;
};

/// \brief Traditional selection over a black-box UDF: always runs the
/// function to full accuracy, then compares (the paper's Figure 2).
class TraditionalSelection {
 public:
  TraditionalSelection(Comparator cmp, double constant)
      : cmp_(cmp), constant_(constant) {}

  Result<bool> Evaluate(const vao::BlackBoxFunction& function,
                        const std::vector<double>& args,
                        WorkMeter* meter) const;

  Comparator comparator() const { return cmp_; }
  double constant() const { return constant_; }

 private:
  Comparator cmp_;
  double constant_;
};

}  // namespace vaolib::operators

#endif  // VAOLIB_OPERATORS_SELECTION_H_
