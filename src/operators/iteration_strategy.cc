#include "operators/iteration_strategy.h"

#include "obs/trace.h"

namespace vaolib::operators {

namespace {

// The paper's chooseIter: highest predicted benefit per estimated CPU
// cycle, first maximum winning ties; when no candidate predicts progress
// (estimates can be wrong), the one with the largest actual width measure,
// so the real bounds keep tightening and termination conditions eventually
// fire.
class GreedyStrategy : public IterationStrategy {
 public:
  const char* name() const override { return "greedy"; }
  bool WantsScores() const override { return true; }

  std::size_t Choose(
      const std::vector<IterationCandidate>& candidates) override {
    const obs::ScopedSpan span("strategy", "greedy_choose",
                               obs::TraceDetail::kFine);
    std::size_t chosen = candidates.front().index;
    double best_score = -1.0;
    for (const IterationCandidate& c : candidates) {
      const double score = c.benefit / c.cost;
      if (score > best_score) {
        best_score = score;
        chosen = c.index;
      }
    }
    if (best_score <= 0.0) {
      double widest = -1.0;
      for (const IterationCandidate& c : candidates) {
        if (c.width > widest) {
          widest = c.width;
          chosen = c.index;
        }
      }
    }
    return chosen;
  }
};

class RoundRobinStrategy : public IterationStrategy {
 public:
  const char* name() const override { return "round_robin"; }
  bool WantsScores() const override { return false; }

  std::size_t Choose(
      const std::vector<IterationCandidate>& candidates) override {
    const std::size_t chosen =
        candidates[cursor_ % candidates.size()].index;
    ++cursor_;
    return chosen;
  }

 private:
  std::size_t cursor_ = 0;
};

class RandomStrategy : public IterationStrategy {
 public:
  explicit RandomStrategy(Rng* rng) : rng_(rng) {}

  const char* name() const override { return "random"; }
  bool WantsScores() const override { return false; }

  std::size_t Choose(
      const std::vector<IterationCandidate>& candidates) override {
    return candidates[static_cast<std::size_t>(rng_->UniformInt(
                          0, static_cast<std::int64_t>(candidates.size()) -
                                 1))]
        .index;
  }

 private:
  Rng* rng_;
};

}  // namespace

Result<std::unique_ptr<IterationStrategy>> MakeStrategy(StrategyKind kind,
                                                        Rng* rng) {
  switch (kind) {
    case StrategyKind::kGreedy:
      return std::unique_ptr<IterationStrategy>(new GreedyStrategy());
    case StrategyKind::kRoundRobin:
      return std::unique_ptr<IterationStrategy>(new RoundRobinStrategy());
    case StrategyKind::kRandom:
      if (rng == nullptr) {
        return Status::InvalidArgument("random strategy requires an Rng");
      }
      return std::unique_ptr<IterationStrategy>(new RandomStrategy(rng));
  }
  return Status::InvalidArgument("unknown strategy kind");
}

}  // namespace vaolib::operators
