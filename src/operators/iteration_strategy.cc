#include "operators/iteration_strategy.h"

#include <algorithm>
#include <numeric>

#include "obs/trace.h"

namespace vaolib::operators {

namespace {

// The paper's chooseIter: highest predicted benefit per estimated CPU
// cycle, first maximum winning ties; when no candidate predicts progress
// (estimates can be wrong), the one with the largest actual width measure,
// so the real bounds keep tightening and termination conditions eventually
// fire.
class GreedyStrategy : public IterationStrategy {
 public:
  // The corrected strategies (kCalibratedGreedy, kSentinelGreedy) share
  // this comparison logic verbatim -- their corrections are applied to the
  // candidates' benefit/cost by the IterationTask before Choose() runs --
  // so they differ here only by name.
  explicit GreedyStrategy(const char* name = "greedy") : name_(name) {}

  const char* name() const override { return name_; }
  bool WantsScores() const override { return true; }

  std::size_t Choose(
      const std::vector<IterationCandidate>& candidates) override {
    const obs::ScopedSpan span("strategy", "greedy_choose",
                               obs::TraceDetail::kFine);
    std::size_t chosen = candidates.front().index;
    double best_score = -1.0;
    for (const IterationCandidate& c : candidates) {
      const double score = c.benefit / c.cost;
      if (score > best_score) {
        best_score = score;
        chosen = c.index;
      }
    }
    if (best_score <= 0.0) {
      double widest = -1.0;
      for (const IterationCandidate& c : candidates) {
        if (c.width > widest) {
          widest = c.width;
          chosen = c.index;
        }
      }
    }
    return chosen;
  }

 private:
  const char* name_;
};

// The batch tier's chooseIter: the same scoring as GreedyStrategy, but
// taking the K best candidates per cycle instead of one. Ranking is by
// score descending with enumeration order breaking ties, so the top-1 is
// exactly the greedy first-maximum and K=1 reproduces GreedyStrategy; when
// no candidate predicts progress, ranking falls back to actual widths, as
// in the scalar fallback scan.
class BatchGreedyStrategy : public IterationStrategy {
 public:
  const char* name() const override { return "batch_greedy"; }
  bool WantsScores() const override { return true; }

  std::size_t Choose(
      const std::vector<IterationCandidate>& candidates) override {
    std::size_t chosen = candidates.front().index;
    double best_score = -1.0;
    for (const IterationCandidate& c : candidates) {
      const double score = c.benefit / c.cost;
      if (score > best_score) {
        best_score = score;
        chosen = c.index;
      }
    }
    if (best_score <= 0.0) {
      double widest = -1.0;
      for (const IterationCandidate& c : candidates) {
        if (c.width > widest) {
          widest = c.width;
          chosen = c.index;
        }
      }
    }
    return chosen;
  }

  void ChooseBatch(const std::vector<IterationCandidate>& candidates,
                   std::size_t max_batch,
                   std::vector<std::size_t>* chosen) override {
    const obs::ScopedSpan span("strategy", "batch_greedy_choose",
                               obs::TraceDetail::kFine);
    const std::size_t take = std::min(
        std::max<std::size_t>(max_batch, 1), candidates.size());
    std::vector<std::size_t> order(candidates.size());
    std::iota(order.begin(), order.end(), std::size_t{0});

    double best_score = -1.0;
    for (const IterationCandidate& c : candidates) {
      best_score = std::max(best_score, c.benefit / c.cost);
    }
    if (best_score > 0.0) {
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return candidates[a].benefit / candidates[a].cost >
                                candidates[b].benefit / candidates[b].cost;
                       });
    } else {
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return candidates[a].width > candidates[b].width;
                       });
    }
    chosen->clear();
    chosen->reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      chosen->push_back(candidates[order[i]].index);
    }
  }
};

class RoundRobinStrategy : public IterationStrategy {
 public:
  const char* name() const override { return "round_robin"; }
  bool WantsScores() const override { return false; }

  std::size_t Choose(
      const std::vector<IterationCandidate>& candidates) override {
    const std::size_t chosen =
        candidates[cursor_ % candidates.size()].index;
    ++cursor_;
    return chosen;
  }

 private:
  std::size_t cursor_ = 0;
};

class RandomStrategy : public IterationStrategy {
 public:
  explicit RandomStrategy(Rng* rng) : rng_(rng) {}

  const char* name() const override { return "random"; }
  bool WantsScores() const override { return false; }

  std::size_t Choose(
      const std::vector<IterationCandidate>& candidates) override {
    return candidates[static_cast<std::size_t>(rng_->UniformInt(
                          0, static_cast<std::int64_t>(candidates.size()) -
                                 1))]
        .index;
  }

 private:
  Rng* rng_;
};

}  // namespace

Result<std::unique_ptr<IterationStrategy>> MakeStrategy(StrategyKind kind,
                                                        Rng* rng) {
  switch (kind) {
    case StrategyKind::kGreedy:
      return std::unique_ptr<IterationStrategy>(new GreedyStrategy());
    case StrategyKind::kRoundRobin:
      return std::unique_ptr<IterationStrategy>(new RoundRobinStrategy());
    case StrategyKind::kRandom:
      if (rng == nullptr) {
        return Status::InvalidArgument("random strategy requires an Rng");
      }
      return std::unique_ptr<IterationStrategy>(new RandomStrategy(rng));
    case StrategyKind::kBatchGreedy:
      return std::unique_ptr<IterationStrategy>(new BatchGreedyStrategy());
    case StrategyKind::kCalibratedGreedy:
      return std::unique_ptr<IterationStrategy>(
          new GreedyStrategy("calibrated_greedy"));
    case StrategyKind::kSentinelGreedy:
      return std::unique_ptr<IterationStrategy>(
          new GreedyStrategy("sentinel_greedy"));
  }
  return Status::InvalidArgument("unknown strategy kind");
}

}  // namespace vaolib::operators
