// Copyright 2026 The vaolib Authors.

#include "operators/score_corrector.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "obs/metrics.h"

namespace vaolib::operators {

namespace {

// Ratio corrections are clamped so one pathological observation cannot
// zero out (or explode) a candidate's score. Matches CostHistory's clamp.
constexpr double kMinRatio = 1.0 / 64.0;
constexpr double kMaxRatio = 64.0;
// Denominators below this carry no ratio information.
constexpr double kMinDenominator = 1e-12;

double ClampRatio(double r) {
  if (!std::isfinite(r)) return 1.0;
  return std::min(kMaxRatio, std::max(kMinRatio, r));
}

}  // namespace

ScoreCorrector::ScoreCorrector(const OperatorOptions& options,
                               const std::vector<vao::ResultObject*>& objects)
    : objects_(&objects),
      feedback_(options.feedback),
      object_ids_(options.object_ids),
      correcting_(StrategyUsesCorrections(options.strategy)),
      probing_(options.strategy == StrategyKind::kSentinelGreedy),
      flip_(options.mutate_flip_correction),
      sentinel_probes_(std::max(options.sentinel_probes, 0)) {
  if (correcting_) snapshot_ = obs::CalibrationSnapshot::Capture();
}

std::uint64_t ScoreCorrector::IdOf(std::size_t i) const {
  if (object_ids_ != nullptr && i < object_ids_->size()) {
    return (*object_ids_)[i];
  }
  return static_cast<std::uint64_t>(i);
}

ScoreCorrector::Corrected ScoreCorrector::ApplyRatios(
    const Bounds& cur, const Bounds& est, double raw_cost, double cost_ratio,
    double shrink_ratio) const {
  if (flip_) {
    // Planted-defect mode: the correction direction is inverted, so a
    // learned "this object is 4x cheaper than it claims" becomes "4x more
    // expensive". The differential calibration audit must catch this.
    cost_ratio = 1.0 / cost_ratio;
    shrink_ratio = 1.0 / shrink_ratio;
  }
  Corrected out;
  out.cost = std::max(1.0, raw_cost * cost_ratio);
  // Rescale the predicted per-side tightening, then renest inside the
  // current bounds so downstream benefit formulas stay sound.
  double t_lo = std::max(0.0, est.lo - cur.lo) * shrink_ratio;
  double t_hi = std::max(0.0, cur.hi - est.hi) * shrink_ratio;
  const double width = cur.Width();
  const double total = t_lo + t_hi;
  if (total > width && total > kMinDenominator) {
    const double scale = width / total;
    t_lo *= scale;
    t_hi *= scale;
  }
  out.est = Bounds(cur.lo + t_lo, cur.hi - t_hi);
  out.changed = true;
  return out;
}

ScoreCorrector::Corrected ScoreCorrector::Correct(std::size_t i,
                                                  const Bounds& cur,
                                                  const Bounds& est,
                                                  double raw_cost) const {
  if (!correcting_) return Corrected{raw_cost, est, false};
  const int kind = (*objects_)[i]->calibration_kind();

  // (1) Per-object history: the strongest signal -- it has seen THIS
  // object (or its row id) before.
  if (feedback_ != nullptr) {
    double cost_ratio = 1.0;
    double shrink_ratio = 1.0;
    if (feedback_->Predict(IdOf(i), kind, &cost_ratio, &shrink_ratio)) {
      return ApplyRatios(cur, est, raw_cost, cost_ratio, shrink_ratio);
    }
  }

  // (2) Sentinel fit of the object's correlation group.
  if (probing_ && i < group_of_.size() && group_of_[i] != nullptr &&
      group_of_[i]->fitted) {
    return ApplyRatios(cur, est, raw_cost, group_of_[i]->cost_ratio,
                       group_of_[i]->shrink_ratio);
  }

  // (3) Global calibration bias for the object's solver kind (additive:
  // the histograms accumulate actual - est errors).
  if (kind >= 0 && kind < obs::kNumSolverKinds &&
      snapshot_.kinds[kind].samples > 0) {
    const auto& k = snapshot_.kinds[kind];
    const double sign = flip_ ? -1.0 : 1.0;
    Corrected out;
    out.cost = std::max(1.0, raw_cost + sign * k.CostBias());
    double lo = est.lo + sign * k.LoBias();
    double hi = est.hi + sign * k.HiBias();
    // Renest inside the current bounds (a prediction outside them is
    // useless to the benefit formulas and would break their invariants).
    lo = std::min(std::max(lo, cur.lo), cur.hi);
    hi = std::min(std::max(hi, lo), cur.hi);
    out.est = Bounds(lo, hi);
    out.changed = true;
    return out;
  }

  // (4) No signal: raw estimates, bit-exactly.
  return Corrected{raw_cost, est, false};
}

void ScoreCorrector::EnsureGroups() {
  if (groups_built_) return;
  groups_built_ = true;
  const std::size_t n = objects_->size();
  group_of_.assign(n, nullptr);
  probe_state_.assign(n, 0);
  std::map<std::string, std::vector<std::size_t>> keyed;
  for (std::size_t i = 0; i < n; ++i) {
    std::string key = (*objects_)[i]->correlation_key();
    if (key.empty()) continue;
    keyed[std::move(key)].push_back(i);
  }
  for (auto& [key, members] : keyed) {
    // A singleton group has nobody to generalise the probe to.
    if (members.size() < 2) continue;
    Group& group = groups_[key];
    group.members = members;
    // Probe the cheapest members by raw est cost (tie: lowest index), but
    // always leave at least one member to benefit from the fit.
    std::vector<std::size_t> order = members;
    std::stable_sort(order.begin(), order.end(),
                     [this](std::size_t a, std::size_t b) {
                       return (*objects_)[a]->est_cost() <
                              (*objects_)[b]->est_cost();
                     });
    const std::size_t quota =
        std::min<std::size_t>(static_cast<std::size_t>(sentinel_probes_),
                              members.size() - 1);
    group.probes.assign(order.begin(), order.begin() + quota);
    for (std::size_t p : group.probes) probe_state_[p] = 1;
    for (std::size_t m : members) group_of_[m] = &group;
  }
}

bool ScoreCorrector::NextProbe(const std::vector<std::size_t>& iterable,
                               std::size_t* probe) {
  if (!probing_) return false;
  EnsureGroups();
  for (auto& [key, group] : groups_) {
    if (group.probes_retired >= group.probes.size()) continue;
    for (std::size_t p : group.probes) {
      if (p >= probe_state_.size() || probe_state_[p] != 1) continue;
      if (std::binary_search(iterable.begin(), iterable.end(), p)) {
        *probe = p;
        return true;
      }
      // Converged / pruned / stalled before its probe ran: retire without
      // an observation so the probe queue cannot wedge the operator.
      RecordProbe(p, 0.0, false, 0.0, false);
    }
  }
  return false;
}

void ScoreCorrector::RecordProbe(std::size_t i, double cost_ratio_sample,
                                 bool has_cost, double shrink_ratio_sample,
                                 bool has_shrink) {
  if (i >= probe_state_.size() || probe_state_[i] != 1) return;
  probe_state_[i] = 2;
  Group* group = group_of_[i];
  if (group == nullptr) return;
  ++group->probes_retired;
  if (has_cost) {
    group->cost_ratio_sum += cost_ratio_sample;
    ++group->cost_samples;
  }
  if (has_shrink) {
    group->shrink_ratio_sum += shrink_ratio_sample;
    ++group->shrink_samples;
  }
  if (group->probes_retired >= group->probes.size()) {
    group->cost_ratio =
        group->cost_samples > 0
            ? ClampRatio(group->cost_ratio_sum / group->cost_samples)
            : 1.0;
    group->shrink_ratio =
        group->shrink_samples > 0
            ? ClampRatio(group->shrink_ratio_sum / group->shrink_samples)
            : 1.0;
    group->fitted = true;
  }
}

ScoreCorrector::Observation ScoreCorrector::BeginObserve(
    std::size_t i, const WorkMeter* meter) const {
  Observation observation;
  if (!recording() && !probing_) return observation;
  observation.active = true;
  observation.index = i;
  observation.before = (*objects_)[i]->bounds();
  observation.est_before = (*objects_)[i]->est_bounds();
  observation.raw_cost =
      std::max<double>(static_cast<double>((*objects_)[i]->est_cost()), 1.0);
  observation.meter = meter;
  observation.work_before = meter != nullptr ? meter->Total() : 0;
  return observation;
}

void ScoreCorrector::CommitObserve(const Observation& observation,
                                   OperatorStats* stats) {
  if (!observation.active) return;
  const double actual_cost =
      observation.meter != nullptr
          ? static_cast<double>(observation.meter->Total() -
                                observation.work_before)
          : -1.0;
  CommitObserveCost(observation, actual_cost, stats);
}

void ScoreCorrector::CommitObserveCost(const Observation& observation,
                                       double actual_cost,
                                       OperatorStats* stats) {
  if (!observation.active) return;
  const std::size_t i = observation.index;
  const Bounds after = (*objects_)[i]->bounds();
  const double actual_shrink =
      std::max(0.0, observation.before.Width() - after.Width());
  const double est_shrink =
      std::max(0.0, observation.est_before.lo - observation.before.lo) +
      std::max(0.0, observation.before.hi - observation.est_before.hi);

  if (stats != nullptr && (correcting_ || recording())) {
    // Audit the prediction as it stood at decision time (the observation
    // has not been fed back yet, so Correct() reproduces it).
    const Corrected corrected = Correct(i, observation.before,
                                        observation.est_before,
                                        observation.raw_cost);
    if (actual_cost >= 0.0) {
      ++stats->cost_err_samples;
      stats->raw_cost_abs_err +=
          std::abs(actual_cost - observation.raw_cost);
      stats->corrected_cost_abs_err += std::abs(actual_cost - corrected.cost);
    }
    if (corrected.changed) ++stats->corrected_decisions;
  }

  if (probing_ && i < probe_state_.size() && probe_state_[i] == 1) {
    const bool has_cost =
        actual_cost >= 0.0 && observation.raw_cost > kMinDenominator;
    const bool has_shrink = est_shrink > kMinDenominator;
    RecordProbe(i,
                has_cost ? actual_cost / observation.raw_cost : 0.0, has_cost,
                has_shrink ? actual_shrink / est_shrink : 0.0, has_shrink);
  }

  if (feedback_ != nullptr) {
    CostObservation cost_observation;
    cost_observation.est_cost = observation.raw_cost;
    cost_observation.actual_cost = actual_cost;
    cost_observation.est_shrink = est_shrink;
    cost_observation.actual_shrink = actual_shrink;
    feedback_->Record(IdOf(i), (*objects_)[i]->calibration_kind(),
                      cost_observation);
  }
}

}  // namespace vaolib::operators
