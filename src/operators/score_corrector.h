// Copyright 2026 The vaolib Authors.
// ScoreCorrector: the predictive-planning engine shared by the aggregate
// IterationTasks.
//
// It does three jobs on the serial adaptive loop:
//
//   * Correct: rescales a candidate's raw estCPU/estL/estH before the
//     greedy comparison. Precedence per candidate: (1) the per-(object,
//     kind) CostFeedback history, (2) the sentinel fit of the object's
//     correlation group, (3) the live CalibrationSnapshot bias for the
//     object's solver kind. A candidate matching none of the three scores
//     on its raw estimates bit-exactly.
//   * Probe: under kSentinelGreedy, overrides the strategy's pick until
//     each correlation group's probe quota (the cheapest members by raw
//     estCPU) has been observed; the observed-vs-predicted ratios fitted
//     from those probes become correction source (2) for the rest of the
//     group.
//   * Record: after each serial iterate, feeds the actual-vs-estimated
//     cost and shrink into the CostFeedback store and accumulates the
//     raw/corrected MAE audit into OperatorStats. Recording happens only
//     on paths whose iterate sequence is thread-count invariant, so the
//     history an operator run leaves behind is too.
//
// Everything is inert (no allocation, no snapshot capture) unless the
// options enable feedback or a corrected strategy.

#ifndef VAOLIB_OPERATORS_SCORE_CORRECTOR_H_
#define VAOLIB_OPERATORS_SCORE_CORRECTOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bounds.h"
#include "common/work_meter.h"
#include "obs/trace.h"
#include "operators/operator_base.h"
#include "vao/result_object.h"

namespace vaolib::operators {

class ScoreCorrector {
 public:
  /// \p objects must outlive the corrector (the owning task guarantees
  /// this). Captures the live CalibrationSnapshot when the strategy is a
  /// corrected one.
  ScoreCorrector(const OperatorOptions& options,
                 const std::vector<vao::ResultObject*>& objects);

  /// True when observations should be recorded (a feedback store is
  /// attached).
  bool recording() const { return feedback_ != nullptr; }
  /// True when candidate estimates should be corrected before scoring.
  bool correcting() const { return correcting_; }
  /// True when sentinel probing should override picks.
  bool probing() const { return probing_; }

  /// A candidate's corrected estimates. When `changed` is false the values
  /// are the raw inputs, bit-exactly.
  struct Corrected {
    double cost = 1.0;
    Bounds est = Bounds(0.0, 0.0);
    bool changed = false;
  };

  /// Corrects object \p i's raw estimates: \p cur its current bounds,
  /// \p est its raw est_bounds(), \p raw_cost its raw est cost (>= 1).
  Corrected Correct(std::size_t i, const Bounds& cur, const Bounds& est,
                    double raw_cost) const;

  /// Sentinel pick override: when a correlation-group probe is still
  /// pending among \p iterable (ascending object indices), sets \p probe
  /// and returns true. Pending probes that are no longer iterable
  /// (converged, pruned, stalled) are retired without an observation so
  /// the queue cannot wedge.
  bool NextProbe(const std::vector<std::size_t>& iterable,
                 std::size_t* probe);

  /// Pre-iterate capture for one object; inert unless recording().
  struct Observation {
    bool active = false;
    std::size_t index = 0;
    Bounds before = Bounds(0.0, 0.0);
    Bounds est_before = Bounds(0.0, 0.0);
    double raw_cost = 1.0;
    std::uint64_t work_before = 0;
    const WorkMeter* meter = nullptr;
  };

  /// Captures object \p i's pre-iterate state. \p meter (nullable) is used
  /// by the meter-delta Commit overload.
  Observation BeginObserve(std::size_t i, const WorkMeter* meter) const;

  /// Commits \p observation with the actual cost taken from the meter
  /// delta (unknown when the meter is null), then updates the sentinel
  /// fit, the feedback store, and the \p stats audit.
  void CommitObserve(const Observation& observation, OperatorStats* stats);

  /// Commit with an explicitly attributed actual cost (batch paths pass
  /// the per-object spend; pass a negative value for "unknown").
  void CommitObserveCost(const Observation& observation, double actual_cost,
                         OperatorStats* stats);

 private:
  struct Group {
    std::vector<std::size_t> members;
    std::vector<std::size_t> probes;  ///< pending, cheapest-first
    std::size_t probes_retired = 0;
    double cost_ratio_sum = 0.0;
    double shrink_ratio_sum = 0.0;
    int cost_samples = 0;
    int shrink_samples = 0;
    bool fitted = false;
    double cost_ratio = 1.0;
    double shrink_ratio = 1.0;
  };

  std::uint64_t IdOf(std::size_t i) const;
  void EnsureGroups();
  void RecordProbe(std::size_t i, double cost_ratio_sample, bool has_cost,
                   double shrink_ratio_sample, bool has_shrink);
  Corrected ApplyRatios(const Bounds& cur, const Bounds& est,
                        double raw_cost, double cost_ratio,
                        double shrink_ratio) const;

  const std::vector<vao::ResultObject*>* objects_;
  CostFeedback* feedback_ = nullptr;
  const std::vector<std::uint64_t>* object_ids_ = nullptr;
  bool correcting_ = false;
  bool probing_ = false;
  bool flip_ = false;
  int sentinel_probes_ = 0;
  obs::CalibrationSnapshot snapshot_;

  bool groups_built_ = false;
  std::map<std::string, Group> groups_;
  /// Per object: group pointer (stable: std::map nodes) or null.
  std::vector<Group*> group_of_;
  /// Per object: 1 = pending probe, 2 = observed/retired probe, 0 = not a
  /// probe.
  std::vector<int> probe_state_;
};

}  // namespace vaolib::operators

#endif  // VAOLIB_OPERATORS_SCORE_CORRECTOR_H_
