// Copyright 2026 The vaolib Authors.
// Predicate result ranges for continuous selection queries: the CASPER
// integration the paper names as future work (Section 2; Denny & Franklin,
// SIGMOD 2005 [8]).
//
// CASPER caches *ranges of the function parameter* over which an expensive
// predicate's outcome is already known, so a new stream value that falls in
// a known range answers the predicate with no function execution at all.
// For UDFs that are monotone in the streamed parameter -- bond prices are
// monotonically decreasing in the interest rate -- a single evaluated point
// induces an entire half-line of known outcomes:
//
//   f decreasing, predicate f(x) > c:  pass at x0  =>  pass for all x <= x0
//                                      fail at x0  =>  fail for all x >= x0
//
// The cache stores, per key (e.g. bond), the tightest such thresholds seen
// and answers Lookup() in O(1). The VAO supplies the evaluations that feed
// it: a cooperating selection operator only runs the function when the
// stream value falls in the unknown gap between the thresholds.

#ifndef VAOLIB_OPERATORS_PREDICATE_RANGE_CACHE_H_
#define VAOLIB_OPERATORS_PREDICATE_RANGE_CACHE_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "common/result.h"
#include "operators/operator_base.h"
#include "operators/selection.h"
#include "vao/result_object.h"

namespace vaolib::operators {

/// \brief Declared monotonicity of the UDF in its streamed parameter.
enum class Monotonicity {
  kDecreasing,  ///< f(x) non-increasing in x (bond price vs. rate)
  kIncreasing,  ///< f(x) non-decreasing in x
};

/// \brief Per-key predicate result ranges for one fixed predicate.
///
/// Works in a normalized parameter space where the predicate, if monotone,
/// is "true below some threshold": callers (RangeCachedSelection) map the
/// raw stream value into this space according to the UDF's monotonicity
/// and the predicate's direction. Thread-compatible (single-writer); keys
/// are dense indices (relation row ids), matching the engine's bond-table
/// layout.
class PredicateRangeCache {
 public:
  /// Creates a cache for \p keys rows.
  explicit PredicateRangeCache(std::size_t keys);

  /// Returns the known outcome for \p key at normalized parameter \p s, or
  /// nullopt when s falls in the unknown gap between the thresholds.
  std::optional<bool> Lookup(std::size_t key, double s) const;

  /// Records that the predicate evaluated to \p passes for \p key at
  /// normalized parameter \p s, widening the corresponding known range.
  /// Out-of-range keys are ignored (defensive).
  void Record(std::size_t key, double s, bool passes);

  /// Known-range statistics.
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  struct Thresholds {
    /// Predicate known TRUE for all s <= pass_until.
    double pass_until = -std::numeric_limits<double>::infinity();
    /// Predicate known FALSE for all s >= fail_from.
    double fail_from = std::numeric_limits<double>::infinity();
  };

  std::vector<Thresholds> thresholds_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
};

/// \brief Selection VAO with a predicate-range cache in front: evaluates
/// `function(x, key) <cmp> constant` over a keyed relation, consulting the
/// cache before invoking the function and feeding every decided outcome
/// back into it.
///
/// The equality-resolved case (bounds converged straddling the constant) is
/// NOT recorded -- it does not induce a half-line of known outcomes.
class RangeCachedSelection {
 public:
  /// \p monotonicity declares how the UDF moves with its first (streamed)
  /// argument; the remaining argument is the dense key.
  RangeCachedSelection(Comparator cmp, double constant, std::size_t keys,
                       Monotonicity monotonicity);

  struct CachedOutcome {
    bool passes = false;
    bool from_cache = false;  ///< answered without any function execution
    OperatorStats stats;
  };

  /// Evaluates the predicate for \p key at streamed value \p x, invoking
  /// \p function (args = {x, key}) only when the cache cannot answer.
  Result<CachedOutcome> Evaluate(const vao::VariableAccuracyFunction& function,
                                 double x, std::size_t key,
                                 WorkMeter* meter);

  const PredicateRangeCache& cache() const { return cache_; }

 private:
  /// Maps the raw stream value into the cache's "true below" space.
  double Normalize(double x) const { return true_below_ ? x : -x; }

  SelectionVao vao_;
  bool true_below_;
  PredicateRangeCache cache_;
};

}  // namespace vaolib::operators

#endif  // VAOLIB_OPERATORS_PREDICATE_RANGE_CACHE_H_
