// Copyright 2026 The vaolib Authors.
// Traditional (black-box) aggregate operators: the Section 6 baselines that
// run every UDF call to full accuracy and then aggregate exact values.

#ifndef VAOLIB_OPERATORS_TRADITIONAL_H_
#define VAOLIB_OPERATORS_TRADITIONAL_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "operators/operator_base.h"
#include "vao/black_box.h"

namespace vaolib::operators {

/// \brief Outcome of a traditional MIN/MAX over black-box calls.
struct TraditionalExtremeOutcome {
  std::size_t winner_index = 0;
  double value = 0.0;
};

/// \brief Runs \p function to full accuracy on every row and returns the
/// extreme value and its row index. Ties resolve to the first row.
Result<TraditionalExtremeOutcome> TraditionalExtreme(
    const vao::BlackBoxFunction& function,
    const std::vector<std::vector<double>>& rows, ExtremeKind kind,
    WorkMeter* meter);

}  // namespace vaolib::operators

#endif  // VAOLIB_OPERATORS_TRADITIONAL_H_
