#include "operators/predicate_range_cache.h"

#include "common/macros.h"

namespace vaolib::operators {

PredicateRangeCache::PredicateRangeCache(std::size_t keys)
    : thresholds_(keys) {}

std::optional<bool> PredicateRangeCache::Lookup(std::size_t key,
                                                double s) const {
  if (key >= thresholds_.size()) return std::nullopt;
  const Thresholds& t = thresholds_[key];
  if (s <= t.pass_until) {
    ++hits_;
    return true;
  }
  if (s >= t.fail_from) {
    ++hits_;
    return false;
  }
  ++misses_;
  return std::nullopt;
}

void PredicateRangeCache::Record(std::size_t key, double s, bool passes) {
  if (key >= thresholds_.size()) return;
  Thresholds& t = thresholds_[key];
  if (passes) {
    t.pass_until = std::max(t.pass_until, s);
  } else {
    t.fail_from = std::min(t.fail_from, s);
  }
}

namespace {

// The predicate is "true below" in the raw parameter when a decreasing UDF
// meets a greater-than style comparison (price > c holds at low rates), or
// an increasing UDF meets a less-than style one.
bool TrueBelow(Comparator cmp, Monotonicity monotonicity) {
  const bool greater_style = cmp == Comparator::kGreaterThan ||
                             cmp == Comparator::kGreaterEqual;
  return monotonicity == Monotonicity::kDecreasing ? greater_style
                                                   : !greater_style;
}

}  // namespace

RangeCachedSelection::RangeCachedSelection(Comparator cmp, double constant,
                                           std::size_t keys,
                                           Monotonicity monotonicity)
    : vao_(cmp, constant),
      true_below_(TrueBelow(cmp, monotonicity)),
      cache_(keys) {}

Result<RangeCachedSelection::CachedOutcome> RangeCachedSelection::Evaluate(
    const vao::VariableAccuracyFunction& function, double x, std::size_t key,
    WorkMeter* meter) {
  CachedOutcome outcome;
  const double s = Normalize(x);
  if (const auto known = cache_.Lookup(key, s); known.has_value()) {
    outcome.passes = *known;
    outcome.from_cache = true;
    return outcome;
  }

  VAOLIB_ASSIGN_OR_RETURN(
      const SelectionOutcome evaluated,
      vao_.Evaluate(function, {x, static_cast<double>(key)}, meter));
  outcome.passes = evaluated.passes;
  outcome.stats = evaluated.stats;
  // Equality-resolved outcomes (bounds converged straddling the constant)
  // do not induce a half-line of known results; record only clean decisions.
  if (!evaluated.resolved_as_equal) {
    cache_.Record(key, s, evaluated.passes);
  }
  return outcome;
}

}  // namespace vaolib::operators
