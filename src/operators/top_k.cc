#include "operators/top_k.h"

#include <algorithm>

#include "common/macros.h"
#include "operators/iteration_task.h"

namespace vaolib::operators {

Status ValidateTopKInputs(const std::vector<vao::ResultObject*>& objects,
                          std::size_t k, double epsilon) {
  const std::size_t n = objects.size();
  if (n == 0) {
    return Status::InvalidArgument("TOP-K over an empty object set");
  }
  if (k < 1 || k > n) {
    return Status::InvalidArgument("TOP-K k must lie in [1, n]");
  }
  double max_min_width = 0.0;
  for (const auto* object : objects) {
    if (object == nullptr) {
      return Status::InvalidArgument("TOP-K over a null result object");
    }
    VAOLIB_RETURN_IF_ERROR(ValidateObjectBounds(*object, "TOP-K"));
    max_min_width = std::max(max_min_width, object->min_width());
  }
  if (epsilon < max_min_width) {
    return Status::InvalidArgument(
        "precision constraint below the largest input minWidth");
  }
  return Status::OK();
}

Result<TopKOutcome> TopKVao::Evaluate(
    const std::vector<vao::ResultObject*>& objects) const {
  // The whole boundary-separation and finalization loop lives in the
  // resumable task; Evaluate just drives it to completion (or to the work
  // budget, when one is set).
  VAOLIB_ASSIGN_OR_RETURN(auto task,
                          TopKIterationTask::Create(options_, objects));
  VAOLIB_ASSIGN_OR_RETURN(const bool finished,
                          DriveTask(task.get(), options_));
  (void)finished;  // Snapshot() reports convergence itself.
  return task->Snapshot();
}

}  // namespace vaolib::operators
