#include "operators/top_k.h"

#include <algorithm>
#include <limits>

#include "common/macros.h"

namespace vaolib::operators {

namespace {

// Work in "max space" (negate for kMin), as in min_max.cc.
Bounds View(const Bounds& b, ExtremeKind kind) {
  return kind == ExtremeKind::kMax ? b : Bounds(-b.hi, -b.lo);
}

}  // namespace

Result<TopKOutcome> TopKVao::Evaluate(
    const std::vector<vao::ResultObject*>& objects) const {
  const std::size_t n = objects.size();
  if (n == 0) {
    return Status::InvalidArgument("TOP-K over an empty object set");
  }
  if (options_.k < 1 || options_.k > n) {
    return Status::InvalidArgument("TOP-K k must lie in [1, n]");
  }
  double max_min_width = 0.0;
  for (const auto* object : objects) {
    if (object == nullptr) {
      return Status::InvalidArgument("TOP-K over a null result object");
    }
    VAOLIB_RETURN_IF_ERROR(ValidateObjectBounds(*object, "TOP-K"));
    max_min_width = std::max(max_min_width, object->min_width());
  }
  if (options_.epsilon < max_min_width) {
    return Status::InvalidArgument(
        "precision constraint below the largest input minWidth");
  }

  const ExtremeKind kind = options_.kind;
  const std::size_t k = options_.k;
  TopKOutcome outcome;
  std::vector<bool> touched(n, false);

  auto bounds_of = [&](std::size_t i) {
    return View(objects[i]->bounds(), kind);
  };
  auto est_of = [&](std::size_t i) {
    return View(objects[i]->est_bounds(), kind);
  };

  // Stalled objects are quarantined (treated as converged); their frozen
  // bounds stay sound, so the selection stays correct, merely coarser.
  std::vector<StallGuard> stall(n);
  auto effectively_converged = [&](std::size_t i) {
    return objects[i]->AtStoppingCondition() || stall[i].stalled();
  };

  auto iterate = [&](std::size_t i, std::uint64_t* phase_counter) -> Status {
    VAOLIB_RETURN_IF_ERROR(objects[i]->Iterate());
    VAOLIB_RETURN_IF_ERROR(ValidateObjectBounds(*objects[i], "TOP-K"));
    stall[i].Observe(objects[i]->bounds().Width());
    touched[i] = true;
    ++*phase_counter;
    if (++outcome.stats.iterations > options_.max_total_iterations) {
      return Status::NotConverged("TOP-K exceeded max_total_iterations");
    }
    return Status::OK();
  };

  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;

  std::vector<std::size_t> members;
  while (true) {
    // Guess the top-k set: the k candidates with the highest upper bounds.
    std::partial_sort(order.begin(),
                      order.begin() + static_cast<std::ptrdiff_t>(k),
                      order.end(), [&](std::size_t a, std::size_t b) {
                        return bounds_of(a).hi > bounds_of(b).hi;
                      });
    members.assign(order.begin(),
                   order.begin() + static_cast<std::ptrdiff_t>(k));

    if (k == n) break;  // everything is selected; only refinement remains

    // Selection boundary: members must end strictly above all outsiders.
    double boundary_lo = std::numeric_limits<double>::infinity();
    for (const std::size_t i : members) {
      boundary_lo = std::min(boundary_lo, bounds_of(i).lo);
    }
    double boundary_hi = -std::numeric_limits<double>::infinity();
    for (std::size_t idx = k; idx < n; ++idx) {
      boundary_hi = std::max(boundary_hi, bounds_of(order[idx]).hi);
    }
    if (boundary_lo > boundary_hi) break;  // fully separated

    // Conflicted objects: members reachable from below, outsiders reaching
    // into the member zone.
    std::vector<std::size_t> conflicted;
    for (const std::size_t i : members) {
      if (bounds_of(i).lo <= boundary_hi) conflicted.push_back(i);
    }
    for (std::size_t idx = k; idx < n; ++idx) {
      if (bounds_of(order[idx]).hi >= boundary_lo) {
        conflicted.push_back(order[idx]);
      }
    }

    std::vector<std::size_t> iterable;
    for (const std::size_t i : conflicted) {
      if (!effectively_converged(i)) iterable.push_back(i);
    }
    if (iterable.empty()) {
      // Everything straddling the boundary is converged: membership of the
      // last slots is tie-determined (termination case 2 of Section 5.1).
      outcome.tie = true;
      break;
    }

    ++outcome.stats.choose_steps;
    if (options_.meter != nullptr) {
      options_.meter->Charge(WorkKind::kChooseIter, conflicted.size());
    }

    // Greedy: the largest predicted cross-boundary overlap reduction per
    // estimated CPU cycle.
    std::size_t chosen = iterable.front();
    double best_score = -1.0;
    const auto member_set_end =
        order.begin() + static_cast<std::ptrdiff_t>(k);
    for (const std::size_t i : iterable) {
      const bool is_member =
          std::find(order.begin(), member_set_end, i) != member_set_end;
      const Bounds cur = bounds_of(i);
      const Bounds est = est_of(i);
      double gain;
      if (is_member) {
        // Raising a member's lower bound toward the outsiders' ceiling.
        gain = std::min(boundary_hi - cur.lo, est.lo - cur.lo);
      } else {
        // Lowering an outsider's upper bound toward the members' floor.
        gain = std::min(cur.hi - boundary_lo, cur.hi - est.hi);
      }
      gain = std::max(gain, 0.0);
      const double cost = static_cast<double>(
          std::max<std::uint64_t>(objects[i]->est_cost(), 1));
      const double score = gain / cost;
      if (score > best_score) {
        best_score = score;
        chosen = i;
      }
    }
    if (best_score <= 0.0) {
      // Predictions stalled; iterate the widest conflicted object so the
      // real bounds keep making progress.
      double widest = -1.0;
      for (const std::size_t i : iterable) {
        const double w = bounds_of(i).Width();
        if (w > widest) {
          widest = w;
          chosen = i;
        }
      }
    }
    VAOLIB_RETURN_IF_ERROR(iterate(chosen, &outcome.stats.greedy_iterations));
  }

  // Refine every selected member to the precision constraint.
  for (const std::size_t i : members) {
    while (objects[i]->bounds().Width() > options_.epsilon &&
           !effectively_converged(i)) {
      VAOLIB_RETURN_IF_ERROR(
          iterate(i, &outcome.stats.finalize_iterations));
    }
  }

  // Order winners by extremity (descending midpoint in max space).
  std::sort(members.begin(), members.end(),
            [&](std::size_t a, std::size_t b) {
              return bounds_of(a).Mid() > bounds_of(b).Mid();
            });
  for (const std::size_t i : members) {
    outcome.winners.push_back(i);
    outcome.winner_bounds.push_back(objects[i]->bounds());
  }
  for (const bool t : touched) {
    if (t) ++outcome.stats.objects_touched;
  }
  for (const StallGuard& guard : stall) {
    if (guard.stalled()) ++outcome.stats.stalled_objects;
  }
  outcome.precision_degraded = outcome.stats.stalled_objects > 0;
  return outcome;
}

}  // namespace vaolib::operators
