// Copyright 2026 The vaolib Authors.
// ScoreHeap: a lazy max-heap over (index, score) pairs for sublinear greedy
// iteration choice. Section 5.2 of the paper notes that heap queues could
// replace the O(N) per-choice scan; this is that index. It applies when an
// object's score depends only on its own state (true for SUM/AVE, where the
// score is w_i * predicted-error-reduction / estCPU): after iterating
// object i only i's score changes, so the heap is updated lazily with
// versioned entries and stale entries are discarded on pop.

#ifndef VAOLIB_OPERATORS_SCORE_HEAP_H_
#define VAOLIB_OPERATORS_SCORE_HEAP_H_

#include <cstdint>
#include <queue>
#include <vector>

namespace vaolib::operators {

/// \brief Versioned lazy max-heap keyed by double scores.
class ScoreHeap {
 public:
  /// Prepares the heap for indices [0, n); all versions reset.
  void Reset(std::size_t n) {
    versions_.assign(n, 0);
    heap_ = {};
  }

  /// Inserts or updates the score for \p index. Older entries for the same
  /// index become stale and are skipped on pop.
  void Update(std::size_t index, double score) {
    ++versions_[index];
    heap_.push(Entry{score, index, versions_[index]});
  }

  /// Marks \p index as permanently removed (converged / zero weight).
  void Remove(std::size_t index) { ++versions_[index]; }

  /// Pops the highest-scored live entry into *index/*score. Returns false
  /// when no live entries remain.
  bool PopBest(std::size_t* index, double* score) {
    while (!heap_.empty()) {
      const Entry top = heap_.top();
      heap_.pop();
      if (top.version == versions_[top.index]) {
        // The popped entry is consumed; a fresh Update() is required to
        // re-enter the heap (versions stay unchanged so duplicates of this
        // entry are dropped).
        ++versions_[top.index];
        *index = top.index;
        *score = top.score;
        return true;
      }
    }
    return false;
  }

  /// Live entry count upper bound (includes stale entries).
  std::size_t SizeBound() const { return heap_.size(); }

 private:
  struct Entry {
    double score;
    std::size_t index;
    std::uint64_t version;
    bool operator<(const Entry& other) const { return score < other.score; }
  };
  std::priority_queue<Entry> heap_;
  std::vector<std::uint64_t> versions_;
};

}  // namespace vaolib::operators

#endif  // VAOLIB_OPERATORS_SCORE_HEAP_H_
