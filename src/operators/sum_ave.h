// Copyright 2026 The vaolib Authors.
// SUM/AVE aggregate VAO (Section 5.2), its traditional counterpart, and the
// hybrid operator the paper sketches as future work in Section 6.3.
//
// The VAO computes the weighted-sum interval
//   [ sum_i w_i * L_i ,  sum_i w_i * H_i ]
// and iterates greedily -- highest estimated weighted error reduction per
// CPU cycle -- until the interval width satisfies the precision constraint
// epsilon or every object has reached its stopping condition. AVE is SUM
// with weights 1/N.

#ifndef VAOLIB_OPERATORS_SUM_AVE_H_
#define VAOLIB_OPERATORS_SUM_AVE_H_

#include <cstddef>
#include <functional>
#include <limits>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/work_meter.h"
#include "operators/operator_base.h"
#include "vao/black_box.h"
#include "vao/result_object.h"

namespace vaolib::operators {

/// \brief Result of a SUM/AVE evaluation.
struct SumOutcome {
  Bounds sum_bounds;     ///< bounds on the weighted sum, width <= epsilon
  /// True when the loop stopped because every object converged before the
  /// precision constraint was met (the constraint then holds as tightly as
  /// the inputs allow).
  bool limited_by_min_width = false;
  /// False when evaluation stopped on a work budget before termination:
  /// sum_bounds is still a sound interval for the weighted sum, merely wider
  /// than epsilon.
  bool converged = true;
  OperatorStats stats;
};

/// \brief Configuration of a SUM/AVE VAO. All shared knobs (epsilon,
/// strategy, threads/coarse pre-phase, budget, meter) live on
/// OperatorOptions.
struct SumAveOptions : OperatorOptions {
  /// With the greedy strategy, pick iterations through a lazy max-heap in
  /// O(log N) instead of the O(N) scan -- the indexing optimization the
  /// paper mentions as unnecessary at 500 bonds but available (Section 5.2).
  /// Valid because a SUM score depends only on its own object's state.
  bool use_heap_index = false;
};

/// \brief Adaptive weighted-SUM aggregate over result objects.
class SumAveVao {
 public:
  explicit SumAveVao(const SumAveOptions& options) : options_(options) {}

  /// Runs the aggregate over \p objects with nonnegative \p weights
  /// (same length). Pass weights of 1 for SUM, 1/N for AVE.
  Result<SumOutcome> Evaluate(const std::vector<vao::ResultObject*>& objects,
                              const std::vector<double>& weights) const;

  const SumAveOptions& options() const { return options_; }

 private:
  SumAveOptions options_;
};

/// \brief Validates SUM/AVE inputs: non-empty objects, all non-null with
/// well-formed bounds, matching nonnegative weights, epsilon > 0. Shared by
/// the VAO, its IterationTask, and the hybrid operator.
Status ValidateSumAveInputs(const std::vector<vao::ResultObject*>& objects,
                            const std::vector<double>& weights,
                            double epsilon);

/// \brief Weights vector of n ones (SUM semantics).
std::vector<double> SumWeights(std::size_t n);

/// \brief Weights vector of n entries 1/n (AVE semantics).
std::vector<double> AveWeights(std::size_t n);

/// \brief Traditional weighted SUM over a black-box UDF: full-accuracy call
/// per row, exact arithmetic on the returned values.
struct TraditionalSumOutcome {
  double sum = 0.0;
};
Result<TraditionalSumOutcome> TraditionalWeightedSum(
    const vao::BlackBoxFunction& function,
    const std::vector<std::vector<double>>& rows,
    const std::vector<double>& weights, WorkMeter* meter);

/// \brief The Section 6.3 future-work hybrid: chooses between the VAO and
/// the per-object traditional path using the weight skew of the workload.
///
/// Figure 12 shows the VAO pays off only when weight is concentrated: with
/// uniform weights every object must converge and the VAO adds intermediate
/// -iteration overhead. The hybrid computes the fraction of total weight
/// held by the top `hot_fraction` of objects and runs the VAO only when it
/// exceeds `skew_threshold`.
class HybridSumVao {
 public:
  struct Options {
    SumAveOptions vao;
    double hot_fraction = 0.10;    ///< top share of objects examined
    double skew_threshold = 0.5;   ///< min weight share to pick the VAO path
  };

  explicit HybridSumVao(const Options& options) : options_(options) {}

  /// Returns true when the weight profile favours the VAO path.
  bool ShouldUseVao(const std::vector<double>& weights) const;

  struct HybridOutcome {
    SumOutcome sum;
    bool used_vao = false;
  };

  /// Performs the traditional full-accuracy call for input index i, charging
  /// black-box cost to whatever meter the caller wired in.
  using TraditionalCall = std::function<Result<double>(std::size_t)>;

  /// Evaluates the weighted sum. The VAO path runs over \p objects; the
  /// traditional path invokes \p traditional per index (falling back to
  /// converging each object when \p traditional is empty, which charges VAO
  /// iteration costs instead of black-box costs).
  Result<HybridOutcome> Evaluate(
      const std::vector<vao::ResultObject*>& objects,
      const std::vector<double>& weights,
      const TraditionalCall& traditional = nullptr) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace vaolib::operators

#endif  // VAOLIB_OPERATORS_SUM_AVE_H_
