// Copyright 2026 The vaolib Authors.
// TOP-K aggregate VAO: an extension generalizing the Section 5.1 MIN/MAX
// operator. Returns the k highest- (or lowest-) valued objects, refining
// bounds only until the chosen set separates from the rest.
//
// The paper's MAX VAO is the k = 1 special case; the greedy strategy
// generalizes from "reduce overlap with the guessed maximum" to "reduce
// overlap across the guessed selection boundary": the operator guesses the
// top-k set by upper bound and iterates whichever object most cheaply
// shrinks the overlap between the guessed members' lower bounds and the
// outsiders' upper bounds.

#ifndef VAOLIB_OPERATORS_TOP_K_H_
#define VAOLIB_OPERATORS_TOP_K_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "common/work_meter.h"
#include "operators/operator_base.h"
#include "vao/result_object.h"

namespace vaolib::operators {

/// \brief Result of a TOP-K evaluation.
struct TopKOutcome {
  /// Indices of the selected objects, ordered by descending (ascending for
  /// kMin) bound midpoint.
  std::vector<std::size_t> winners;
  /// Bounds on each winner, parallel to `winners`, widths <= epsilon.
  std::vector<Bounds> winner_bounds;
  /// True when the boundary could not be fully separated within minWidths:
  /// the membership of the last slots is only determined up to ties.
  bool tie = false;
  /// True when a refinement stall (see OperatorStats::stalled_objects) froze
  /// some bounds early: the selection is still sound, but winner bounds may
  /// be wider than epsilon and ties coarser than minWidth would allow.
  bool precision_degraded = false;
  /// False when evaluation stopped on a work budget before termination: the
  /// winners are then the current best guess at the top-k set, each with its
  /// current (sound) bounds, but membership is not final.
  bool converged = true;
  OperatorStats stats;
};

/// \brief Configuration of a TOP-K VAO. All shared knobs (epsilon, strategy,
/// threads/coarse pre-phase, budget, meter) live on OperatorOptions; epsilon
/// must additionally be at least the largest input minWidth (footnote-10
/// rule). TOP-K historically hard-wired the greedy strategy; it now honours
/// `strategy` like the other aggregates (kGreedy by default).
struct TopKOptions : OperatorOptions {
  std::size_t k = 1;
  ExtremeKind kind = ExtremeKind::kMax;
};

/// \brief Adaptive TOP-K aggregate over a set of result objects.
class TopKVao {
 public:
  explicit TopKVao(const TopKOptions& options) : options_(options) {}

  /// Runs the aggregate over \p objects. k must satisfy
  /// 1 <= k <= objects.size().
  Result<TopKOutcome> Evaluate(
      const std::vector<vao::ResultObject*>& objects) const;

  const TopKOptions& options() const { return options_; }

 private:
  TopKOptions options_;
};

/// \brief Validates TOP-K inputs: non-empty objects, 1 <= k <= n, all
/// non-null with well-formed bounds, epsilon >= the largest input minWidth.
/// Shared by the VAO and its IterationTask.
Status ValidateTopKInputs(const std::vector<vao::ResultObject*>& objects,
                          std::size_t k, double epsilon);

}  // namespace vaolib::operators

#endif  // VAOLIB_OPERATORS_TOP_K_H_
