#include "operators/operator_base.h"

namespace vaolib::operators {

const char* ComparatorToString(Comparator cmp) {
  switch (cmp) {
    case Comparator::kGreaterThan:
      return ">";
    case Comparator::kGreaterEqual:
      return ">=";
    case Comparator::kLessThan:
      return "<";
    case Comparator::kLessEqual:
      return "<=";
  }
  return "?";
}

bool CompareExact(double value, Comparator cmp, double constant) {
  switch (cmp) {
    case Comparator::kGreaterThan:
      return value > constant;
    case Comparator::kGreaterEqual:
      return value >= constant;
    case Comparator::kLessThan:
      return value < constant;
    case Comparator::kLessEqual:
      return value <= constant;
  }
  return false;
}

}  // namespace vaolib::operators
