#include "operators/operator_base.h"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.h"

namespace vaolib::operators {

Status ParallelCoarseConverge(const std::vector<vao::ResultObject*>& objects,
                              int threads, double coarse_width,
                              std::uint64_t max_steps_per_object,
                              std::vector<std::uint64_t>* iterations_out) {
  const std::size_t n = objects.size();
  if (iterations_out != nullptr) {
    iterations_out->assign(n, 0);
  }
  if (n == 0 || threads < 2 || !std::isfinite(coarse_width)) {
    return Status::OK();
  }

  auto body = [&](std::size_t begin, std::size_t end,
                  WorkMeter* /*chunk_meter*/) {
    Status first_error;
    for (std::size_t i = begin; i < end; ++i) {
      vao::ResultObject* object = objects[i];
      const double target = std::max(coarse_width, object->min_width());
      std::uint64_t steps = 0;
      // The coarse phase is opportunistic, so a stalled object just exits
      // early (no error); the serial loop that follows handles it.
      StallGuard guard;
      while (object->bounds().Width() > target &&
             !object->AtStoppingCondition() && !guard.stalled() &&
             (max_steps_per_object == 0 || steps < max_steps_per_object)) {
        const Status status = object->Iterate();
        if (!status.ok()) {
          if (first_error.ok()) first_error = status;
          break;
        }
        ++steps;
        guard.Observe(object->bounds().Width());
      }
      // Distinct indices per worker: no synchronization needed.
      if (iterations_out != nullptr) (*iterations_out)[i] = steps;
    }
    return first_error;
  };

  ThreadPool::ForOptions options;
  options.max_parallelism = threads;
  return ThreadPool::Shared().ParallelFor(n, options, /*meter=*/nullptr,
                                          body);
}

Status ValidateObjectBounds(const vao::ResultObject& object, const char* who) {
  const Bounds b = object.bounds();
  if (!std::isfinite(b.lo) || !std::isfinite(b.hi)) {
    return Status::NumericError(std::string(who) +
                                ": result object produced non-finite bounds");
  }
  if (b.lo > b.hi) {
    return Status::NumericError(std::string(who) +
                                ": result object produced inverted bounds "
                                "(L > H)");
  }
  return Status::OK();
}

const char* StrategyKindName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kGreedy:
      return "greedy";
    case StrategyKind::kRoundRobin:
      return "round_robin";
    case StrategyKind::kRandom:
      return "random";
    case StrategyKind::kBatchGreedy:
      return "batch_greedy";
    case StrategyKind::kCalibratedGreedy:
      return "calibrated_greedy";
    case StrategyKind::kSentinelGreedy:
      return "sentinel_greedy";
  }
  return "?";
}

bool StrategyUsesCorrections(StrategyKind kind) {
  return kind == StrategyKind::kCalibratedGreedy ||
         kind == StrategyKind::kSentinelGreedy;
}

const char* ComparatorToString(Comparator cmp) {
  switch (cmp) {
    case Comparator::kGreaterThan:
      return ">";
    case Comparator::kGreaterEqual:
      return ">=";
    case Comparator::kLessThan:
      return "<";
    case Comparator::kLessEqual:
      return "<=";
  }
  return "?";
}

bool CompareExact(double value, Comparator cmp, double constant) {
  switch (cmp) {
    case Comparator::kGreaterThan:
      return value > constant;
    case Comparator::kGreaterEqual:
      return value >= constant;
    case Comparator::kLessThan:
      return value < constant;
    case Comparator::kLessEqual:
      return value <= constant;
  }
  return false;
}

}  // namespace vaolib::operators
