// Copyright 2026 The vaolib Authors.
// Shared types for VAO and traditional operators (Section 5 of the paper).

#ifndef VAOLIB_OPERATORS_OPERATOR_BASE_H_
#define VAOLIB_OPERATORS_OPERATOR_BASE_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/bounds.h"
#include "common/rng.h"
#include "common/stall_guard.h"
#include "common/status.h"
#include "common/work_meter.h"
#include "operators/cost_feedback.h"
#include "vao/result_object.h"

namespace vaolib::operators {

/// \brief Comparison operator of a selection predicate  f(args) <cmp> c.
enum class Comparator {
  kGreaterThan,
  kGreaterEqual,
  kLessThan,
  kLessEqual,
};

/// \brief Returns the source-level spelling (">", ">=", "<", "<=").
const char* ComparatorToString(Comparator cmp);

/// \brief Truth value of  value <cmp> constant  for exact inputs.
bool CompareExact(double value, Comparator cmp, double constant);

/// \brief Which extreme a MIN/MAX operator seeks.
enum class ExtremeKind { kMax, kMin };

/// \brief Iteration-choice strategy kind for aggregate VAOs. kGreedy is the
/// paper's design (Section 5); the others exist for the strategy ablation.
/// Resolved into a pluggable IterationStrategy object by MakeStrategy()
/// (operators/iteration_strategy.h).
enum class StrategyKind {
  kGreedy,       ///< best estimated benefit per CPU cycle (the paper)
  kRoundRobin,   ///< cycle through live candidates
  kRandom,       ///< uniform over live candidates
  kBatchGreedy,  ///< top-K by greedy score per cycle (batch execution tier);
                 ///< K = OperatorOptions::batch_k, K=1 == kGreedy exactly
  /// Greedy over calibration-corrected estimates: each candidate's
  /// estCPU/estL/estH is rescaled by the per-(object, kind) CostHistory
  /// ratios when available, else by the live CalibrationSnapshot bias for
  /// its solver kind. Zero-history, zero-sample candidates score on their
  /// raw estimates bit-exactly, so with no feedback this is kGreedy.
  kCalibratedGreedy,
  /// kCalibratedGreedy plus sentinel re-ranking: a small probe budget is
  /// spent on the cheapest members of each correlation group (objects
  /// sharing a correlation_key()); the observed-vs-predicted ratios fitted
  /// from the probes rescale the rest of the group's scores before the
  /// main greedy loop spends on them.
  kSentinelGreedy,
};

/// \brief Returns the source-level spelling ("greedy", "round_robin",
/// "random", "batch_greedy", "calibrated_greedy", "sentinel_greedy").
const char* StrategyKindName(StrategyKind kind);

/// \brief True for the strategies that score on corrected estimates
/// (kCalibratedGreedy, kSentinelGreedy).
bool StrategyUsesCorrections(StrategyKind kind);

/// \brief Options shared by every operator family -- the one consolidated
/// configuration surface behind the unified operator API. Family-specific
/// option structs (MinMaxOptions, SumAveOptions, TopKOptions) derive from
/// this, so code that configures "threads + strategy + budget" works the
/// same way against any operator. Function-result caching composes at the
/// function layer (vao::CachingFunction), not here.
struct OperatorOptions {
  /// Precision constraint on the output bounds width (the paper's epsilon).
  double epsilon = 0.01;
  /// Iteration-choice strategy for the adaptive refinement loop.
  StrategyKind strategy = StrategyKind::kGreedy;
  /// Objects refined per adaptive cycle under kBatchGreedy: the strategy
  /// picks the top-K candidates by greedy score and the operator executes
  /// them through the batch kernels (vao::IterateBatch). 1 preserves the
  /// paper's one-object-per-cycle semantics exactly; ignored by the other
  /// strategies.
  int batch_k = 1;
  /// Safety valve against adversarial inputs; NotConverged when exceeded.
  std::uint64_t max_total_iterations = 50'000'000;
  /// Required when strategy == kRandom.
  Rng* rng = nullptr;
  /// chooseIter bookkeeping work is charged here when non-null.
  WorkMeter* meter = nullptr;
  /// Parallel pre-phase (ParallelCoarseConverge): with threads > 1 and a
  /// finite coarse_width, every object is first refined toward width <=
  /// max(coarse_width, its minWidth) on the shared pool; the adaptive loop
  /// -- inherently serial, each choice depends on all prior ones -- then
  /// runs from those deterministic states. coarse_max_steps caps the
  /// Iterate() calls any one object gets in the pre-phase (0 = refine all
  /// the way to coarse_width). Defaults keep the exact serial behaviour.
  int threads = 1;
  double coarse_width = std::numeric_limits<double>::infinity();
  std::uint64_t coarse_max_steps = 0;
  /// Per-evaluation work-unit budget (0 = unlimited). Requires `meter`:
  /// when the meter delta since evaluation start reaches the budget, the
  /// operator stops and returns its current sound-but-unconverged snapshot
  /// with `converged = false` instead of blocking. The engine's
  /// WorkScheduler enforces cross-query budgets one level up through the
  /// same IterationTask surface.
  std::uint64_t budget = 0;

  /// \name Predictive planning (operators/cost_feedback.h).
  /// When `feedback` is non-null the serial adaptive paths record every
  /// iterate's actual-vs-estimated cost and shrink into it (under any
  /// strategy, so a baseline run can collect the same audit), and the
  /// corrected strategies (kCalibratedGreedy / kSentinelGreedy) consult it
  /// when scoring. `object_ids`, when set, must parallel the operator's
  /// object vector and supply stable identities that survive object
  /// rebuilds across ticks (the engine passes relation row indices); when
  /// null the object's position is used.
  /// @{
  CostFeedback* feedback = nullptr;
  const std::vector<std::uint64_t>* object_ids = nullptr;
  /// Probes per correlation group under kSentinelGreedy (clamped to group
  /// size - 1; groups of one are never probed).
  int sentinel_probes = 2;
  /// Test-only (differential mutation mode): inverts the correction ratios
  /// and bias signs, so corrections actively worsen estimates. The sweep's
  /// calibration audit must catch this.
  bool mutate_flip_correction = false;
  /// @}
};

/// \brief Per-evaluation execution statistics reported by every operator.
struct OperatorStats {
  std::uint64_t iterations = 0;     ///< total Iterate() calls issued
  std::uint64_t choose_steps = 0;   ///< strategy invocations (chooseIter)
  std::uint64_t objects_touched = 0;///< objects iterated at least once
  /// Objects whose refinement stalled (Iterate() kept succeeding but the
  /// bounds stopped tightening before minWidth) and were quarantined from
  /// further iteration. Their frozen bounds stay sound, so aggregate
  /// answers remain correct but may be wider than requested.
  std::uint64_t stalled_objects = 0;

  /// \name Phase split of `iterations` (coarse + greedy + finalize ==
  /// iterations for the aggregate operators; selections are all-greedy).
  /// @{
  std::uint64_t coarse_iterations = 0;   ///< parallel coarse pre-phase
  std::uint64_t greedy_iterations = 0;   ///< serial adaptive loop
  std::uint64_t finalize_iterations = 0; ///< winner/member refinement
  /// @}

  /// \name Predictive-planning audit (filled when OperatorOptions::feedback
  /// is set and the path can measure per-object actual costs). The MAE of
  /// the raw estimates is raw_cost_abs_err / cost_err_samples; of the
  /// corrected estimates, corrected_cost_abs_err / cost_err_samples. Under
  /// the uncorrected strategies the two sums are equal.
  /// @{
  std::uint64_t cost_err_samples = 0;     ///< decisions with measured cost
  std::uint64_t corrected_decisions = 0;  ///< decisions a correction changed
  double raw_cost_abs_err = 0.0;          ///< sum |actual - raw est| cost
  double corrected_cost_abs_err = 0.0;    ///< sum |actual - corrected est|
  /// @}

  /// Accumulates \p other into this (used by batch/multi-query paths).
  void Merge(const OperatorStats& other) {
    iterations += other.iterations;
    choose_steps += other.choose_steps;
    objects_touched += other.objects_touched;
    stalled_objects += other.stalled_objects;
    coarse_iterations += other.coarse_iterations;
    greedy_iterations += other.greedy_iterations;
    finalize_iterations += other.finalize_iterations;
    cost_err_samples += other.cost_err_samples;
    corrected_decisions += other.corrected_decisions;
    raw_cost_abs_err += other.raw_cost_abs_err;
    corrected_cost_abs_err += other.corrected_cost_abs_err;
  }
};

/// \brief Validates a result object's current bounds before they enter a
/// decision: both endpoints finite and lo <= hi. A solver breakdown (NaN/Inf
/// endpoints) or a buggy implementation (L > H) would otherwise flow silently
/// into predicate comparisons -- NaN compares false against everything, so a
/// poisoned row would quietly "fail" its predicate instead of surfacing.
///
/// \return NumericError naming \p who when the bounds are malformed.
Status ValidateObjectBounds(const vao::ResultObject& object, const char* who);

/// \brief Parallel pre-phase for aggregate VAOs: converges every object to
/// width <= max(\p coarse_width, its minWidth) using up to \p threads
/// workers of the shared pool, before the inherently serial greedy
/// refinement loop runs on the caller. Each object is driven by exactly one
/// worker, so its refinement path -- and the state the greedy loop starts
/// from -- depends only on \p coarse_width and \p max_steps_per_object,
/// never on the thread count.
///
/// \p max_steps_per_object caps how many Iterate() calls any single object
/// may receive during this phase (0 = uncapped). Iteration cost typically
/// grows geometrically with refinement depth, so a small cap bounds the
/// work this phase can add beyond what the greedy loop would have done,
/// while still parallelizing the broad early refinement.
///
/// \p iterations_out (if non-null) is resized to the object count and
/// filled with per-object Iterate() counts (deterministic). A non-finite
/// \p coarse_width or threads < 2 makes this a no-op. All objects are
/// attempted; returns the lowest-indexed failing object's error.
Status ParallelCoarseConverge(const std::vector<vao::ResultObject*>& objects,
                              int threads, double coarse_width,
                              std::uint64_t max_steps_per_object,
                              std::vector<std::uint64_t>* iterations_out);

}  // namespace vaolib::operators

#endif  // VAOLIB_OPERATORS_OPERATOR_BASE_H_
