// Copyright 2026 The vaolib Authors.
// Shared types for VAO and traditional operators (Section 5 of the paper).

#ifndef VAOLIB_OPERATORS_OPERATOR_BASE_H_
#define VAOLIB_OPERATORS_OPERATOR_BASE_H_

#include <cstdint>

#include "common/bounds.h"

namespace vaolib::operators {

/// \brief Comparison operator of a selection predicate  f(args) <cmp> c.
enum class Comparator {
  kGreaterThan,
  kGreaterEqual,
  kLessThan,
  kLessEqual,
};

/// \brief Returns the source-level spelling (">", ">=", "<", "<=").
const char* ComparatorToString(Comparator cmp);

/// \brief Truth value of  value <cmp> constant  for exact inputs.
bool CompareExact(double value, Comparator cmp, double constant);

/// \brief Which extreme a MIN/MAX operator seeks.
enum class ExtremeKind { kMax, kMin };

/// \brief Iteration-choice strategy for aggregate VAOs. kGreedy is the
/// paper's design (Section 5); the others exist for the strategy ablation.
enum class IterationStrategy {
  kGreedy,      ///< best estimated benefit per CPU cycle (the paper)
  kRoundRobin,  ///< cycle through live candidates
  kRandom,      ///< uniform over live candidates
};

/// \brief Per-evaluation execution statistics reported by every operator.
struct OperatorStats {
  std::uint64_t iterations = 0;     ///< total Iterate() calls issued
  std::uint64_t choose_steps = 0;   ///< strategy invocations (chooseIter)
  std::uint64_t objects_touched = 0;///< objects iterated at least once
};

}  // namespace vaolib::operators

#endif  // VAOLIB_OPERATORS_OPERATOR_BASE_H_
