// Copyright 2026 The vaolib Authors.
// IterationStrategy: the pluggable iteration-choice policy extracted out of
// the aggregate operators (Section 5's chooseIter, as an interface).
//
// Each adaptive loop round, an operator builds the list of candidates it
// could iterate -- with an operator-specific predicted benefit (MIN/MAX:
// overlap reduction with the guessed extreme; SUM/AVE: weighted error
// reduction; TOP-K: cross-boundary overlap reduction) -- and asks the
// strategy which one to refine. Extracting the choice from the loops gives
// every operator family the same ablation axis and gives the engine's
// WorkScheduler one seam to reason about benefit/cost at.

#ifndef VAOLIB_OPERATORS_ITERATION_STRATEGY_H_
#define VAOLIB_OPERATORS_ITERATION_STRATEGY_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "operators/operator_base.h"

namespace vaolib::operators {

/// \brief One object the operator could iterate next.
struct IterationCandidate {
  /// Index of the object in the operator's input vector.
  std::size_t index = 0;
  /// Operator-specific predicted accuracy gain of one Iterate() call.
  /// Only meaningful when the strategy WantsScores().
  double benefit = 0.0;
  /// Estimated CPU cycles of that call (>= 1); see ResultObject::est_cost().
  double cost = 1.0;
  /// Fallback priority when every predicted benefit is zero: an actual
  /// (not estimated) width measure, so refinement keeps making real
  /// progress even when estimates lie. Only meaningful with WantsScores().
  double width = 0.0;
};

/// \brief Picks which candidate to iterate next. Implementations are
/// stateful (round-robin keeps a cursor) and not thread-safe; operators own
/// one strategy per evaluation.
class IterationStrategy {
 public:
  virtual ~IterationStrategy() = default;

  /// Source-level name ("greedy", "round_robin", "random").
  virtual const char* name() const = 0;

  /// True when Choose() reads benefit/cost/width. Operators skip computing
  /// scores -- which calls est_bounds()/est_cost() -- for strategies that
  /// never look at them.
  virtual bool WantsScores() const = 0;

  /// Returns the input index of the chosen candidate. \p candidates is
  /// non-empty, ordered as the operator enumerates its iterable set (the
  /// greedy first-maximum tie-break depends on that order).
  virtual std::size_t Choose(
      const std::vector<IterationCandidate>& candidates) = 0;

  /// Fills \p chosen with up to \p max_batch candidate *input indices* for
  /// one cycle, best first, never empty for non-empty \p candidates. The
  /// base implementation picks exactly Choose() -- one object per cycle --
  /// so only batch-aware strategies (kBatchGreedy) ever return more. With
  /// max_batch <= 1 every implementation must reproduce Choose() exactly.
  virtual void ChooseBatch(const std::vector<IterationCandidate>& candidates,
                           std::size_t max_batch,
                           std::vector<std::size_t>* chosen) {
    (void)max_batch;
    chosen->assign(1, Choose(candidates));
  }
};

/// \brief Builds the strategy for \p kind. \p rng is required for
/// StrategyKind::kRandom (InvalidArgument otherwise) and ignored by the
/// deterministic strategies; it must outlive the returned strategy.
Result<std::unique_ptr<IterationStrategy>> MakeStrategy(StrategyKind kind,
                                                        Rng* rng);

}  // namespace vaolib::operators

#endif  // VAOLIB_OPERATORS_ITERATION_STRATEGY_H_
